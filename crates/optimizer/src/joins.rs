//! Join recovery — the pass that makes loop-lifted plans *runnable*.
//!
//! Loop-lifting evaluates a `table` reference under an inner loop as
//! `loop × table` and applies comprehension guards as late selections.
//! Executed literally, that materialises quadratic intermediates; the real
//! Ferry pipeline relies on Pathfinder's rewrites (cf. "XQuery Join Graph
//! Isolation" \[10\]) to dissolve these crosses back into equi-joins. This
//! module is the equivalent for our engine:
//!
//! * **selection descent** — `σ` moves through `Project` (rename),
//!   `Compute`/`Attach` (substitution), `Distinct`, `UnionAll`, semi/anti
//!   joins, and splits across the two sides of `×`/`⋈`;
//! * **join condition absorption** — an equality conjunct spanning the two
//!   sides of a join/cross becomes part of the equi-join condition
//!   (`σ_{a=b}(l × r)` ⇒ `l ⋈_{a=b} r`);
//! * **join rotation** — equi/semi/anti joins whose key columns come from
//!   one side of an underlying cross (or sit behind a projection /
//!   attachment) rotate inward, so conditions keep descending until they
//!   reach the relation they constrain.
//!
//! Every rewrite preserves the rewritten node's *output schema* (column
//! names, types, order), which is what lets the pass run inside the
//! rebuild framework without global re-inference, and none of them touch
//! an order-defining `RowNum`/`DenseRank` — the compiler's composite
//! iteration keys make sure the hot paths do not hide behind one.

use crate::rewrite::{rebuild, Emit};
use ferry_algebra::{infer_schema, BinOp, ColName, Expr, JoinCols, Node, NodeId, Plan, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// Run selection descent + join recovery to a (bounded) fixpoint.
pub fn recover_joins(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>) {
    let mut plan = plan.clone();
    let mut roots = roots.to_vec();
    for i in 0..64 {
        let (p2, r2, changed) = step(&plan, &roots);
        plan = p2;
        roots = r2;
        if std::env::var("FERRY_JOINDBG").is_ok() {
            let crosses = roots
                .iter()
                .flat_map(|r| plan.reachable(*r))
                .filter(|id| matches!(plan.node(*id), Node::CrossJoin { .. }))
                .count();
            eprintln!("join-recovery step {i}: changed={changed} crosses={crosses}");
        }
        if !changed {
            break;
        }
    }
    (plan, roots)
}

fn step(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>, bool) {
    let schemas = match infer_schema(plan) {
        Ok(s) => s,
        Err(e) => {
            if std::env::var("FERRY_JOINDBG").is_ok() {
                eprintln!("join-recovery: inference failed, stopping: {e}");
            }
            return (plan.clone(), roots.to_vec(), false);
        }
    };
    let mut changed = false;
    let (p2, r2) = rebuild(plan, roots, |out, old_id, node| {
        // schema of the i-th child (schemas are preserved by every rewrite,
        // so old-plan schemas remain valid for the new children)
        let old_children = plan.node(old_id).children();
        let child_schema = |i: usize| -> &Schema { &schemas[old_children[i].index()] };
        let emit = match &node {
            Node::Select { input, pred } => push_select(out, *input, pred, child_schema(0)),
            Node::Compute { input, col, expr } => push_compute_into_cross(out, *input, col, expr),
            Node::EquiJoin { left, right, on } => rotate_join(
                out,
                JoinKind::Equi,
                *left,
                *right,
                on,
                child_schema(0),
                child_schema(1),
            ),
            Node::SemiJoin { left, right, on } => rotate_join(
                out,
                JoinKind::Semi,
                *left,
                *right,
                on,
                child_schema(0),
                child_schema(1),
            ),
            Node::AntiJoin { left, right, on } => rotate_join(
                out,
                JoinKind::Anti,
                *left,
                *right,
                on,
                child_schema(0),
                child_schema(1),
            ),
            _ => None,
        };
        match emit {
            Some(e) => {
                changed = true;
                e
            }
            None => Emit::Keep,
        }
    });
    (p2, r2, changed)
}

enum JoinKind {
    Equi,
    Semi,
    Anti,
}

/// Columns referenced by an expression.
fn cols_of(e: &Expr) -> Vec<ColName> {
    let mut cs = Vec::new();
    e.columns(&mut cs);
    cs
}

fn subset(cols: &[ColName], schema: &Schema) -> bool {
    cols.iter().all(|c| schema.contains(c))
}

/// Substitute column `col` by `with` inside `e`.
fn substitute(e: &Expr, col: &ColName, with: &Expr) -> Expr {
    match e {
        Expr::Col(c) if c == col => with.clone(),
        Expr::Col(_) | Expr::Const(_) => e.clone(),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Arc::new(substitute(l, col, with)),
            Arc::new(substitute(r, col, with)),
        ),
        Expr::Un(op, x) => Expr::Un(*op, Arc::new(substitute(x, col, with))),
        Expr::Case(c, t, f) => Expr::Case(
            Arc::new(substitute(c, col, with)),
            Arc::new(substitute(t, col, with)),
            Arc::new(substitute(f, col, with)),
        ),
        Expr::Cast(ty, x) => Expr::Cast(*ty, Arc::new(substitute(x, col, with))),
    }
}

/// Rename columns via a projection's (new → old) map; `None` if a column
/// is missing (defensive — projections expose every column a parent uses).
fn rename_expr(e: &Expr, map: &HashMap<&ColName, &ColName>) -> Option<Expr> {
    Some(match e {
        Expr::Col(c) => Expr::Col((*map.get(c)?).clone()),
        Expr::Const(_) => e.clone(),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Arc::new(rename_expr(l, map)?),
            Arc::new(rename_expr(r, map)?),
        ),
        Expr::Un(op, x) => Expr::Un(*op, Arc::new(rename_expr(x, map)?)),
        Expr::Case(c, t, f) => Expr::Case(
            Arc::new(rename_expr(c, map)?),
            Arc::new(rename_expr(t, map)?),
            Arc::new(rename_expr(f, map)?),
        ),
        Expr::Cast(ty, x) => Expr::Cast(*ty, Arc::new(rename_expr(x, map)?)),
    })
}

fn conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Bin(BinOp::And, l, r) => {
            conjuncts(l, out);
            conjuncts(r, out);
        }
        e => out.push(e.clone()),
    }
}

fn and_all(mut es: Vec<Expr>) -> Expr {
    let first = es.remove(0);
    es.into_iter().fold(first, Expr::and)
}

/// One descent step for `σ_pred(input)`. Returns `None` when no rewrite
/// applies.
fn push_select(out: &mut Plan, input: NodeId, pred: &Expr, _in_schema: &Schema) -> Option<Emit> {
    let child = out.node(input).clone();
    match child {
        Node::Project { input: g, cols } => {
            let map: HashMap<&ColName, &ColName> = cols.iter().map(|(n, o)| (n, o)).collect();
            let pred2 = rename_expr(pred, &map)?;
            let sel = out.select(g, pred2);
            Some(Emit::Replace(Node::Project { input: sel, cols }))
        }
        Node::Compute {
            input: g,
            col,
            expr,
        } => {
            let pred2 = substitute(pred, &col, &expr);
            let sel = out.select(g, pred2);
            Some(Emit::Replace(Node::Compute {
                input: sel,
                col,
                expr,
            }))
        }
        Node::Attach {
            input: g,
            col,
            value,
        } => {
            let pred2 = substitute(pred, &col, &Expr::Const(value.clone()));
            let sel = out.select(g, pred2);
            Some(Emit::Replace(Node::Attach {
                input: sel,
                col,
                value,
            }))
        }
        Node::Select { input: g, pred: p1 } => {
            // keep guard-then-use evaluation order: p1 first
            Some(Emit::Replace(Node::Select {
                input: g,
                pred: Expr::and(p1, pred.clone()),
            }))
        }
        Node::Distinct { input: g } => {
            let sel = out.select(g, pred.clone());
            Some(Emit::Replace(Node::Distinct { input: sel }))
        }
        Node::SemiJoin { left, right, on } => {
            let sel = out.select(left, pred.clone());
            Some(Emit::Replace(Node::SemiJoin {
                left: sel,
                right,
                on,
            }))
        }
        Node::AntiJoin { left, right, on } => {
            let sel = out.select(left, pred.clone());
            Some(Emit::Replace(Node::AntiJoin {
                left: sel,
                right,
                on,
            }))
        }
        Node::UnionAll { left, right } => {
            // clone the σ into both sides; the right side's columns are
            // matched positionally (union semantics)
            let ls = schema_of(out, left)?;
            let rs = schema_of(out, right)?;
            if !subset(&cols_of(pred), &ls) {
                return None;
            }
            let pos_map: HashMap<&ColName, &ColName> = ls
                .cols()
                .iter()
                .zip(rs.cols())
                .map(|((ln, _), (rn, _))| (ln, rn))
                .collect();
            let pred_r = rename_expr(pred, &pos_map)?;
            let l2 = out.select(left, pred.clone());
            let r2 = out.select(right, pred_r);
            Some(Emit::Replace(Node::UnionAll {
                left: l2,
                right: r2,
            }))
        }
        Node::CrossJoin { left, right } | Node::EquiJoin { left, right, .. } => {
            let ls = schema_of(out, left)?;
            let rs = schema_of(out, right)?;
            let mut cs = Vec::new();
            conjuncts(pred, &mut cs);
            let mut to_l: Vec<Expr> = Vec::new();
            let mut to_r: Vec<Expr> = Vec::new();
            let mut new_on: Vec<(ColName, ColName)> = Vec::new();
            // computed join keys: `e_l = e_r` with each side confined to
            // one input becomes Compute + an equi condition
            let mut compute_l: Vec<(ColName, Expr)> = Vec::new();
            let mut compute_r: Vec<(ColName, Expr)> = Vec::new();
            let mut residue: Vec<Expr> = Vec::new();
            for c in cs {
                let cc = cols_of(&c);
                if subset(&cc, &ls) {
                    to_l.push(c);
                } else if subset(&cc, &rs) {
                    to_r.push(c);
                } else if let Some((a, b)) = as_cross_equality(&c, &ls, &rs) {
                    new_on.push((a, b));
                } else if let Some((el, er)) = as_split_equality(&c, &ls, &rs) {
                    let salt = out.len() + compute_l.len();
                    let cl: ColName = Arc::from(format!("__ek{salt}l"));
                    let cr: ColName = Arc::from(format!("__ek{salt}r"));
                    compute_l.push((cl.clone(), el));
                    compute_r.push((cr.clone(), er));
                    new_on.push((cl, cr));
                } else {
                    residue.push(c);
                }
            }
            if to_l.is_empty() && to_r.is_empty() && new_on.is_empty() {
                return None;
            }
            let mut l2 = if to_l.is_empty() {
                left
            } else {
                out.select(left, and_all(to_l))
            };
            let mut r2 = if to_r.is_empty() {
                right
            } else {
                out.select(right, and_all(to_r))
            };
            for (c, e) in compute_l {
                l2 = out.compute(l2, c, e);
            }
            for (c, e) in compute_r {
                r2 = out.compute(r2, c, e);
            }
            let mut on = match out.node(input) {
                Node::EquiJoin { on, .. } => on.clone(),
                _ => JoinCols {
                    left: vec![],
                    right: vec![],
                },
            };
            for (a, b) in new_on {
                on.left.push(a);
                on.right.push(b);
            }
            let had_computed_keys = on.left.iter().any(|c| c.starts_with("__ek"));
            let joined = if on.left.is_empty() {
                out.cross(l2, r2)
            } else {
                out.equi_join(l2, r2, on)
            };
            // restore the original output schema when computed key columns
            // were introduced
            let joined = if had_computed_keys {
                let cols: Vec<(ColName, ColName)> = ls
                    .names()
                    .chain(rs.names())
                    .map(|n| (n.clone(), n.clone()))
                    .collect();
                out.project(joined, cols)
            } else {
                joined
            };
            if residue.is_empty() {
                Some(Emit::Forward(joined))
            } else {
                Some(Emit::Replace(Node::Select {
                    input: joined,
                    pred: and_all(residue),
                }))
            }
        }
        Node::GroupBy {
            input: g,
            keys,
            aggs,
        } => {
            // predicates over group keys commute with grouping
            if !subset(
                &cols_of(pred),
                &Schema::new(
                    keys.iter()
                        .map(|k| (k.clone(), ferry_algebra::Ty::Nat))
                        .collect(),
                ),
            ) {
                // (type payload irrelevant — containment check only)
                return None;
            }
            let sel = out.select(g, pred.clone());
            Some(Emit::Replace(Node::GroupBy {
                input: sel,
                keys,
                aggs,
            }))
        }
        _ => None,
    }
}

/// Does a cross join hide within `depth` single-input hops below `id`?
fn sees_cross(plan: &Plan, id: NodeId, depth: usize) -> bool {
    if depth == 0 {
        return false;
    }
    match plan.node(id) {
        Node::CrossJoin { .. } => true,
        Node::Project { input, .. }
        | Node::Attach { input, .. }
        | Node::Compute { input, .. }
        | Node::Select { input, .. } => sees_cross(plan, *input, depth - 1),
        _ => false,
    }
}

/// A semi/anti join over a cross with mixed-side keys: re-express the semi
/// join as an equi join against the *distinct* key set (each left row then
/// matches at most once), which the mixed-key rotation above can dissolve
/// on the next pass. Anti joins are left alone.
fn mixed_semi_to_equi(
    out: &mut Plan,
    kind: JoinKind,
    left: NodeId,
    right: NodeId,
    on: &JoinCols,
    _sa: &Schema,
    _sb: &Schema,
) -> Option<Emit> {
    if !matches!(kind, JoinKind::Semi) {
        return None;
    }
    let ls = schema_of(out, left)?;
    // project the key set under fresh names (an equi join needs disjoint
    // schemas where the semi join did not)
    let salt = out.len();
    let proj: Vec<(ColName, ColName)> = on
        .right
        .iter()
        .enumerate()
        .map(|(i, c)| (Arc::from(format!("__sj{salt}_{i}")), c.clone()))
        .collect();
    let fresh: Vec<ColName> = proj.iter().map(|(n, _)| n.clone()).collect();
    if fresh.iter().any(|c| ls.contains(c)) {
        return None;
    }
    let keyed = out.project(right, proj);
    let d = out.distinct(keyed);
    let j = out.equi_join(left, d, JoinCols::new(on.left.clone(), fresh));
    let cols: Vec<(ColName, ColName)> = ls.names().map(|n| (n.clone(), n.clone())).collect();
    Some(Emit::Replace(Node::Project { input: j, cols }))
}

/// A computed column over a cross join whose expression only reads one
/// factor moves into that factor — so computed join keys introduced by the
/// equality absorption become visible to the rotations that dissolve the
/// cross.
fn push_compute_into_cross(
    out: &mut Plan,
    input: NodeId,
    col: &ColName,
    expr: &Expr,
) -> Option<Emit> {
    // swap through a projection first: compute(π(g)) ⇒ π'(compute(g))
    if let Node::Project { input: g, cols } = out.node(input).clone() {
        let map: HashMap<&ColName, &ColName> = cols.iter().map(|(n, o)| (n, o)).collect();
        let expr2 = rename_expr(expr, &map)?;
        // the computed name must not collide below the projection
        let gs = schema_of(out, g)?;
        if gs.contains(col) {
            return None;
        }
        let c2 = out.compute(g, col.clone(), expr2);
        let mut cols2 = cols.clone();
        cols2.push((col.clone(), col.clone()));
        return Some(Emit::Replace(Node::Project {
            input: c2,
            cols: cols2,
        }));
    }
    let Node::CrossJoin { left: a, right: b } = out.node(input).clone() else {
        return None;
    };
    let sa = schema_of(out, a)?;
    let sb = schema_of(out, b)?;
    let cols = cols_of(expr);
    if subset(&cols, &sb) {
        // a × (compute b) — output order a ++ b ++ col already matches
        let b2 = out.compute(b, col.clone(), expr.clone());
        Some(Emit::Replace(Node::CrossJoin { left: a, right: b2 }))
    } else if subset(&cols, &sa) {
        let a2 = out.compute(a, col.clone(), expr.clone());
        let crossed = out.cross(a2, b);
        // restore output order: a, b, col
        let mut proj: Vec<(ColName, ColName)> = Vec::new();
        for n in sa.names().chain(sb.names()) {
            proj.push((n.clone(), n.clone()));
        }
        proj.push((col.clone(), col.clone()));
        Some(Emit::Replace(Node::Project {
            input: crossed,
            cols: proj,
        }))
    } else {
        None
    }
}

/// `e_l = e_r` with every column of `e_l` on the left and of `e_r` on the
/// right (or swapped): a join condition over *computed* keys.
fn as_split_equality(e: &Expr, ls: &Schema, rs: &Schema) -> Option<(Expr, Expr)> {
    let Expr::Bin(BinOp::Eq, l, r) = e else {
        return None;
    };
    let (cl, cr) = (cols_of(l), cols_of(r));
    if cl.is_empty() || cr.is_empty() {
        return None; // constant sides belong to the per-side pushes
    }
    let (el, er) = if subset(&cl, ls) && subset(&cr, rs) {
        ((**l).clone(), (**r).clone())
    } else if subset(&cl, rs) && subset(&cr, ls) {
        ((**r).clone(), (**l).clone())
    } else {
        return None;
    };
    // both sides must infer to the same type for a legal join
    let lt = el.infer_ty(ls)?;
    let rt = er.infer_ty(rs)?;
    if lt == rt {
        Some((el, er))
    } else {
        None
    }
}

/// `a = b` with `a` from the left schema and `b` from the right (or
/// swapped) — a recoverable equi-join condition.
fn as_cross_equality(e: &Expr, ls: &Schema, rs: &Schema) -> Option<(ColName, ColName)> {
    let Expr::Bin(BinOp::Eq, l, r) = e else {
        return None;
    };
    let (Expr::Col(a), Expr::Col(b)) = (l.as_ref(), r.as_ref()) else {
        return None;
    };
    if ls.contains(a) && rs.contains(b) && ls.ty_of(a) == rs.ty_of(b) {
        Some((a.clone(), b.clone()))
    } else if ls.contains(b) && rs.contains(a) && ls.ty_of(b) == rs.ty_of(a) {
        Some((b.clone(), a.clone()))
    } else {
        None
    }
}

/// Best-effort schema of a node in the plan under construction (used for
/// conjunct routing). Cheap because it only inspects the node's ancestors
/// transitively — with memoisation left to the small plans this touches.
fn schema_of(plan: &Plan, id: NodeId) -> Option<Schema> {
    // local inference over the reachable subgraph
    let reach = plan.reachable(id);
    let mut known: HashMap<NodeId, Schema> = HashMap::new();
    for n in reach {
        let node = plan.node(n);
        let s = infer_one(node, &known)?;
        known.insert(n, s);
    }
    known.remove(&id)
}

fn infer_one(node: &Node, known: &HashMap<NodeId, Schema>) -> Option<Schema> {
    // delegate to the full checker by building a tiny plan? — cheaper to
    // reuse the public inference on a subplan is overkill; mirror the
    // schema rules for the node kinds we meet here
    use ferry_algebra::Ty;
    Some(match node {
        Node::TableRef { cols, .. } => Schema::new(cols.clone()),
        Node::Lit { schema, .. } => schema.clone(),
        Node::Attach { input, col, value } => {
            let mut s = known.get(input)?.clone();
            s.push(col.clone(), value.ty());
            s
        }
        Node::Project { input, cols } => {
            let s = known.get(input)?;
            Schema::new(
                cols.iter()
                    .map(|(new, old)| Some((new.clone(), s.ty_of(old)?)))
                    .collect::<Option<Vec<_>>>()?,
            )
        }
        Node::Compute { input, col, expr } => {
            let mut s = known.get(input)?.clone();
            let t = expr.infer_ty(&s)?;
            s.push(col.clone(), t);
            s
        }
        Node::Select { input, .. } | Node::Distinct { input } => known.get(input)?.clone(),
        Node::UnionAll { left, .. } | Node::Difference { left, .. } => known.get(left)?.clone(),
        Node::CrossJoin { left, right }
        | Node::EquiJoin { left, right, .. }
        | Node::ThetaJoin { left, right, .. } => known.get(left)?.concat(known.get(right)?),
        Node::SemiJoin { left, .. } | Node::AntiJoin { left, .. } => known.get(left)?.clone(),
        Node::RowNum { input, col, .. }
        | Node::RowRank { input, col, .. }
        | Node::DenseRank { input, col, .. } => {
            let mut s = known.get(input)?.clone();
            s.push(col.clone(), Ty::Nat);
            s
        }
        Node::GroupBy { input, keys, aggs } => {
            let s = known.get(input)?;
            let mut out: Vec<(ColName, Ty)> = keys
                .iter()
                .map(|k| Some((k.clone(), s.ty_of(k)?)))
                .collect::<Option<Vec<_>>>()?;
            for a in aggs {
                let in_ty = a.input.as_ref().and_then(|c| s.ty_of(c));
                out.push((a.output.clone(), a.fun.result_ty(in_ty)?));
            }
            Schema::new(out)
        }
        Node::Serialize { input, cols, .. } => {
            let s = known.get(input)?;
            Schema::new(
                cols.iter()
                    .map(|c| Some((c.clone(), s.ty_of(c)?)))
                    .collect::<Option<Vec<_>>>()?,
            )
        }
    })
}

/// Rotate a join inward when its left key columns come from one side of an
/// underlying cross, projection, or column attachment, so the condition
/// keeps descending toward the relation it constrains.
fn rotate_join(
    out: &mut Plan,
    kind: JoinKind,
    left: NodeId,
    right: NodeId,
    on: &JoinCols,
    left_schema: &Schema,
    right_schema: &Schema,
) -> Option<Emit> {
    let lchild = out.node(left).clone();
    let mk_join = |out: &mut Plan, l: NodeId, r: NodeId, on: JoinCols| match kind {
        JoinKind::Equi => out.equi_join(l, r, on),
        JoinKind::Semi => out.semi_join(l, r, on),
        JoinKind::Anti => out.anti_join(l, r, on),
    };
    // commute: an equi join whose *right* side hides a cross (and whose
    // left does not) flips, so the left-side rotations can dissolve it
    if matches!(kind, JoinKind::Equi)
        && sees_cross(out, right, 4)
        && !sees_cross(out, left, 4)
        && !matches!(
            lchild,
            Node::CrossJoin { .. } | Node::Project { .. } | Node::Attach { .. }
        )
    {
        let flipped = out.equi_join(
            right,
            left,
            JoinCols::new(on.right.clone(), on.left.clone()),
        );
        let mut cols: Vec<(ColName, ColName)> = Vec::new();
        for n in left_schema.names().chain(right_schema.names()) {
            cols.push((n.clone(), n.clone()));
        }
        return Some(Emit::Replace(Node::Project {
            input: flipped,
            cols,
        }));
    }
    match lchild {
        Node::CrossJoin { left: a, right: b } => {
            let sa = schema_of(out, a)?;
            let sb = schema_of(out, b)?;
            if on.left.iter().all(|c| sa.contains(c)) {
                // ⋈(a × b, r) ⇒ (⋈(a, r)) × b — for equi joins the output
                // column order changes (a r b vs a b r), restored with a
                // projection
                let inner = mk_join(out, a, right, on.clone());
                let crossed = out.cross(inner, b);
                match kind {
                    JoinKind::Equi => {
                        let mut cols: Vec<(ColName, ColName)> = Vec::new();
                        for n in left_schema.names() {
                            cols.push((n.clone(), n.clone()));
                        }
                        for n in right_schema.names() {
                            cols.push((n.clone(), n.clone()));
                        }
                        Some(Emit::Replace(Node::Project {
                            input: crossed,
                            cols,
                        }))
                    }
                    _ => Some(Emit::Forward(crossed)),
                }
            } else if on.left.iter().all(|c| sb.contains(c)) {
                // ⋈(a × b, r) ⇒ a × ⋈(b, r) — order a b r is preserved
                let inner = mk_join(out, b, right, on.clone());
                Some(Emit::Replace(Node::CrossJoin {
                    left: a,
                    right: inner,
                }))
            } else if on.left.iter().all(|c| sa.contains(c) || sb.contains(c)) {
                // mixed keys: ⋈_{a.x=r.x ∧ b.y=r.y}(a × b, r)
                //           ⇒ ⋈_{r.y=b.y}(⋈_{a.x=r.x}(a, r), b)
                // — the cross dissolves entirely. Equi joins only (the
                // factoring duplicates matches for semi/anti).
                if !matches!(kind, JoinKind::Equi) {
                    return mixed_semi_to_equi(out, kind, left, right, on, &sa, &sb);
                }
                let rs = schema_of(out, right)?;
                let mut on_a = JoinCols {
                    left: vec![],
                    right: vec![],
                };
                let mut on_b = JoinCols {
                    left: vec![],
                    right: vec![],
                };
                for (l, r) in on.left.iter().zip(on.right.iter()) {
                    if sa.contains(l) {
                        on_a.left.push(l.clone());
                        on_a.right.push(r.clone());
                    } else {
                        // after the first join, r's columns are on the left
                        on_b.left.push(r.clone());
                        on_b.right.push(l.clone());
                    }
                }
                let j1 = out.equi_join(a, right, on_a);
                let j2 = out.equi_join(j1, b, on_b);
                // restore output order: a, b, r
                let mut cols: Vec<(ColName, ColName)> = Vec::new();
                for n in sa.names().chain(sb.names()).chain(rs.names()) {
                    cols.push((n.clone(), n.clone()));
                }
                Some(Emit::Replace(Node::Project { input: j2, cols }))
            } else {
                None
            }
        }
        Node::Project { input: g, cols } => {
            // stacked projections block the rules below: compose them
            // first (Project ∘ Project ⇒ Project)
            if let Node::Project {
                input: gg,
                cols: inner,
            } = out.node(g).clone()
            {
                let imap: HashMap<&ColName, &ColName> = inner.iter().map(|(n, o)| (n, o)).collect();
                let composed: Option<Vec<(ColName, ColName)>> = cols
                    .iter()
                    .map(|(new, mid)| imap.get(mid).map(|o| (new.clone(), (*o).clone())))
                    .collect();
                if let Some(composed) = composed {
                    let p2 = out.project(gg, composed);
                    let j = mk_join(out, p2, right, on.clone());
                    return Some(Emit::Forward(j));
                }
            }
            // pull the projection above the join. When the unprojected
            // input's names collide with the right side (the same base
            // node feeding both sides), insulate with a fresh renaming
            // projection first — the pull then proceeds next pass.
            let gs = schema_of(out, g)?;
            if !matches!(kind, JoinKind::Semi | JoinKind::Anti) && !gs.disjoint(right_schema) {
                // the same base node feeds both join sides. When the left
                // input is a cross, rename *inside* its factors so the
                // collision disappears for good (renaming above the cross
                // would just be pulled and re-collide).
                let Node::CrossJoin {
                    left: ca,
                    right: cb,
                } = out.node(g).clone()
                else {
                    return None;
                };
                let sa = schema_of(out, ca)?;
                let sb = schema_of(out, cb)?;
                let salt = out.len();
                let mut fmap: HashMap<ColName, ColName> = HashMap::new();
                let fresh_side = |out: &mut Plan,
                                  side: NodeId,
                                  schema: &Schema,
                                  fmap: &mut HashMap<ColName, ColName>|
                 -> NodeId {
                    let proj: Vec<(ColName, ColName)> = schema
                        .names()
                        .map(|n| {
                            let f: ColName = Arc::from(format!("__jr{salt}_{}", fmap.len()));
                            fmap.insert(n.clone(), f.clone());
                            (f, n.clone())
                        })
                        .collect();
                    out.project(side, proj)
                };
                let ca2 = fresh_side(out, ca, &sa, &mut fmap);
                let cb2 = fresh_side(out, cb, &sb, &mut fmap);
                let g2 = out.cross(ca2, cb2);
                let cols2: Vec<(ColName, ColName)> = cols
                    .iter()
                    .map(|(new, old)| (new.clone(), fmap[old].clone()))
                    .collect();
                let p2 = out.project(g2, cols2);
                let j = mk_join(out, p2, right, on.clone());
                return Some(Emit::Forward(j));
            }
            let map: HashMap<&ColName, &ColName> = cols.iter().map(|(n, o)| (n, o)).collect();
            let renamed: Option<Vec<ColName>> = on
                .left
                .iter()
                .map(|c| map.get(c).map(|o| (*o).clone()))
                .collect();
            let renamed = renamed?;
            let on2 = JoinCols::new(renamed, on.right.clone());
            let inner = mk_join(out, g, right, on2);
            let mut out_cols = cols.clone();
            if matches!(kind, JoinKind::Equi) {
                for n in right_schema.names() {
                    out_cols.push((n.clone(), n.clone()));
                }
            }
            Some(Emit::Replace(Node::Project {
                input: inner,
                cols: out_cols,
            }))
        }
        Node::Attach {
            input: g,
            col,
            value,
        } => {
            if on.left.contains(&col) {
                return None;
            }
            let inner = mk_join(out, g, right, on.clone());
            match kind {
                JoinKind::Equi => {
                    // (g + col) ⋈ r has col before r's columns; re-order
                    let attached = out.attach(inner, col.clone(), value);
                    let mut cols: Vec<(ColName, ColName)> = Vec::new();
                    for n in left_schema.names() {
                        cols.push((n.clone(), n.clone()));
                    }
                    for n in right_schema.names() {
                        cols.push((n.clone(), n.clone()));
                    }
                    Some(Emit::Replace(Node::Project {
                        input: attached,
                        cols,
                    }))
                }
                _ => Some(Emit::Replace(Node::Attach {
                    input: inner,
                    col,
                    value,
                })),
            }
        }
        _ => None,
    }
}

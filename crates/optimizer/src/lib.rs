//! # `ferry-optimizer` — algebraic plan rewriting
//!
//! The role Pathfinder \[10, 11\] plays in the paper's pipeline (Fig. 2,
//! step 3 ): loop-lifting is deliberately compositional and spendthrift —
//! it re-projects at every join, threads dead columns through whole
//! subplans, and never reuses a computation it could share. This crate
//! shrinks those plans before execution or SQL generation:
//!
//! * [`passes::cse`] — hash-consing common subplans (the DAG becomes real),
//! * [`passes::merge_projects`] — collapse `Project∘Project`, drop identity
//!   projections,
//! * [`passes::fold_constants`] — constant folding and predicate
//!   simplification inside scalar expressions, `Select(true)` removal,
//!   `Select∘Select` fusion,
//! * [`passes::prune_columns`] — *icols* (needed-columns) analysis: trim
//!   projection widths, bypass unused `Attach`/`Compute`/row-numbering
//!   operators, narrow `UnionAll` inputs.
//!
//! The driver iterates the passes to a fixpoint (bounded). Every pass
//! preserves plan semantics *including* the deterministic row-numbering
//! the compiler relies on: no pass reorders or merges the order-defining
//! `RowNum`/`DenseRank` operators; they are only removed when their output
//! column is provably unused.

pub mod joins;
pub mod passes;
pub mod rewrite;

use ferry_algebra::{NodeId, Plan};

/// Statistics of one optimisation run (experiment X1 reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Operators reachable from the roots before optimisation.
    pub nodes_before: usize,
    /// … and after.
    pub nodes_after: usize,
    /// Fixpoint iterations executed.
    pub rounds: usize,
}

/// Optimise the plan under the given roots; returns the rewritten plan and
/// the relocated roots.
pub fn optimize(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>) {
    let (p, r, _) = optimize_with_stats(plan, roots);
    (p, r)
}

/// [`optimize`], also reporting before/after plan sizes.
pub fn optimize_with_stats(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>, OptStats) {
    let mut stats = OptStats {
        nodes_before: reachable_size(plan, roots),
        ..OptStats::default()
    };
    let mut plan = plan.clone();
    let mut roots = roots.to_vec();
    const MAX_ROUNDS: usize = 8;
    // composite cost: operators + total column traffic — column pruning
    // trades a few extra Project operators for much narrower tuples
    let cost = |p: &Plan, r: &[NodeId]| reachable_size(p, r) + reachable_width(p, r);
    // join recovery first: it dissolves the loop × table crosses that
    // dominate execution cost (the Pathfinder/join-graph-isolation role);
    // plan-size cost is not the right metric for it, so it runs outside
    // the cost-guarded loop
    let (jp, jr) = joins::recover_joins(&plan, &roots);
    plan = jp;
    roots = jr;
    for round in 0..MAX_ROUNDS {
        stats.rounds = round + 1;
        let before = cost(&plan, &roots);
        let (p1, r1) = passes::cse(&plan, &roots);
        let (p2, r2) = passes::fold_constants(&p1, &r1);
        let (p3, r3) = passes::prune_columns(&p2, &r2);
        let (p4, r4) = passes::merge_projects(&p3, &r3);
        if cost(&p4, &r4) >= before {
            // this round did not pay for itself — keep the previous plan
            break;
        }
        plan = p4;
        roots = r4;
    }
    // final garbage collection: drop unreachable arena entries
    let (plan, roots) = rewrite::gc(&plan, &roots);
    stats.nodes_after = reachable_size(&plan, &roots);
    (plan, roots, stats)
}

/// Number of distinct operators reachable from the roots.
pub fn reachable_size(plan: &Plan, roots: &[NodeId]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &r in roots {
        seen.extend(plan.reachable(r));
    }
    seen.len()
}

/// Total column count across all reachable operators — the metric column
/// pruning improves (node counts barely move on loop-lifted plans, but the
/// tuples flowing between operators get much narrower).
pub fn reachable_width(plan: &Plan, roots: &[NodeId]) -> usize {
    let schemas = match ferry_algebra::infer_schema(plan) {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let mut seen = std::collections::HashSet::new();
    for &r in roots {
        seen.extend(plan.reachable(r));
    }
    seen.iter().map(|id| schemas[id.index()].len()).sum()
}

/// Convenience: a shareable rewriter suitable for
/// `ferry::Connection::with_optimizer` (the `Arc` lets every clone of a
/// concurrent `Connection` hold the same rewriter).
#[allow(clippy::type_complexity)]
pub fn rewriter() -> std::sync::Arc<dyn Fn(&Plan, &[NodeId]) -> (Plan, Vec<NodeId>) + Send + Sync> {
    std::sync::Arc::new(optimize)
}

//! # `ferry-optimizer` — algebraic plan rewriting
//!
//! The role Pathfinder \[10, 11\] plays in the paper's pipeline (Fig. 2,
//! step 3 ): loop-lifting is deliberately compositional and spendthrift —
//! it re-projects at every join, threads dead columns through whole
//! subplans, and never reuses a computation it could share. This crate
//! shrinks those plans before execution or SQL generation:
//!
//! * [`passes::cse`] — hash-consing common subplans (the DAG becomes real),
//! * [`passes::merge_projects`] — collapse `Project∘Project`, drop identity
//!   projections,
//! * [`passes::fold_constants`] — constant folding and predicate
//!   simplification inside scalar expressions, `Select(true)` removal,
//!   `Select∘Select` fusion,
//! * [`passes::prune_columns`] — *icols* (needed-columns) analysis: trim
//!   projection widths, bypass unused `Attach`/`Compute`/row-numbering
//!   operators, narrow `UnionAll` inputs.
//!
//! The driver iterates the passes to a fixpoint (bounded). Every pass
//! preserves plan semantics *including* the deterministic row-numbering
//! the compiler relies on: no pass reorders or merges the order-defining
//! `RowNum`/`DenseRank` operators; they are only removed when their output
//! column is provably unused.

pub mod joins;
pub mod passes;
pub mod rewrite;

use ferry_algebra::{NodeId, Plan};
pub use ferry_telemetry::{OptReport, PassStat};

/// Statistics of one optimisation run (experiment X1 reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Operators reachable from the roots before optimisation.
    pub nodes_before: usize,
    /// … and after.
    pub nodes_after: usize,
    /// Fixpoint iterations executed.
    pub rounds: usize,
}

/// Optimise the plan under the given roots; returns the rewritten plan and
/// the relocated roots.
pub fn optimize(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>) {
    let (p, r, _) = optimize_report(plan, roots);
    (p, r)
}

/// [`optimize`], also reporting before/after plan sizes.
pub fn optimize_with_stats(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>, OptStats) {
    let (p, r, rep) = optimize_report(plan, roots);
    let stats = OptStats {
        nodes_before: rep.nodes_before,
        nodes_after: rep.nodes_after,
        rounds: rep.rounds,
    };
    (p, r, stats)
}

/// Run one named pass under a telemetry span, accumulating its
/// [`PassStat`] into the report. "Changed" is detected on the
/// (size, width) fingerprint of the reachable plan — the same metrics the
/// fixpoint cost function watches.
fn run_pass(
    name: &'static str,
    plan: Plan,
    roots: Vec<NodeId>,
    report: &mut OptReport,
    f: impl FnOnce(&Plan, &[NodeId]) -> (Plan, Vec<NodeId>),
) -> (Plan, Vec<NodeId>) {
    let before = (
        reachable_size(&plan, &roots),
        reachable_width(&plan, &roots),
    );
    let start = ferry_telemetry::now_ns();
    let mut span = ferry_telemetry::span(name, "optimize");
    let (p, r) = f(&plan, &roots);
    let after = (reachable_size(&p, &r), reachable_width(&p, &r));
    let elapsed = ferry_telemetry::now_ns().saturating_sub(start);
    let changed = after != before;
    span.attr("nodes_before", before.0)
        .attr("nodes_after", after.0)
        .attr("changed", changed);
    drop(span);
    let stat = match report.passes.iter_mut().find(|s| s.pass == name) {
        Some(stat) => stat,
        None => {
            report.passes.push(PassStat {
                pass: name,
                runs: 0,
                changed: 0,
                nodes_removed: 0,
                elapsed_ns: 0,
            });
            report.passes.last_mut().expect("just pushed")
        }
    };
    stat.runs += 1;
    stat.changed += changed as u64;
    stat.nodes_removed += before.0 as i64 - after.0 as i64;
    stat.elapsed_ns += elapsed;
    (p, r)
}

/// [`optimize`], reporting per-pass work: rewrites applied, node deltas
/// and wall time per pass, rendered by `Connection::explain` and recorded
/// as one `"optimize"`-category telemetry span per pass run.
pub fn optimize_report(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>, OptReport) {
    let mut report = OptReport {
        nodes_before: reachable_size(plan, roots),
        ..OptReport::default()
    };
    let mut plan = plan.clone();
    let mut roots = roots.to_vec();
    const MAX_ROUNDS: usize = 8;
    // composite cost: operators + total column traffic — column pruning
    // trades a few extra Project operators for much narrower tuples
    let cost = |p: &Plan, r: &[NodeId]| reachable_size(p, r) + reachable_width(p, r);
    // join recovery first: it dissolves the loop × table crosses that
    // dominate execution cost (the Pathfinder/join-graph-isolation role);
    // plan-size cost is not the right metric for it, so it runs outside
    // the cost-guarded loop
    let (jp, jr) = run_pass("join_recovery", plan, roots, &mut report, |p, r| {
        joins::recover_joins(p, r)
    });
    plan = jp;
    roots = jr;
    for round in 0..MAX_ROUNDS {
        report.rounds = round + 1;
        let before = cost(&plan, &roots);
        let (p1, r1) = run_pass("cse", plan.clone(), roots.clone(), &mut report, |p, r| {
            passes::cse(p, r)
        });
        let (p2, r2) = run_pass("fold_constants", p1, r1, &mut report, |p, r| {
            passes::fold_constants(p, r)
        });
        let (p3, r3) = run_pass("prune_columns", p2, r2, &mut report, |p, r| {
            passes::prune_columns(p, r)
        });
        let (p4, r4) = run_pass("merge_projects", p3, r3, &mut report, |p, r| {
            passes::merge_projects(p, r)
        });
        if cost(&p4, &r4) >= before {
            // this round did not pay for itself — keep the previous plan
            break;
        }
        plan = p4;
        roots = r4;
    }
    // final garbage collection: drop unreachable arena entries
    let (plan, roots) = rewrite::gc(&plan, &roots);
    report.nodes_after = reachable_size(&plan, &roots);
    (plan, roots, report)
}

/// Number of distinct operators reachable from the roots.
pub fn reachable_size(plan: &Plan, roots: &[NodeId]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &r in roots {
        seen.extend(plan.reachable(r));
    }
    seen.len()
}

/// Total column count across all reachable operators — the metric column
/// pruning improves (node counts barely move on loop-lifted plans, but the
/// tuples flowing between operators get much narrower).
pub fn reachable_width(plan: &Plan, roots: &[NodeId]) -> usize {
    let schemas = match ferry_algebra::infer_schema(plan) {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let mut seen = std::collections::HashSet::new();
    for &r in roots {
        seen.extend(plan.reachable(r));
    }
    seen.iter().map(|id| schemas[id.index()].len()).sum()
}

/// Convenience: a shareable rewriter suitable for
/// `ferry::Connection::with_optimizer` (the `Arc` lets every clone of a
/// concurrent `Connection` hold the same rewriter). The returned
/// [`OptReport`] rides along in the compiled bundle, feeding `explain`.
#[allow(clippy::type_complexity)]
pub fn rewriter(
) -> std::sync::Arc<dyn Fn(&Plan, &[NodeId]) -> (Plan, Vec<NodeId>, Option<OptReport>) + Send + Sync>
{
    std::sync::Arc::new(|plan, roots| {
        let (p, r, rep) = optimize_report(plan, roots);
        (p, r, Some(rep))
    })
}

//! Rebuild-based rewriting infrastructure.
//!
//! All passes share one mechanism: walk the arena in topological (index)
//! order, give the pass a chance to emit a replacement for each node (with
//! children already remapped), and translate the roots. A pass that
//! returns `None` keeps the node as-is (with remapped children).

use ferry_algebra::{Node, NodeId, Plan};

/// Outcome of rewriting a single node.
pub enum Emit {
    /// Keep the (child-remapped) node unchanged.
    Keep,
    /// Replace the node with a different one (children must already be
    /// expressed in *new* plan ids).
    Replace(Node),
    /// Forward all references to an existing node of the new plan.
    Forward(NodeId),
}

/// Rebuild `plan` restricted to nodes reachable from `roots`, applying `f`
/// to every node. `f` receives the new plan (so it can add helper nodes)
/// and the candidate node with children already remapped.
pub fn rebuild(
    plan: &Plan,
    roots: &[NodeId],
    mut f: impl FnMut(&mut Plan, NodeId, Node) -> Emit,
) -> (Plan, Vec<NodeId>) {
    let mut reachable = vec![false; plan.len()];
    for &r in roots {
        for id in plan.reachable(r) {
            reachable[id.index()] = true;
        }
    }
    let mut out = Plan::new();
    let mut map: Vec<Option<NodeId>> = vec![None; plan.len()];
    for (i, node) in plan.nodes().iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let id = NodeId(i as u32);
        let mut node = node.clone();
        node.map_children(|c| map[c.index()].expect("child remapped before parent"));
        let new_id = match f(&mut out, id, node.clone()) {
            Emit::Keep => out.add(node),
            Emit::Replace(n) => out.add(n),
            Emit::Forward(target) => target,
        };
        map[i] = Some(new_id);
    }
    let new_roots = roots
        .iter()
        .map(|r| map[r.index()].expect("root remapped"))
        .collect();
    (out, new_roots)
}

/// Drop unreachable arena entries (pure copy of the live subgraph).
pub fn gc(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>) {
    rebuild(plan, roots, |_, _, _| Emit::Keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::{Schema, Ty, Value};

    #[test]
    fn gc_drops_unreachable_nodes() {
        let mut p = Plan::new();
        let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![]);
        let _orphan = p.lit(Schema::of(&[("y", Ty::Int)]), vec![]);
        let b = p.attach(a, "z", Value::Int(1));
        let (p2, roots) = gc(&p, &[b]);
        assert_eq!(p2.len(), 2);
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn rebuild_can_forward() {
        let mut p = Plan::new();
        let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![]);
        let b = p.distinct(a);
        let c = p.distinct(b);
        // drop every Distinct
        let (p2, roots) = rebuild(&p, &[c], |_, _, node| match node {
            Node::Distinct { input } => Emit::Forward(input),
            _ => Emit::Keep,
        });
        assert_eq!(p2.len(), 1);
        assert!(matches!(p2.node(roots[0]), Node::Lit { .. }));
    }
}

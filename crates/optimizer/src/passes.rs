//! The rewrite passes.

use crate::rewrite::{rebuild, Emit};
use ferry_algebra::{infer_schema, BinOp, ColName, Expr, Node, NodeId, Plan, Schema, UnOp, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

// ------------------------------------------------------------------- CSE

/// Hash-consing: structurally identical nodes are merged, turning repeated
/// compilation patterns (the re-projected `loop` relation above all) into
/// genuine DAG sharing.
pub fn cse(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>) {
    let mut seen: HashMap<String, NodeId> = HashMap::new();
    rebuild(plan, roots, |out, _, node| {
        let key = format!("{node:?}");
        match seen.get(&key) {
            Some(&id) => Emit::Forward(id),
            None => {
                // the id `rebuild` will assign on Keep
                seen.insert(key, NodeId(out.len() as u32));
                Emit::Keep
            }
        }
    })
}

// -------------------------------------------------------- project merging

/// Collapse `Project ∘ Project` chains and eliminate identity projections.
pub fn merge_projects(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>) {
    let schemas = match infer_schema(plan) {
        Ok(s) => s,
        Err(_) => return (plan.clone(), roots.to_vec()),
    };
    // old-id → (old child, mapping) for projects, consulted when the parent
    // project composes over its (old) child
    rebuild(plan, roots, |out, old_id, node| {
        let Node::Project { input, cols } = &node else {
            return Emit::Keep;
        };
        // identity?
        let input_schema = input_schema_of(plan, old_id, &schemas);
        if let Some(s) = input_schema {
            let identity = cols.len() == s.len()
                && cols
                    .iter()
                    .zip(s.cols())
                    .all(|((new, old), (name, _))| new == old && new == name);
            if identity {
                return Emit::Forward(*input);
            }
        }
        // compose over a child projection (the child already lives in the
        // new plan — inspect it there)
        if let Node::Project {
            input: grand,
            cols: inner,
        } = out.node(*input)
        {
            let inner: HashMap<&ColName, &ColName> = inner.iter().map(|(n, o)| (n, o)).collect();
            let composed: Option<Vec<(ColName, ColName)>> = cols
                .iter()
                .map(|(new, mid)| inner.get(mid).map(|old| (new.clone(), (*old).clone())))
                .collect();
            if let Some(cols) = composed {
                return Emit::Replace(Node::Project {
                    input: *grand,
                    cols,
                });
            }
        }
        Emit::Keep
    })
}

/// The schema of a single-input node's child, looked up in the *old* plan.
fn input_schema_of<'a>(plan: &Plan, old_id: NodeId, schemas: &'a [Schema]) -> Option<&'a Schema> {
    plan.node(old_id)
        .children()
        .first()
        .map(|c| &schemas[c.index()])
}

// ------------------------------------------------------- constant folding

/// Fold constants inside scalar expressions, remove `Select(true)`, fuse
/// `Select ∘ Select` (conjunction order preserves the guard-then-use
/// evaluation order, so guarded partial expressions stay safe).
pub fn fold_constants(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>) {
    rebuild(plan, roots, |out, _, node| match node {
        Node::Select { input, pred } => {
            let pred = simplify(&pred);
            if pred == Expr::Const(Value::Bool(true)) {
                return Emit::Forward(input);
            }
            // fuse with a child select: σ_p2(σ_p1(x)) = σ_(p1 ∧ p2)(x)
            if let Node::Select {
                input: grand,
                pred: inner,
            } = out.node(input)
            {
                let fused = Expr::and(inner.clone(), pred);
                return Emit::Replace(Node::Select {
                    input: *grand,
                    pred: fused,
                });
            }
            Emit::Replace(Node::Select { input, pred })
        }
        Node::Compute { input, col, expr } => {
            let expr = simplify(&expr);
            if let Expr::Const(v) = &expr {
                return Emit::Replace(Node::Attach {
                    input,
                    col,
                    value: v.clone(),
                });
            }
            Emit::Replace(Node::Compute { input, col, expr })
        }
        Node::ThetaJoin { left, right, pred } => Emit::Replace(Node::ThetaJoin {
            left,
            right,
            pred: simplify(&pred),
        }),
        _ => Emit::Keep,
    })
}

/// Conservative expression simplification: never turns a non-erroring
/// expression into an erroring one or vice versa (division by zero etc. is
/// left in place).
pub fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::Col(_) | Expr::Const(_) => e.clone(),
        Expr::Un(UnOp::Not, x) => match simplify(x) {
            Expr::Const(Value::Bool(b)) => Expr::Const(Value::Bool(!b)),
            Expr::Un(UnOp::Not, inner) => (*inner).clone(),
            x => Expr::Un(UnOp::Not, Arc::new(x)),
        },
        Expr::Un(op, x) => Expr::Un(*op, Arc::new(simplify(x))),
        Expr::Case(c, t, f) => match simplify(c) {
            Expr::Const(Value::Bool(true)) => simplify(t),
            Expr::Const(Value::Bool(false)) => simplify(f),
            c => Expr::Case(Arc::new(c), Arc::new(simplify(t)), Arc::new(simplify(f))),
        },
        Expr::Cast(ty, x) => {
            let x = simplify(x);
            if x.infer_ty(&Schema::empty()) == Some(*ty) {
                // cast to the expression's own type — only provable here
                // for constants
                if let Expr::Const(_) = x {
                    return x;
                }
            }
            Expr::Cast(*ty, Arc::new(x))
        }
        Expr::Bin(op, l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            // boolean identities (respecting evaluation order: the left
            // operand is evaluated first, so `true AND x` → `x` is safe,
            // and `false AND x` → `false` matches short-circuiting)
            match (op, &l, &r) {
                (BinOp::And, Expr::Const(Value::Bool(true)), _) => return r,
                (BinOp::And, Expr::Const(Value::Bool(false)), _) => {
                    return Expr::Const(Value::Bool(false))
                }
                (BinOp::Or, Expr::Const(Value::Bool(false)), _) => return r,
                (BinOp::Or, Expr::Const(Value::Bool(true)), _) => {
                    return Expr::Const(Value::Bool(true))
                }
                _ => {}
            }
            if let (Expr::Const(a), Expr::Const(b)) = (&l, &r) {
                if let Some(v) = fold_bin(*op, a, b) {
                    return Expr::Const(v);
                }
            }
            Expr::Bin(*op, Arc::new(l), Arc::new(r))
        }
    }
}

/// Fold a binary operator over two constants; `None` when folding would
/// change error behaviour (overflow, division by zero) or is unsupported.
fn fold_bin(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    use BinOp::*;
    if op.is_cmp() && a.ty() == b.ty() {
        let o = a.cmp(b);
        let r = match op {
            Eq => o.is_eq(),
            Ne => o.is_ne(),
            Lt => o.is_lt(),
            Le => o.is_le(),
            Gt => o.is_gt(),
            Ge => o.is_ge(),
            _ => unreachable!(),
        };
        return Some(Value::Bool(r));
    }
    match (op, a, b) {
        (Add, Value::Int(x), Value::Int(y)) => x.checked_add(*y).map(Value::Int),
        (Sub, Value::Int(x), Value::Int(y)) => x.checked_sub(*y).map(Value::Int),
        (Mul, Value::Int(x), Value::Int(y)) => x.checked_mul(*y).map(Value::Int),
        (Add, Value::Nat(x), Value::Nat(y)) => x.checked_add(*y).map(Value::Nat),
        (Concat, Value::Str(x), Value::Str(y)) => Some(Value::str(format!("{x}{y}"))),
        (Add, Value::Dbl(x), Value::Dbl(y)) => Some(Value::Dbl(x + y)),
        (Sub, Value::Dbl(x), Value::Dbl(y)) => Some(Value::Dbl(x - y)),
        (Mul, Value::Dbl(x), Value::Dbl(y)) => Some(Value::Dbl(x * y)),
        _ => None,
    }
}

// ------------------------------------------------------- column pruning

/// *icols* analysis: compute the columns each operator's output actually
/// contributes to the result, then narrow projections, bypass unused
/// column-producing operators, and pin `UnionAll` inputs to the needed
/// columns.
pub fn prune_columns(plan: &Plan, roots: &[NodeId]) -> (Plan, Vec<NodeId>) {
    let schemas = match infer_schema(plan) {
        Ok(s) => s,
        Err(_) => return (plan.clone(), roots.to_vec()),
    };
    let mut reachable = vec![false; plan.len()];
    for &r in roots {
        for id in plan.reachable(r) {
            reachable[id.index()] = true;
        }
    }
    // needed output columns per node (by name)
    let mut needed: Vec<HashSet<ColName>> = vec![HashSet::new(); plan.len()];
    for &r in roots {
        needed[r.index()] = schemas[r.index()].names().cloned().collect();
    }
    for i in (0..plan.len()).rev() {
        if !reachable[i] {
            continue;
        }
        let id = NodeId(i as u32);
        let node = plan.node(id);
        let my: HashSet<ColName> = needed[i].clone();
        let mut demand = |child: NodeId, cols: HashSet<ColName>| {
            needed[child.index()].extend(cols);
        };
        match node {
            Node::TableRef { .. } | Node::Lit { .. } => {}
            Node::Attach { input, col, .. } => {
                let mut n = my.clone();
                n.remove(col);
                demand(*input, n);
            }
            Node::Project { input, cols } => {
                let mut n: HashSet<ColName> = cols
                    .iter()
                    .filter(|(new, _)| my.contains(new))
                    .map(|(_, old)| old.clone())
                    .collect();
                if n.is_empty() {
                    if let Some((_, old)) = cols.first() {
                        // the rewrite keeps the first column when nothing
                        // is demanded — its source must stay alive
                        n.insert(old.clone());
                    }
                }
                demand(*input, n);
            }
            Node::Compute { input, col, expr } => {
                let mut n = my.clone();
                let used = n.remove(col);
                if used {
                    let mut cs = Vec::new();
                    expr.columns(&mut cs);
                    n.extend(cs);
                }
                demand(*input, n);
            }
            Node::Select { input, pred } => {
                let mut n = my.clone();
                let mut cs = Vec::new();
                pred.columns(&mut cs);
                n.extend(cs);
                demand(*input, n);
            }
            Node::Distinct { input } => {
                // duplicate elimination is sensitive to every column
                let all = schemas[input.index()].names().cloned().collect();
                demand(*input, all);
            }
            Node::UnionAll { left, right } => {
                // positional: translate the needed left-names to the right
                let ls = &schemas[left.index()];
                let rs = &schemas[right.index()];
                let mut ln = HashSet::new();
                let mut rn = HashSet::new();
                for (pos, (name, _)) in ls.cols().iter().enumerate() {
                    if my.contains(name) {
                        ln.insert(name.clone());
                        rn.insert(rs.cols()[pos].0.clone());
                    }
                }
                demand(*left, ln);
                demand(*right, rn);
            }
            Node::Difference { left, right } => {
                let all_l: HashSet<ColName> = schemas[left.index()].names().cloned().collect();
                let all_r: HashSet<ColName> = schemas[right.index()].names().cloned().collect();
                demand(*left, all_l);
                demand(*right, all_r);
            }
            Node::CrossJoin { left, right } => {
                let ls = &schemas[left.index()];
                demand(
                    *left,
                    my.iter().filter(|c| ls.contains(c)).cloned().collect(),
                );
                let rs = &schemas[right.index()];
                demand(
                    *right,
                    my.iter().filter(|c| rs.contains(c)).cloned().collect(),
                );
            }
            Node::EquiJoin { left, right, on } => {
                let ls = &schemas[left.index()];
                let mut ln: HashSet<ColName> =
                    my.iter().filter(|c| ls.contains(c)).cloned().collect();
                ln.extend(on.left.iter().cloned());
                demand(*left, ln);
                let rs = &schemas[right.index()];
                let mut rn: HashSet<ColName> =
                    my.iter().filter(|c| rs.contains(c)).cloned().collect();
                rn.extend(on.right.iter().cloned());
                demand(*right, rn);
            }
            Node::SemiJoin { left, right, on } | Node::AntiJoin { left, right, on } => {
                let mut ln = my.clone();
                ln.extend(on.left.iter().cloned());
                demand(*left, ln);
                demand(*right, on.right.iter().cloned().collect());
            }
            Node::ThetaJoin { left, right, pred } => {
                let mut cs = Vec::new();
                pred.columns(&mut cs);
                let ls = &schemas[left.index()];
                let mut ln: HashSet<ColName> =
                    my.iter().filter(|c| ls.contains(c)).cloned().collect();
                ln.extend(cs.iter().filter(|c| ls.contains(c)).cloned());
                demand(*left, ln);
                let rs = &schemas[right.index()];
                let mut rn: HashSet<ColName> =
                    my.iter().filter(|c| rs.contains(c)).cloned().collect();
                rn.extend(cs.iter().filter(|c| rs.contains(c)).cloned());
                demand(*right, rn);
            }
            Node::RowNum {
                input,
                col,
                part,
                order,
            }
            | Node::DenseRank {
                input,
                col,
                part,
                order,
            } => {
                let mut n = my.clone();
                let used = n.remove(col);
                if used {
                    n.extend(part.iter().cloned());
                    n.extend(order.iter().map(|(c, _)| c.clone()));
                }
                demand(*input, n);
            }
            Node::RowRank { input, col, order } => {
                let mut n = my.clone();
                let used = n.remove(col);
                if used {
                    n.extend(order.iter().map(|(c, _)| c.clone()));
                }
                demand(*input, n);
            }
            Node::GroupBy { input, keys, aggs } => {
                let mut n: HashSet<ColName> = keys.iter().cloned().collect();
                for a in aggs {
                    if my.contains(&a.output) {
                        if let Some(i) = &a.input {
                            n.insert(i.clone());
                        }
                    }
                }
                demand(*input, n);
            }
            Node::Serialize { input, order, cols } => {
                let mut n: HashSet<ColName> = cols.iter().cloned().collect();
                n.extend(order.iter().map(|(c, _)| c.clone()));
                demand(*input, n);
            }
        }
    }

    // rewrite using the needed sets
    let root_set: HashSet<NodeId> = roots.iter().copied().collect();
    rebuild(plan, roots, |out, old_id, node| {
        let my = &needed[old_id.index()];
        let emit = match node.clone() {
            Node::Project { input, mut cols } => {
                cols.retain(|(new, _)| my.contains(new));
                if cols.is_empty() {
                    // keep at least one column so the relation keeps its
                    // cardinality
                    let (new, old) = match plan.node(old_id) {
                        Node::Project { cols, .. } => cols[0].clone(),
                        _ => unreachable!(),
                    };
                    cols.push((new, old));
                }
                Emit::Replace(Node::Project { input, cols })
            }
            Node::Attach { input, col, .. } if !my.contains(&col) => Emit::Forward(input),
            Node::Compute { input, col, .. } if !my.contains(&col) => Emit::Forward(input),
            Node::RowNum { input, col, .. } if !my.contains(&col) => Emit::Forward(input),
            Node::RowRank { input, col, .. } if !my.contains(&col) => Emit::Forward(input),
            Node::DenseRank { input, col, .. } if !my.contains(&col) => Emit::Forward(input),
            Node::GroupBy {
                input,
                keys,
                mut aggs,
            } => {
                aggs.retain(|a| my.contains(&a.output));
                Emit::Replace(Node::GroupBy { input, keys, aggs })
            }
            Node::UnionAll { left, right } => {
                // pin both inputs to the needed columns, positionally
                let (old_left, old_right) = match plan.node(old_id) {
                    Node::UnionAll { left, right } => (*left, *right),
                    _ => unreachable!(),
                };
                let ls = &schemas[old_left.index()];
                let rs = &schemas[old_right.index()];
                let keep: Vec<usize> = (0..ls.len())
                    .filter(|&p| my.contains(&ls.cols()[p].0))
                    .collect();
                if keep.len() == ls.len() || keep.is_empty() {
                    Emit::Keep
                } else {
                    let lproj: Vec<(ColName, ColName)> = keep
                        .iter()
                        .map(|&p| (ls.cols()[p].0.clone(), ls.cols()[p].0.clone()))
                        .collect();
                    let rproj: Vec<(ColName, ColName)> = keep
                        .iter()
                        .map(|&p| (rs.cols()[p].0.clone(), rs.cols()[p].0.clone()))
                        .collect();
                    let l2 = out.project(left, lproj);
                    let r2 = out.project(right, rproj);
                    Emit::Replace(Node::UnionAll {
                        left: l2,
                        right: r2,
                    })
                }
            }
            _ => Emit::Keep,
        };
        // narrow over-wide outputs right where they appear: a pruning
        // projection on top stops dead columns from flowing through joins
        if root_set.contains(&old_id) {
            return emit;
        }
        let produced = match emit {
            Emit::Forward(t) => return Emit::Forward(t),
            Emit::Keep => node,
            Emit::Replace(n) => n,
        };
        // recompute the produced node's width from the *original* schema —
        // narrowing below only removed columns outside `my`
        let schema = &schemas[old_id.index()];
        let produced_is_narrow = matches!(
            produced,
            Node::Project { .. } | Node::Serialize { .. } | Node::GroupBy { .. }
        );
        if produced_is_narrow || my.len() >= schema.len() {
            return Emit::Replace(produced);
        }
        let cols: Vec<(ColName, ColName)> = schema
            .names()
            .filter(|n| my.contains(*n))
            .map(|n| (n.clone(), n.clone()))
            .collect();
        if cols.is_empty() {
            return Emit::Replace(produced);
        }
        let id = out.add(produced);
        Emit::Forward(out.project(id, cols))
    })
}

//! Vectorized expression kernels: batch evaluation over typed chunks.
//!
//! The scalar evaluator ([`crate::eval`]) interprets a [`Bound`] tree per
//! row — every cell goes through a `Value` match. This module lowers the
//! same expressions to a flat **register program** over type-specialized
//! column chunks ([`ColVec`]): each instruction processes a batch of up to
//! [`BATCH_ROWS`] rows in a tight monomorphic loop (`&[i64]` + `&[i64]` →
//! `Vec<i64>`), so the per-row cost is an add and a bounds check instead
//! of an enum dispatch and a heap-happy `Value` clone.
//!
//! ## Semantics contract
//!
//! The kernels are *observably identical* to the scalar oracle — same
//! values, same errors (message strings included) — with one deliberate
//! freedom: when several rows of one batch fail, the reported row may
//! differ (scalar walks rows outer-most, kernels walk instructions
//! outer-most). Three scalar behaviours cannot be reproduced by a
//! straight-line batch program, so [`compile`] refuses those expressions
//! and the operator falls back to scalar:
//!
//! - `AND`/`OR` short-circuiting: a kernel evaluates both sides for the
//!   whole batch, so a *fallible* right-hand side (one that can raise,
//!   e.g. a division) must not be vectorized.
//! - `CASE` evaluates only the taken branch per row; kernels pre-evaluate
//!   both, so fallible branches bail out.
//! - `Nat` division/modulo are not defined by the scalar oracle (they hit
//!   its catch-all error) — kernels don't invent them.
//!
//! Everything else — checked `Int`/`Nat` arithmetic with the oracle's
//! exact error strings, `wrapping_div` after the zero check (pinning the
//! `i64::MIN / -1` quirk), `total_cmp` double ordering — is reproduced
//! instruction by instruction. `tests/differential.rs` locks the contract
//! in cell-for-cell.

use crate::error::EngineError;
use crate::eval;
use crate::par::ParConfig;
use ferry_algebra::{BinOp, ColVec, Expr, Rel, Schema, Ty, UnOp, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Rows per kernel batch. Large enough to amortise dispatch, small enough
/// that a batch's registers stay cache-resident.
pub const BATCH_ROWS: usize = 1024;

fn ee(msg: impl Into<String>) -> EngineError {
    EngineError::Eval(msg.into())
}

/// A batch register: one column of intermediate results, type-specialized
/// like the chunks it is computed from. `Val` is the totality fallback
/// (unit columns and other slow domains).
#[derive(Debug)]
pub enum Reg {
    I64(Vec<i64>),
    U64(Vec<u64>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<Arc<str>>),
    Val(Vec<Value>),
}

impl Reg {
    pub(crate) fn new(ty: Ty) -> Reg {
        match ty {
            Ty::Int => Reg::I64(Vec::new()),
            Ty::Nat => Reg::U64(Vec::new()),
            Ty::Dbl => Reg::F64(Vec::new()),
            Ty::Bool => Reg::Bool(Vec::new()),
            Ty::Str => Reg::Str(Vec::new()),
            Ty::Unit => Reg::Val(Vec::new()),
        }
    }

    /// Cell `k` as an owned [`Value`].
    pub fn value(&self, k: usize) -> Value {
        match self {
            Reg::I64(v) => Value::Int(v[k]),
            Reg::U64(v) => Value::Nat(v[k]),
            Reg::F64(v) => Value::Dbl(v[k]),
            Reg::Bool(v) => Value::Bool(v[k]),
            Reg::Str(v) => Value::Str(v[k].clone()),
            Reg::Val(v) => v[k].clone(),
        }
    }

    fn push(&mut self, v: Value) -> Result<(), EngineError> {
        match (self, v) {
            (Reg::I64(o), Value::Int(x)) => o.push(x),
            (Reg::U64(o), Value::Nat(x)) => o.push(x),
            (Reg::F64(o), Value::Dbl(x)) => o.push(x),
            (Reg::Bool(o), Value::Bool(x)) => o.push(x),
            (Reg::Str(o), Value::Str(x)) => o.push(x),
            (Reg::Val(o), v) => o.push(v),
            (_, v) => return Err(ee(format!("kernel register type confusion on {v}"))),
        }
        Ok(())
    }

    fn clear(&mut self) {
        match self {
            Reg::I64(v) => v.clear(),
            Reg::U64(v) => v.clear(),
            Reg::F64(v) => v.clear(),
            Reg::Bool(v) => v.clear(),
            Reg::Str(v) => v.clear(),
            Reg::Val(v) => v.clear(),
        }
    }

    /// Number of cells currently held.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        match self {
            Reg::I64(v) => v.len(),
            Reg::U64(v) => v.len(),
            Reg::F64(v) => v.len(),
            Reg::Bool(v) => v.len(),
            Reg::Str(v) => v.len(),
            Reg::Val(v) => v.len(),
        }
    }

    /// Keep only the cells whose mask bit is set (in-place compaction —
    /// the fused filter applied to a carried column).
    pub(crate) fn retain_mask(&mut self, mask: &[bool]) {
        fn keep<T>(v: &mut Vec<T>, mask: &[bool]) {
            let mut k = 0;
            v.retain(|_| {
                let m = mask[k];
                k += 1;
                m
            });
        }
        match self {
            Reg::I64(v) => keep(v, mask),
            Reg::U64(v) => keep(v, mask),
            Reg::F64(v) => keep(v, mask),
            Reg::Bool(v) => keep(v, mask),
            Reg::Str(v) => keep(v, mask),
            Reg::Val(v) => keep(v, mask),
        }
    }

    /// Move all cells of `src` (same variant) onto the end of `self`.
    pub(crate) fn append(&mut self, src: &mut Reg) -> Result<(), EngineError> {
        match (self, src) {
            (Reg::I64(a), Reg::I64(b)) => a.append(b),
            (Reg::U64(a), Reg::U64(b)) => a.append(b),
            (Reg::F64(a), Reg::F64(b)) => a.append(b),
            (Reg::Bool(a), Reg::Bool(b)) => a.append(b),
            (Reg::Str(a), Reg::Str(b)) => a.append(b),
            (Reg::Val(a), Reg::Val(b)) => a.append(b),
            _ => return Err(confusion()),
        }
        Ok(())
    }

    /// Copy all cells of `src` (same variant) into `self`, replacing its
    /// contents (carry loads).
    fn copy_from(&mut self, src: &Reg) -> Result<(), EngineError> {
        self.clear();
        match (self, src) {
            (Reg::I64(a), Reg::I64(b)) => a.extend_from_slice(b),
            (Reg::U64(a), Reg::U64(b)) => a.extend_from_slice(b),
            (Reg::F64(a), Reg::F64(b)) => a.extend_from_slice(b),
            (Reg::Bool(a), Reg::Bool(b)) => a.extend_from_slice(b),
            (Reg::Str(a), Reg::Str(b)) => a.extend_from_slice(b),
            (Reg::Val(a), Reg::Val(b)) => a.extend_from_slice(b),
            _ => return Err(confusion()),
        }
        Ok(())
    }
}

/// One kernel instruction. Operands `a`/`b`/`cond`/… always index
/// registers allocated *before* `dst` (the compiler allocates the result
/// register after its operands), which the interpreter exploits to split
/// borrows.
#[derive(Debug, Clone)]
enum Instr {
    /// Gather chunk `slot` at the batch's buffer rows into `dst`.
    Load {
        slot: u16,
        dst: u16,
    },
    /// Copy carried column `carry` (batch-local, already compacted to the
    /// batch's surviving rows) into `dst`. Chain programs only.
    LoadCarry {
        carry: u16,
        dst: u16,
    },
    /// Broadcast a constant across the batch.
    Splat {
        v: Value,
        dst: u16,
    },
    /// Checked `Int` arithmetic with the scalar oracle's semantics
    /// (including `wrapping_div`/`wrapping_rem` after the zero check).
    ArithI64 {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// Checked `Nat` arithmetic (`Add`/`Sub`/`Mul` only).
    ArithU64 {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `Dbl` arithmetic; `Div`/`Mod` still error on a zero divisor.
    ArithF64 {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpI64 {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpU64 {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `total_cmp` ordering — `Value` comparison semantics, not IEEE.
    CmpF64 {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpBool {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpStr {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    AndMask {
        a: u16,
        b: u16,
        dst: u16,
    },
    OrMask {
        a: u16,
        b: u16,
        dst: u16,
    },
    NotMask {
        a: u16,
        dst: u16,
    },
    NegI64 {
        a: u16,
        dst: u16,
    },
    NegF64 {
        a: u16,
        dst: u16,
    },
    Concat {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `cond ? t : e` element-wise. Both branches are pre-evaluated;
    /// [`compile`] only emits this when they are infallible.
    SelectCase {
        cond: u16,
        t: u16,
        e: u16,
        dst: u16,
    },
    /// Element-wise cast through the scalar oracle.
    CastVal {
        ty: Ty,
        a: u16,
        dst: u16,
    },
    /// Element-wise fallback through the scalar `bin_op` oracle (unit
    /// comparisons and other slow domains).
    BinVal {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
}

/// A compiled kernel program: straight-line instructions over a register
/// file, plus the buffer columns it loads.
#[derive(Debug, Clone)]
pub struct Kernel {
    instrs: Vec<Instr>,
    /// Register allocation shape (`reg_tys[r]` is register `r`'s type).
    reg_tys: Vec<Ty>,
    /// Buffer column index per load slot.
    cols: Vec<u32>,
    /// Schema type per load slot (checked against chunk variants).
    col_tys: Vec<Ty>,
    /// Register holding the expression result.
    out: u16,
}

/// Where a chain-visible column really lives. Chain programs
/// ([`compile_virtual`]) see the schema *after* upstream Project /
/// Compute / Attach stages, but load from the chain *input*: a visible
/// column is either an input column, a value carried from an earlier
/// Compute stage, or an attached constant.
#[derive(Debug, Clone)]
pub(crate) enum VirtSrc {
    /// Visible column `c` of the chain's input relation.
    Input(u32),
    /// Carried column `k` (result of the `k`-th Compute stage).
    Carry(u16),
    /// A constant attached mid-chain.
    Const(Value),
}

/// Dedup key for column loads: buffer/input columns and carried columns
/// live in different index spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LoadKey {
    Buf(u32),
    Carry(u16),
}

struct Compiler<'a> {
    schema: &'a Schema,
    col_map: Option<&'a [u32]>,
    /// When set, column references resolve through virtual sources
    /// instead of `col_map` (chain programs).
    virt: Option<&'a [VirtSrc]>,
    instrs: Vec<Instr>,
    reg_tys: Vec<Ty>,
    cols: Vec<u32>,
    col_tys: Vec<Ty>,
    /// load source → register already holding it.
    loaded: HashMap<LoadKey, (u16, Ty)>,
}

impl Compiler<'_> {
    fn reg(&mut self, ty: Ty) -> Option<u16> {
        if self.reg_tys.len() >= u16::MAX as usize {
            return None;
        }
        self.reg_tys.push(ty);
        Some((self.reg_tys.len() - 1) as u16)
    }

    /// Emit (or reuse) a load of input/buffer column `col` typed `ty`.
    fn load_col(&mut self, col: u32, ty: Ty) -> Option<(u16, Ty)> {
        if let Some(&hit) = self.loaded.get(&LoadKey::Buf(col)) {
            return Some(hit);
        }
        let dst = self.reg(ty)?;
        let slot = self.cols.len() as u16;
        self.cols.push(col);
        self.col_tys.push(ty);
        self.instrs.push(Instr::Load { slot, dst });
        self.loaded.insert(LoadKey::Buf(col), (dst, ty));
        Some((dst, ty))
    }

    fn compile(&mut self, e: &Expr) -> Option<(u16, Ty)> {
        match e {
            Expr::Col(name) => {
                let idx = self.schema.index_of(name)?;
                let ty = self.schema.cols()[idx].1;
                if let Some(virt) = self.virt {
                    return match virt[idx].clone() {
                        VirtSrc::Input(c) => self.load_col(c, ty),
                        VirtSrc::Carry(k) => {
                            if let Some(&hit) = self.loaded.get(&LoadKey::Carry(k)) {
                                return Some(hit);
                            }
                            let dst = self.reg(ty)?;
                            self.instrs.push(Instr::LoadCarry { carry: k, dst });
                            self.loaded.insert(LoadKey::Carry(k), (dst, ty));
                            Some((dst, ty))
                        }
                        VirtSrc::Const(v) => {
                            if v.ty() != ty {
                                return None;
                            }
                            let dst = self.reg(ty)?;
                            self.instrs.push(Instr::Splat { v, dst });
                            Some((dst, ty))
                        }
                    };
                }
                let raw = match self.col_map {
                    Some(map) => map[idx],
                    None => idx as u32,
                };
                self.load_col(raw, ty)
            }
            Expr::Const(v) => {
                let ty = v.ty();
                let dst = self.reg(ty)?;
                self.instrs.push(Instr::Splat { v: v.clone(), dst });
                Some((dst, ty))
            }
            Expr::Bin(op, l, r) => self.compile_bin(*op, l, r),
            Expr::Un(UnOp::Not, e) => {
                let (a, ty) = self.compile(e)?;
                if ty != Ty::Bool {
                    return None;
                }
                let dst = self.reg(Ty::Bool)?;
                self.instrs.push(Instr::NotMask { a, dst });
                Some((dst, Ty::Bool))
            }
            Expr::Un(UnOp::Neg, e) => {
                let (a, ty) = self.compile(e)?;
                let dst = self.reg(ty)?;
                match ty {
                    Ty::Int => self.instrs.push(Instr::NegI64 { a, dst }),
                    Ty::Dbl => self.instrs.push(Instr::NegF64 { a, dst }),
                    _ => return None,
                }
                Some((dst, ty))
            }
            Expr::Case(c, t, e) => {
                // scalar CASE evaluates only the taken branch — kernels
                // evaluate both, so fallible branches must stay scalar
                if !infallible(t, self.schema) || !infallible(e, self.schema) {
                    return None;
                }
                let (cond, ct) = self.compile(c)?;
                if ct != Ty::Bool {
                    return None;
                }
                let (tr, tt) = self.compile(t)?;
                let (er, et) = self.compile(e)?;
                if tt != et {
                    return None;
                }
                let dst = self.reg(tt)?;
                self.instrs.push(Instr::SelectCase {
                    cond,
                    t: tr,
                    e: er,
                    dst,
                });
                Some((dst, tt))
            }
            Expr::Cast(ty, e) => {
                let (a, et) = self.compile(e)?;
                if et == *ty {
                    return Some((a, et)); // identity cast: reuse the register
                }
                let dst = self.reg(*ty)?;
                self.instrs.push(Instr::CastVal { ty: *ty, a, dst });
                Some((dst, *ty))
            }
        }
    }

    fn compile_bin(&mut self, op: BinOp, l: &Expr, r: &Expr) -> Option<(u16, Ty)> {
        if op.is_logic() {
            // scalar AND/OR short-circuits the right side — a fallible
            // right side must not be batch-evaluated
            if !infallible(r, self.schema) {
                return None;
            }
            let (a, lt) = self.compile(l)?;
            let (b, rt) = self.compile(r)?;
            if lt != Ty::Bool || rt != Ty::Bool {
                return None;
            }
            let dst = self.reg(Ty::Bool)?;
            self.instrs.push(match op {
                BinOp::And => Instr::AndMask { a, b, dst },
                _ => Instr::OrMask { a, b, dst },
            });
            return Some((dst, Ty::Bool));
        }
        let (a, lt) = self.compile(l)?;
        let (b, rt) = self.compile(r)?;
        if lt != rt {
            return None; // the oracle never coerces across domains
        }
        if op.is_cmp() {
            let dst = self.reg(Ty::Bool)?;
            self.instrs.push(match lt {
                Ty::Int => Instr::CmpI64 { op, a, b, dst },
                Ty::Nat => Instr::CmpU64 { op, a, b, dst },
                Ty::Dbl => Instr::CmpF64 { op, a, b, dst },
                Ty::Bool => Instr::CmpBool { op, a, b, dst },
                Ty::Str => Instr::CmpStr { op, a, b, dst },
                Ty::Unit => Instr::BinVal { op, a, b, dst },
            });
            return Some((dst, Ty::Bool));
        }
        if op == BinOp::Concat {
            if lt != Ty::Str {
                return None;
            }
            let dst = self.reg(Ty::Str)?;
            self.instrs.push(Instr::Concat { a, b, dst });
            return Some((dst, Ty::Str));
        }
        debug_assert!(op.is_arith());
        let dst = self.reg(lt)?;
        self.instrs.push(match lt {
            Ty::Int => Instr::ArithI64 { op, a, b, dst },
            // Nat Div/Mod are undefined in the scalar oracle
            Ty::Nat if !matches!(op, BinOp::Div | BinOp::Mod) => Instr::ArithU64 { op, a, b, dst },
            Ty::Dbl => Instr::ArithF64 { op, a, b, dst },
            _ => return None,
        });
        Some((dst, lt))
    }
}

/// Can evaluating `e` ever raise? Conservative: `false` only when the
/// expression provably cannot error on any row (comparisons, logic,
/// concat, `Dbl` add/sub/mul, widening casts). Checked integer arithmetic,
/// divisions and narrowing casts are fallible.
fn infallible(e: &Expr, schema: &Schema) -> bool {
    match e {
        Expr::Col(_) | Expr::Const(_) => true,
        Expr::Bin(op, l, r) => {
            if !infallible(l, schema) || !infallible(r, schema) {
                return false;
            }
            if op.is_cmp() || op.is_logic() || *op == BinOp::Concat {
                return true;
            }
            // arithmetic: only Dbl Add/Sub/Mul cannot raise
            matches!(l.infer_ty(schema), Some(Ty::Dbl))
                && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul)
        }
        Expr::Un(UnOp::Not, e) => infallible(e, schema),
        Expr::Un(UnOp::Neg, e) => {
            // Int negation overflows on i64::MIN
            infallible(e, schema) && matches!(e.infer_ty(schema), Some(Ty::Dbl))
        }
        Expr::Case(c, t, e) => {
            infallible(c, schema) && infallible(t, schema) && infallible(e, schema)
        }
        Expr::Cast(ty, e) => {
            if !infallible(e, schema) {
                return false;
            }
            match (e.infer_ty(schema), ty) {
                (Some(et), ty) if et == *ty => true,
                // widening casts never raise
                (Some(Ty::Int | Ty::Nat | Ty::Bool), Ty::Dbl) => true,
                (Some(Ty::Bool), Ty::Int | Ty::Nat) => true,
                _ => false,
            }
        }
    }
}

/// Lower `expr` (typed against `schema`, with visible columns remapped
/// through `col_map` to buffer columns) to a kernel program. `None` means
/// the expression must stay on the scalar path — see the module docs for
/// the exact bail-out conditions.
pub fn compile(expr: &Expr, schema: &Schema, col_map: Option<&[u32]>) -> Option<Kernel> {
    compile_inner(expr, schema, col_map, None)
}

/// Lower `expr` (typed against the *chain-visible* `schema`, whose columns
/// resolve through `virt` to chain-input columns, carried stage results,
/// or constants) to a kernel program for [`Kernel::run_chain`]. The
/// `cols` of the result index the chain input's **visible** columns; the
/// caller maps them to buffer columns when binding chunks.
pub(crate) fn compile_virtual(expr: &Expr, schema: &Schema, virt: &[VirtSrc]) -> Option<Kernel> {
    compile_inner(expr, schema, None, Some(virt))
}

fn compile_inner(
    expr: &Expr,
    schema: &Schema,
    col_map: Option<&[u32]>,
    virt: Option<&[VirtSrc]>,
) -> Option<Kernel> {
    let mut c = Compiler {
        schema,
        col_map,
        virt,
        instrs: Vec::new(),
        reg_tys: Vec::new(),
        cols: Vec::new(),
        col_tys: Vec::new(),
        loaded: HashMap::new(),
    };
    let (out, _) = c.compile(expr)?;
    Some(Kernel {
        instrs: c.instrs,
        reg_tys: c.reg_tys,
        cols: c.cols,
        col_tys: c.col_tys,
        out,
    })
}

/// Does the chunk's storage variant match the slot's schema type? A
/// mismatch (possible only for buffers built outside schema validation)
/// sends the operator to the scalar path.
fn variant_matches(ty: Ty, chunk: &ColVec) -> bool {
    matches!(
        (ty, chunk),
        (Ty::Int, ColVec::Int(_))
            | (Ty::Nat, ColVec::Nat(_))
            | (Ty::Dbl, ColVec::Dbl(_))
            | (Ty::Bool, ColVec::Bool(_))
            | (Ty::Str, ColVec::Str { .. })
            | (Ty::Unit, ColVec::Other(_))
    )
}

/// Map a comparison operator to its `Ordering` predicate.
fn cmp_keep(op: BinOp) -> fn(Ordering) -> bool {
    match op {
        BinOp::Eq => |o| o == Ordering::Equal,
        BinOp::Ne => |o| o != Ordering::Equal,
        BinOp::Lt => |o| o == Ordering::Less,
        BinOp::Le => |o| o != Ordering::Greater,
        BinOp::Gt => |o| o == Ordering::Greater,
        _ => |o| o != Ordering::Less,
    }
}

/// Split the register file at `dst` (operands always precede results).
fn split_dst(regs: &mut [Reg], dst: u16) -> (&[Reg], &mut Reg) {
    let (lo, hi) = regs.split_at_mut(dst as usize);
    (lo, &mut hi[0])
}

fn confusion() -> EngineError {
    ee("kernel register type confusion")
}

macro_rules! zip_bin {
    ($lo:expr, $out:expr, $a:expr, $b:expr, $in_pat:path, $out_pat:path, $f:expr) => {{
        let ($in_pat(xa), $in_pat(xb), $out_pat(o)) =
            (&$lo[*$a as usize], &$lo[*$b as usize], $out)
        else {
            return Err(confusion());
        };
        o.clear();
        for (x, y) in xa.iter().zip(xb) {
            o.push($f(*x, *y)?);
        }
    }};
}

impl Kernel {
    /// Allocate a register file for this program (reused across batches).
    pub fn alloc_regs(&self) -> Vec<Reg> {
        self.reg_tys.iter().map(|&t| Reg::new(t)).collect()
    }

    /// Buffer columns the program loads, in slot order.
    pub fn columns(&self) -> &[u32] {
        &self.cols
    }

    /// Register index holding the result after [`Kernel::run`].
    pub fn out_reg(&self) -> usize {
        self.out as usize
    }

    /// Type of the result register.
    pub fn out_ty(&self) -> Ty {
        self.reg_tys[self.out as usize]
    }

    /// Are these chunks (one per load slot) usable by this program?
    pub fn accepts(&self, chunks: &[Arc<ColVec>]) -> bool {
        chunks.len() == self.col_tys.len()
            && self
                .col_tys
                .iter()
                .zip(chunks)
                .all(|(&t, c)| variant_matches(t, c))
    }

    /// Execute the program for one batch: `rows` holds the **buffer** row
    /// indices of the batch, `chunks` the full-buffer columns per load
    /// slot. On success, `regs[self.out_reg()]` holds one result per row.
    pub fn run(
        &self,
        chunks: &[Arc<ColVec>],
        rows: &[u32],
        regs: &mut [Reg],
    ) -> Result<(), EngineError> {
        self.run_chain(chunks, &[], rows, regs)
    }

    /// [`Kernel::run`] with carried columns: `carries[k]` holds the
    /// batch-local result of an earlier chain stage, already compacted to
    /// exactly the rows of this batch. Programs compiled by
    /// [`compile_virtual`] reference them through [`Instr::LoadCarry`].
    pub(crate) fn run_chain(
        &self,
        chunks: &[Arc<ColVec>],
        carries: &[Reg],
        rows: &[u32],
        regs: &mut [Reg],
    ) -> Result<(), EngineError> {
        let n = rows.len();
        for instr in &self.instrs {
            match instr {
                Instr::LoadCarry { carry, dst } => {
                    regs[*dst as usize].copy_from(&carries[*carry as usize])?;
                }
                Instr::Load { slot, dst } => {
                    let chunk = chunks[*slot as usize].as_ref();
                    let reg = &mut regs[*dst as usize];
                    reg.clear();
                    match (chunk, reg) {
                        (ColVec::Int(v), Reg::I64(o)) => {
                            o.extend(rows.iter().map(|&i| v[i as usize]));
                        }
                        (ColVec::Nat(v), Reg::U64(o)) => {
                            o.extend(rows.iter().map(|&i| v[i as usize]));
                        }
                        (ColVec::Dbl(v), Reg::F64(o)) => {
                            o.extend(rows.iter().map(|&i| v[i as usize]));
                        }
                        (ColVec::Bool(v), Reg::Bool(o)) => {
                            o.extend(rows.iter().map(|&i| v[i as usize]));
                        }
                        (ColVec::Str { codes, dict }, Reg::Str(o)) => {
                            o.extend(
                                rows.iter()
                                    .map(|&i| dict[codes[i as usize] as usize].clone()),
                            );
                        }
                        (c, Reg::Val(o)) => o.extend(rows.iter().map(|&i| c.value(i as usize))),
                        _ => return Err(confusion()),
                    }
                }
                Instr::Splat { v, dst } => {
                    let reg = &mut regs[*dst as usize];
                    reg.clear();
                    match (reg, v) {
                        (Reg::I64(o), Value::Int(x)) => o.resize(n, *x),
                        (Reg::U64(o), Value::Nat(x)) => o.resize(n, *x),
                        (Reg::F64(o), Value::Dbl(x)) => o.resize(n, *x),
                        (Reg::Bool(o), Value::Bool(x)) => o.resize(n, *x),
                        (Reg::Str(o), Value::Str(x)) => o.resize(n, x.clone()),
                        (Reg::Val(o), v) => o.resize(n, v.clone()),
                        _ => return Err(confusion()),
                    }
                }
                Instr::ArithI64 { op, a, b, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    match op {
                        BinOp::Add => {
                            zip_bin!(lo, out, a, b, Reg::I64, Reg::I64, |x: i64, y: i64| {
                                x.checked_add(y).ok_or_else(|| ee("integer overflow in +"))
                            })
                        }
                        BinOp::Sub => {
                            zip_bin!(lo, out, a, b, Reg::I64, Reg::I64, |x: i64, y: i64| {
                                x.checked_sub(y).ok_or_else(|| ee("integer overflow in -"))
                            })
                        }
                        BinOp::Mul => {
                            zip_bin!(lo, out, a, b, Reg::I64, Reg::I64, |x: i64, y: i64| {
                                x.checked_mul(y).ok_or_else(|| ee("integer overflow in *"))
                            })
                        }
                        BinOp::Div => {
                            zip_bin!(lo, out, a, b, Reg::I64, Reg::I64, |x: i64, y: i64| {
                                if y == 0 {
                                    Err(ee("division by zero"))
                                } else {
                                    // scalar-oracle quirk: i64::MIN / -1 wraps
                                    Ok(x.wrapping_div(y))
                                }
                            })
                        }
                        _ => zip_bin!(lo, out, a, b, Reg::I64, Reg::I64, |x: i64, y: i64| {
                            if y == 0 {
                                Err(ee("modulo by zero"))
                            } else {
                                Ok(x.wrapping_rem(y))
                            }
                        }),
                    }
                }
                Instr::ArithU64 { op, a, b, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    match op {
                        BinOp::Add => {
                            zip_bin!(lo, out, a, b, Reg::U64, Reg::U64, |x: u64, y: u64| {
                                x.checked_add(y).ok_or_else(|| ee("nat overflow in +"))
                            })
                        }
                        BinOp::Sub => {
                            zip_bin!(lo, out, a, b, Reg::U64, Reg::U64, |x: u64, y: u64| {
                                x.checked_sub(y).ok_or_else(|| ee("nat underflow in -"))
                            })
                        }
                        _ => zip_bin!(lo, out, a, b, Reg::U64, Reg::U64, |x: u64, y: u64| {
                            x.checked_mul(y).ok_or_else(|| ee("nat overflow in *"))
                        }),
                    }
                }
                Instr::ArithF64 { op, a, b, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    match op {
                        BinOp::Add => {
                            zip_bin!(lo, out, a, b, Reg::F64, Reg::F64, |x: f64, y: f64| {
                                Ok::<_, EngineError>(x + y)
                            })
                        }
                        BinOp::Sub => {
                            zip_bin!(lo, out, a, b, Reg::F64, Reg::F64, |x: f64, y: f64| {
                                Ok::<_, EngineError>(x - y)
                            })
                        }
                        BinOp::Mul => {
                            zip_bin!(lo, out, a, b, Reg::F64, Reg::F64, |x: f64, y: f64| {
                                Ok::<_, EngineError>(x * y)
                            })
                        }
                        BinOp::Div => {
                            zip_bin!(lo, out, a, b, Reg::F64, Reg::F64, |x: f64, y: f64| {
                                if y == 0.0 {
                                    Err(ee("division by zero"))
                                } else {
                                    Ok(x / y)
                                }
                            })
                        }
                        _ => zip_bin!(lo, out, a, b, Reg::F64, Reg::F64, |x: f64, y: f64| {
                            if y == 0.0 {
                                Err(ee("modulo by zero"))
                            } else {
                                Ok(x % y)
                            }
                        }),
                    }
                }
                Instr::CmpI64 { op, a, b, dst } => {
                    let keep = cmp_keep(*op);
                    let (lo, out) = split_dst(regs, *dst);
                    zip_bin!(lo, out, a, b, Reg::I64, Reg::Bool, |x: i64, y: i64| {
                        Ok::<_, EngineError>(keep(x.cmp(&y)))
                    });
                }
                Instr::CmpU64 { op, a, b, dst } => {
                    let keep = cmp_keep(*op);
                    let (lo, out) = split_dst(regs, *dst);
                    zip_bin!(lo, out, a, b, Reg::U64, Reg::Bool, |x: u64, y: u64| {
                        Ok::<_, EngineError>(keep(x.cmp(&y)))
                    });
                }
                Instr::CmpF64 { op, a, b, dst } => {
                    let keep = cmp_keep(*op);
                    let (lo, out) = split_dst(regs, *dst);
                    zip_bin!(lo, out, a, b, Reg::F64, Reg::Bool, |x: f64, y: f64| {
                        Ok::<_, EngineError>(keep(x.total_cmp(&y)))
                    });
                }
                Instr::CmpBool { op, a, b, dst } => {
                    let keep = cmp_keep(*op);
                    let (lo, out) = split_dst(regs, *dst);
                    zip_bin!(lo, out, a, b, Reg::Bool, Reg::Bool, |x: bool, y: bool| {
                        Ok::<_, EngineError>(keep(x.cmp(&y)))
                    });
                }
                Instr::CmpStr { op, a, b, dst } => {
                    let keep = cmp_keep(*op);
                    let (lo, out) = split_dst(regs, *dst);
                    let (Reg::Str(xa), Reg::Str(xb), Reg::Bool(o)) =
                        (&lo[*a as usize], &lo[*b as usize], out)
                    else {
                        return Err(confusion());
                    };
                    o.clear();
                    o.extend(xa.iter().zip(xb).map(|(x, y)| keep(x.cmp(y))));
                }
                Instr::AndMask { a, b, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    zip_bin!(lo, out, a, b, Reg::Bool, Reg::Bool, |x: bool, y: bool| {
                        Ok::<_, EngineError>(x && y)
                    });
                }
                Instr::OrMask { a, b, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    zip_bin!(lo, out, a, b, Reg::Bool, Reg::Bool, |x: bool, y: bool| {
                        Ok::<_, EngineError>(x || y)
                    });
                }
                Instr::NotMask { a, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    let (Reg::Bool(xa), Reg::Bool(o)) = (&lo[*a as usize], out) else {
                        return Err(confusion());
                    };
                    o.clear();
                    o.extend(xa.iter().map(|x| !x));
                }
                Instr::NegI64 { a, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    let (Reg::I64(xa), Reg::I64(o)) = (&lo[*a as usize], out) else {
                        return Err(confusion());
                    };
                    o.clear();
                    for &x in xa {
                        o.push(
                            x.checked_neg()
                                .ok_or_else(|| ee("integer overflow in negation"))?,
                        );
                    }
                }
                Instr::NegF64 { a, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    let (Reg::F64(xa), Reg::F64(o)) = (&lo[*a as usize], out) else {
                        return Err(confusion());
                    };
                    o.clear();
                    o.extend(xa.iter().map(|x| -x));
                }
                Instr::Concat { a, b, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    let (Reg::Str(xa), Reg::Str(xb), Reg::Str(o)) =
                        (&lo[*a as usize], &lo[*b as usize], out)
                    else {
                        return Err(confusion());
                    };
                    o.clear();
                    for (x, y) in xa.iter().zip(xb) {
                        let mut s = String::with_capacity(x.len() + y.len());
                        s.push_str(x);
                        s.push_str(y);
                        o.push(Arc::from(s));
                    }
                }
                Instr::SelectCase { cond, t, e, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    let Reg::Bool(c) = &lo[*cond as usize] else {
                        return Err(confusion());
                    };
                    match (&lo[*t as usize], &lo[*e as usize], out) {
                        (Reg::I64(t), Reg::I64(e), Reg::I64(o)) => {
                            o.clear();
                            o.extend((0..n).map(|k| if c[k] { t[k] } else { e[k] }));
                        }
                        (Reg::U64(t), Reg::U64(e), Reg::U64(o)) => {
                            o.clear();
                            o.extend((0..n).map(|k| if c[k] { t[k] } else { e[k] }));
                        }
                        (Reg::F64(t), Reg::F64(e), Reg::F64(o)) => {
                            o.clear();
                            o.extend((0..n).map(|k| if c[k] { t[k] } else { e[k] }));
                        }
                        (Reg::Bool(t), Reg::Bool(e), Reg::Bool(o)) => {
                            o.clear();
                            o.extend((0..n).map(|k| if c[k] { t[k] } else { e[k] }));
                        }
                        (Reg::Str(t), Reg::Str(e), Reg::Str(o)) => {
                            o.clear();
                            o.extend(
                                (0..n).map(|k| if c[k] { t[k].clone() } else { e[k].clone() }),
                            );
                        }
                        (Reg::Val(t), Reg::Val(e), Reg::Val(o)) => {
                            o.clear();
                            o.extend(
                                (0..n).map(|k| if c[k] { t[k].clone() } else { e[k].clone() }),
                            );
                        }
                        _ => return Err(confusion()),
                    }
                }
                Instr::CastVal { ty, a, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    let src = &lo[*a as usize];
                    out.clear();
                    for k in 0..n {
                        out.push(eval::cast(*ty, src.value(k))?)?;
                    }
                }
                Instr::BinVal { op, a, b, dst } => {
                    let (lo, out) = split_dst(regs, *dst);
                    let (xa, xb) = (&lo[*a as usize], &lo[*b as usize]);
                    out.clear();
                    for k in 0..n {
                        out.push(eval::bin_op(*op, xa.value(k), xb.value(k))?)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// A kernel bound to a specific relation: the program plus the cached
/// column chunks it loads from. Build one per operator with [`prepare`],
/// then evaluate any number of row ranges (morsels) against it — the
/// prepared form is `Sync`, so morsel workers share it.
#[derive(Debug)]
pub struct Prepared {
    kernel: Kernel,
    chunks: Vec<Arc<ColVec>>,
}

/// Compile `expr` for `rel` and bind the column chunks, or `None` when
/// the operator should stay scalar: the config gates vectorization off
/// (`VecMode`/input size), the expression doesn't lower (see [`compile`]),
/// or a chunk's storage variant contradicts the schema.
pub fn prepare(expr: &Expr, rel: &Rel, cfg: &ParConfig) -> Option<Prepared> {
    if !cfg.vectorize(rel.len()) {
        return None;
    }
    let kernel = compile(expr, &rel.schema, rel.col_map())?;
    let chunks: Vec<Arc<ColVec>> = kernel
        .columns()
        .iter()
        .map(|&c| rel.typed_col(c as usize))
        .collect();
    kernel
        .accepts(&chunks)
        .then_some(Prepared { kernel, chunks })
}

impl Prepared {
    /// Evaluate the (boolean) program over visible rows `range` of `rel`,
    /// returning the selected **buffer** row indices in visible order plus
    /// the number of batches executed. This is the fused filter path: the
    /// mask never materialises as rows — it goes straight into a selection
    /// vector.
    pub fn filter_range(
        &self,
        rel: &Rel,
        range: Range<usize>,
    ) -> Result<(Vec<u32>, u32), EngineError> {
        let mut keep = Vec::new();
        let batches = self.for_batches(rel, range, |rows, out| {
            let Reg::Bool(mask) = out else {
                return Err(confusion());
            };
            for (k, &m) in mask.iter().enumerate() {
                if m {
                    keep.push(rows[k]);
                }
            }
            Ok(())
        })?;
        Ok((keep, batches))
    }

    /// Evaluate the program over visible rows `range`, returning one value
    /// per row (computed-column path) plus the number of batches executed.
    pub fn values_range(
        &self,
        rel: &Rel,
        range: Range<usize>,
    ) -> Result<(Vec<Value>, u32), EngineError> {
        let mut vals = Vec::with_capacity(range.len());
        let batches = self.for_batches(rel, range, |rows, out| {
            for k in 0..rows.len() {
                vals.push(out.value(k));
            }
            Ok(())
        })?;
        Ok((vals, batches))
    }

    /// Drive the kernel over `range` in [`BATCH_ROWS`]-sized batches,
    /// handing each batch's buffer rows and output register to `sink`.
    fn for_batches(
        &self,
        rel: &Rel,
        range: Range<usize>,
        mut sink: impl FnMut(&[u32], &Reg) -> Result<(), EngineError>,
    ) -> Result<u32, EngineError> {
        let mut regs = self.kernel.alloc_regs();
        let mut rows: Vec<u32> = Vec::with_capacity(BATCH_ROWS.min(range.len()));
        let sel = rel.sel_map();
        let mut batches = 0u32;
        let mut i = range.start;
        while i < range.end {
            let hi = (i + BATCH_ROWS).min(range.end);
            // a selection vector already *is* the buffer-row batch (the
            // shard-pruned scan path lives here) — borrow it instead of
            // copying element-wise
            let batch: &[u32] = match sel {
                Some(s) => &s[i..hi],
                None => {
                    rows.clear();
                    rows.extend(i as u32..hi as u32);
                    &rows
                }
            };
            self.kernel.run(&self.chunks, batch, &mut regs)?;
            batches += 1;
            sink(batch, &regs[self.kernel.out_reg()])?;
            i = hi;
        }
        Ok(batches)
    }
}

/// One fused pipeline stage: a filter kernel (drops rows) or a compute
/// kernel (appends a carried column).
#[derive(Debug)]
pub(crate) enum Stage {
    Filter(Kernel),
    Compute(Kernel),
}

impl Stage {
    fn kernel(&self) -> &Kernel {
        match self {
            Stage::Filter(k) | Stage::Compute(k) => k,
        }
    }
}

/// Incremental compiler for a fused Select/Project/Compute/Attach chain.
/// Feed it the chain's operators bottom-up; each step returns `false`
/// when that operator cannot join the chain (expression doesn't lower,
/// type surprise, too many carries) — the caller then abandons fusion
/// and falls back to node-at-a-time execution.
#[derive(Debug)]
pub(crate) struct ChainBuilder {
    /// Schema visible after the stages accepted so far.
    schema: Schema,
    /// Source of each visible column.
    virt: Vec<VirtSrc>,
    stages: Vec<Stage>,
    carry_tys: Vec<Ty>,
}

impl ChainBuilder {
    pub(crate) fn new(input_schema: &Schema) -> ChainBuilder {
        ChainBuilder {
            schema: input_schema.clone(),
            virt: (0..input_schema.cols().len())
                .map(|c| VirtSrc::Input(c as u32))
                .collect(),
            stages: Vec::new(),
            carry_tys: Vec::new(),
        }
    }

    /// Schema visible after the stages accepted so far (what the next
    /// operator's expressions resolve against).
    pub(crate) fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Add a Select stage. The predicate must lower to a boolean kernel.
    pub(crate) fn filter(&mut self, pred: &Expr) -> bool {
        let Some(kernel) = compile_virtual(pred, &self.schema, &self.virt) else {
            return false;
        };
        if kernel.out_ty() != Ty::Bool {
            return false;
        }
        self.stages.push(Stage::Filter(kernel));
        true
    }

    /// Add a Compute stage: evaluate `expr` and expose it as the last
    /// column of `out_schema` (the Compute node's output schema).
    pub(crate) fn compute(&mut self, expr: &Expr, out_schema: &Schema) -> bool {
        let Some(kernel) = compile_virtual(expr, &self.schema, &self.virt) else {
            return false;
        };
        let Some(&(_, ty)) = out_schema.cols().last() else {
            return false;
        };
        if kernel.out_ty() != ty || self.carry_tys.len() >= u16::MAX as usize {
            return false;
        }
        let k = self.carry_tys.len() as u16;
        self.carry_tys.push(ty);
        self.stages.push(Stage::Compute(kernel));
        self.virt.push(VirtSrc::Carry(k));
        self.schema = out_schema.clone();
        true
    }

    /// Add a Project stage: visible column `j` of `out_schema` is current
    /// visible column `idxs[j]`. Pure bookkeeping — no kernel runs.
    pub(crate) fn project(&mut self, idxs: &[usize], out_schema: &Schema) {
        self.virt = idxs.iter().map(|&i| self.virt[i].clone()).collect();
        self.schema = out_schema.clone();
    }

    /// Add an Attach stage: a constant column appended to the schema.
    pub(crate) fn attach(&mut self, v: &Value, out_schema: &Schema) {
        self.virt.push(VirtSrc::Const(v.clone()));
        self.schema = out_schema.clone();
    }

    pub(crate) fn finish(self) -> ChainProg {
        ChainProg {
            stages: self.stages,
            carry_tys: self.carry_tys,
            out: self.virt,
            out_schema: self.schema,
        }
    }
}

/// A compiled pipeline chain: the stage programs plus the mapping from
/// output columns back to chain-input columns / carries / constants.
#[derive(Debug)]
pub(crate) struct ChainProg {
    stages: Vec<Stage>,
    carry_tys: Vec<Ty>,
    out: Vec<VirtSrc>,
    out_schema: Schema,
}

impl ChainProg {
    /// Source of each output column.
    pub(crate) fn out(&self) -> &[VirtSrc] {
        &self.out
    }

    pub(crate) fn out_schema(&self) -> &Schema {
        &self.out_schema
    }

    pub(crate) fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Output columns that are all chain-input passthroughs (no carries,
    /// no constants): the zero-copy case — a selection vector plus a
    /// column remap over the input buffer reproduce the chain's output.
    pub(crate) fn pure_input_out(&self) -> Option<Vec<u32>> {
        self.out
            .iter()
            .map(|s| match s {
                VirtSrc::Input(c) => Some(*c),
                _ => None,
            })
            .collect()
    }

    /// Bind the stage kernels to `rel`'s cached column chunks, or `None`
    /// when a chunk's storage variant contradicts the schema (the caller
    /// falls back to scalar execution).
    pub(crate) fn bind<'a>(&'a self, rel: &'a Rel) -> Option<BoundChain<'a>> {
        let mut chunks = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let k = stage.kernel();
            let cs: Vec<Arc<ColVec>> = k
                .columns()
                .iter()
                .map(|&c| rel.typed_col(rel.raw_col(c as usize)))
                .collect();
            if !k.accepts(&cs) {
                return None;
            }
            chunks.push(cs);
        }
        Some(BoundChain {
            prog: self,
            rel,
            chunks,
        })
    }
}

/// The surviving rows and carried columns a chain produced for one
/// morsel, in visible order. `rows` holds **buffer** row indices of the
/// chain input; every carry register holds exactly `rows.len()` cells.
#[derive(Debug)]
pub(crate) struct StreamChunk {
    pub(crate) rows: Vec<u32>,
    pub(crate) carries: Vec<Reg>,
    pub(crate) batches: u32,
}

/// A [`ChainProg`] bound to its input relation's chunks.
pub(crate) struct BoundChain<'a> {
    prog: &'a ChainProg,
    rel: &'a Rel,
    /// Per stage, the input chunks its kernel loads.
    chunks: Vec<Vec<Arc<ColVec>>>,
}

impl BoundChain<'_> {
    /// Stream visible rows `range` of the input through every stage in
    /// [`BATCH_ROWS`]-sized batches: each batch is filtered and computed
    /// on while cache-hot, and only survivors are accumulated. Errors
    /// surface batch-major (lowest batch first), instruction-major within
    /// a batch — the same freedom [`compile`] documents for one kernel,
    /// extended across the chain's stages.
    pub(crate) fn run_range(&self, range: Range<usize>) -> Result<StreamChunk, EngineError> {
        let mut regs: Vec<Vec<Reg>> = self
            .prog
            .stages
            .iter()
            .map(|s| s.kernel().alloc_regs())
            .collect();
        let mut carries_b: Vec<Reg> = self.prog.carry_tys.iter().map(|&t| Reg::new(t)).collect();
        let mut out = StreamChunk {
            rows: Vec::new(),
            carries: self.prog.carry_tys.iter().map(|&t| Reg::new(t)).collect(),
            batches: 0,
        };
        let mut rows_b: Vec<u32> = Vec::with_capacity(BATCH_ROWS.min(range.len()));
        let sel = self.rel.sel_map();
        let mut i = range.start;
        while i < range.end {
            let hi = (i + BATCH_ROWS).min(range.end);
            rows_b.clear();
            // bulk-copy the selection slice (filters below compact
            // `rows_b` in place, so it cannot stay borrowed)
            match sel {
                Some(s) => rows_b.extend_from_slice(&s[i..hi]),
                None => rows_b.extend(i as u32..hi as u32),
            }
            i = hi;
            out.batches += 1;
            // carries produced so far this batch (all compacted to rows_b)
            let mut live = 0usize;
            for (si, stage) in self.prog.stages.iter().enumerate() {
                if rows_b.is_empty() {
                    break;
                }
                match stage {
                    Stage::Filter(k) => {
                        k.run_chain(&self.chunks[si], &carries_b[..live], &rows_b, &mut regs[si])?;
                        let Reg::Bool(mask) = &regs[si][k.out_reg()] else {
                            return Err(confusion());
                        };
                        let mut w = 0usize;
                        for r in 0..rows_b.len() {
                            if mask[r] {
                                rows_b[w] = rows_b[r];
                                w += 1;
                            }
                        }
                        for c in carries_b[..live].iter_mut() {
                            c.retain_mask(mask);
                        }
                        rows_b.truncate(w);
                    }
                    Stage::Compute(k) => {
                        k.run_chain(&self.chunks[si], &carries_b[..live], &rows_b, &mut regs[si])?;
                        let ty = self.prog.carry_tys[live];
                        carries_b[live] =
                            std::mem::replace(&mut regs[si][k.out_reg()], Reg::new(ty));
                        live += 1;
                    }
                }
            }
            if rows_b.is_empty() {
                continue; // nothing survived: carries_b[..live] hold stale
                          // cells but are rebuilt from scratch next batch
            }
            out.rows.extend_from_slice(&rows_b);
            for (k, c) in carries_b[..live].iter_mut().enumerate() {
                out.carries[k].append(c)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{bind, eval};
    use crate::par::VecMode;
    use ferry_algebra::Schema;

    fn schema() -> Schema {
        Schema::of(&[
            ("a", Ty::Int),
            ("b", Ty::Int),
            ("d", Ty::Dbl),
            ("p", Ty::Bool),
            ("s", Ty::Str),
            ("u", Ty::Unit),
        ])
    }

    fn rel(n: i64) -> Rel {
        Rel::new(
            schema(),
            (0..n)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Int(3),
                        Value::Dbl(i as f64 / 2.0),
                        Value::Bool(i % 2 == 0),
                        Value::str(if i % 3 == 0 { "x" } else { "y" }),
                        Value::Unit,
                    ]
                })
                .collect(),
        )
    }

    fn force() -> ParConfig {
        ParConfig {
            vec: VecMode::Force,
            ..ParConfig::default()
        }
    }

    /// Kernel result == scalar oracle result, row for row.
    fn assert_matches_oracle(e: &Expr, r: &Rel) {
        let prep = prepare(e, r, &force()).unwrap_or_else(|| panic!("expected a kernel for {e:?}"));
        let (vals, batches) = prep.values_range(r, 0..r.len()).unwrap();
        assert!(batches >= 1);
        let bound = bind(e, &r.schema).unwrap();
        for (i, got) in vals.iter().enumerate() {
            let want = eval(&bound, &r.buffer()[i]).unwrap();
            assert_eq!(*got, want, "row {i} of {e:?}");
        }
    }

    #[test]
    fn arithmetic_kernels_match_oracle() {
        let r = rel(100);
        assert_matches_oracle(
            &Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::col("a"), Expr::lit(7i64)),
                Expr::col("b"),
            ),
            &r,
        );
        assert_matches_oracle(&Expr::bin(BinOp::Div, Expr::col("a"), Expr::col("b")), &r);
        assert_matches_oracle(
            &Expr::bin(BinOp::Mul, Expr::col("d"), Expr::lit(1.5f64)),
            &r,
        );
        assert_matches_oracle(&Expr::Un(UnOp::Neg, Arc::new(Expr::col("a"))), &r);
    }

    #[test]
    fn comparison_and_logic_kernels_match_oracle() {
        let r = rel(100);
        assert_matches_oracle(
            &Expr::and(
                Expr::bin(BinOp::Lt, Expr::col("a"), Expr::lit(50i64)),
                Expr::col("p"),
            ),
            &r,
        );
        assert_matches_oracle(&Expr::eq(Expr::col("s"), Expr::lit("x")), &r);
        assert_matches_oracle(
            &Expr::bin(BinOp::Ge, Expr::col("d"), Expr::lit(10.0f64)),
            &r,
        );
        // Unit comparisons route through the generic BinVal fallback
        assert_matches_oracle(&Expr::eq(Expr::col("u"), Expr::col("u")), &r);
    }

    #[test]
    fn case_concat_and_cast_match_oracle() {
        let r = rel(60);
        assert_matches_oracle(
            &Expr::case(Expr::col("p"), Expr::col("a"), Expr::col("b")),
            &r,
        );
        assert_matches_oracle(
            &Expr::bin(BinOp::Concat, Expr::col("s"), Expr::lit("!")),
            &r,
        );
        assert_matches_oracle(&Expr::Cast(Ty::Dbl, Arc::new(Expr::col("a"))), &r);
    }

    #[test]
    fn filter_range_yields_selection_vector() {
        let r = rel(100);
        let pred = Expr::bin(BinOp::Lt, Expr::col("a"), Expr::lit(10i64));
        let prep = prepare(&pred, &r, &force()).unwrap();
        let (keep, _) = prep.filter_range(&r, 0..r.len()).unwrap();
        assert_eq!(keep, (0..10).collect::<Vec<u32>>());
        // sub-ranges see only their rows
        let (keep, _) = prep.filter_range(&r, 5..20).unwrap();
        assert_eq!(keep, (5..10).collect::<Vec<u32>>());
    }

    #[test]
    fn kernels_report_scalar_error_messages() {
        let r = rel(100);
        let div = Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::col("a"));
        let prep = prepare(&div, &r, &force()).unwrap();
        let err = prep.values_range(&r, 0..r.len()).unwrap_err();
        assert_eq!(err, EngineError::Eval("division by zero".into()));
        let ovf = Expr::bin(BinOp::Add, Expr::col("a"), Expr::lit(i64::MAX));
        let prep = prepare(&ovf, &r, &force()).unwrap();
        let err = prep.values_range(&r, 0..r.len()).unwrap_err();
        assert_eq!(err, EngineError::Eval("integer overflow in +".into()));
    }

    #[test]
    fn short_circuit_and_fallible_case_bail_to_scalar() {
        let s = schema();
        // (a = 0) OR (1/a = 1): scalar short-circuits, kernel must refuse
        let fallible = Expr::eq(
            Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::col("a")),
            Expr::lit(1i64),
        );
        let guarded = Expr::bin(
            BinOp::Or,
            Expr::eq(Expr::col("a"), Expr::lit(0i64)),
            fallible.clone(),
        );
        assert!(compile(&guarded, &s, None).is_none());
        // CASE with a fallible branch must refuse too
        let case = Expr::case(Expr::col("p"), fallible, Expr::lit(true));
        assert!(compile(&case, &s, None).is_none());
        // infallible variants of both do compile
        let ok = Expr::bin(
            BinOp::Or,
            Expr::eq(Expr::col("a"), Expr::lit(0i64)),
            Expr::col("p"),
        );
        assert!(compile(&ok, &s, None).is_some());
    }

    #[test]
    fn nat_div_and_mod_bail_to_scalar() {
        let s = Schema::of(&[("n", Ty::Nat)]);
        assert!(compile(
            &Expr::bin(BinOp::Div, Expr::col("n"), Expr::col("n")),
            &s,
            None
        )
        .is_none());
        assert!(compile(
            &Expr::bin(BinOp::Add, Expr::col("n"), Expr::col("n")),
            &s,
            None
        )
        .is_some());
    }

    #[test]
    fn repeated_columns_load_once() {
        let s = schema();
        let e = Expr::bin(BinOp::Mul, Expr::col("a"), Expr::col("a"));
        let k = compile(&e, &s, None).unwrap();
        assert_eq!(k.columns(), &[0]);
    }

    #[test]
    fn col_map_remaps_loads_to_buffer_columns() {
        let r = rel(80);
        // a view exposing only (b, d): visible column 0 is buffer column 1,
        // visible column 1 is buffer column 2
        let view = r.with_cols(Schema::of(&[("b", Ty::Int), ("d", Ty::Dbl)]), vec![1, 2]);
        let e = Expr::bin(BinOp::Gt, Expr::col("d"), Expr::lit(5.0f64));
        let prep = prepare(&e, &view, &force()).unwrap();
        let (vals, _) = prep.values_range(&view, 0..view.len()).unwrap();
        let bound = bind(&e, &view.schema).unwrap();
        for (i, got) in vals.iter().enumerate() {
            let want = eval(&bound, &view.owned_row(i)).unwrap();
            assert_eq!(*got, want, "row {i}");
        }
    }

    /// filter → compute → filter → project → attach as one chain program,
    /// checked cell-for-cell against the scalar operators applied one at
    /// a time.
    #[test]
    fn chain_streams_filter_compute_project_attach() {
        let r = rel(3000); // several batches
        let mut b = ChainBuilder::new(&r.schema);
        // SELECT a < 2000
        assert!(b.filter(&Expr::bin(BinOp::Lt, Expr::col("a"), Expr::lit(2000i64))));
        // COMPUTE y = a * 2 + b
        let y = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::col("a"), Expr::lit(2i64)),
            Expr::col("b"),
        );
        let mut s1 = r.schema.clone();
        s1 = Schema::of(
            &s1.cols()
                .iter()
                .map(|(n, t)| (&**n, *t))
                .chain([("y", Ty::Int)])
                .collect::<Vec<_>>(),
        );
        assert!(b.compute(&y, &s1));
        // SELECT y % 2 = 1 (a*2+3 is always odd: keeps everything — then
        // a tighter one) and SELECT y < 1003 (drops most rows)
        assert!(b.filter(&Expr::eq(
            Expr::bin(BinOp::Mod, Expr::col("y"), Expr::lit(2i64)),
            Expr::lit(1i64)
        )));
        assert!(b.filter(&Expr::bin(BinOp::Lt, Expr::col("y"), Expr::lit(1003i64))));
        // PROJECT (y, s) then ATTACH tag = "t"
        let s2 = Schema::of(&[("y", Ty::Int), ("s", Ty::Str)]);
        b.project(&[6, 4], &s2);
        let s3 = Schema::of(&[("y", Ty::Int), ("s", Ty::Str), ("tag", Ty::Str)]);
        b.attach(&Value::str("t"), &s3);
        let prog = b.finish();
        assert_eq!(prog.stage_count(), 4);
        assert!(prog.pure_input_out().is_none()); // y is carried, tag is const
        let bound = prog.bind(&r).unwrap();
        let chunk = bound.run_range(0..r.len()).unwrap();
        assert_eq!(chunk.batches, 3);
        // oracle: rows 0..2000 with y = 2a+3, keep y < 1003 → a < 500
        assert_eq!(chunk.rows.len(), 500);
        assert_eq!(chunk.carries.len(), 1);
        assert_eq!(chunk.carries[0].len(), 500);
        for (p, &row) in chunk.rows.iter().enumerate() {
            assert_eq!(row as usize, p);
            assert_eq!(chunk.carries[0].value(p), Value::Int(2 * p as i64 + 3));
        }
        // output columns resolve: y → carry 0, s → input 4, tag → const
        match prog.out() {
            [VirtSrc::Carry(0), VirtSrc::Input(4), VirtSrc::Const(v)] => {
                assert_eq!(*v, Value::str("t"));
            }
            other => panic!("unexpected out mapping {other:?}"),
        }
        assert_eq!(prog.out_schema().cols().len(), 3);
    }

    /// A chain over a narrowed view loads through the view's column remap.
    #[test]
    fn chain_binds_through_column_remaps() {
        let r = rel(100);
        let view = r.with_cols(Schema::of(&[("b", Ty::Int), ("d", Ty::Dbl)]), vec![1, 2]);
        let mut b = ChainBuilder::new(&view.schema);
        assert!(b.filter(&Expr::bin(BinOp::Gt, Expr::col("d"), Expr::lit(25.0f64))));
        let prog = b.finish();
        assert_eq!(prog.pure_input_out(), Some(vec![0, 1]));
        let chunk = prog.bind(&view).unwrap().run_range(0..view.len()).unwrap();
        // d = i/2 > 25 → i > 50
        assert_eq!(chunk.rows, (51..100).collect::<Vec<u32>>());
    }

    /// Chain errors keep the oracle's message and honor earlier filters:
    /// rows a filter dropped must never reach a later fallible compute.
    #[test]
    fn chain_error_semantics_respect_filters() {
        let r = rel(100);
        let wide = |sch: &Schema, extra: (&str, Ty)| {
            Schema::of(
                &sch.cols()
                    .iter()
                    .map(|(n, t)| (&**n, *t))
                    .chain([extra])
                    .collect::<Vec<_>>(),
            )
        };
        // guarded: a != 0 filtered first, then 1/a computes cleanly
        let mut b = ChainBuilder::new(&r.schema);
        assert!(b.filter(&Expr::bin(BinOp::Gt, Expr::col("a"), Expr::lit(0i64))));
        let inv = Expr::bin(BinOp::Div, Expr::lit(100i64), Expr::col("a"));
        assert!(b.compute(&inv, &wide(&r.schema, ("inv", Ty::Int))));
        let prog = b.finish();
        let chunk = prog.bind(&r).unwrap().run_range(0..r.len()).unwrap();
        assert_eq!(chunk.rows.len(), 99);
        assert_eq!(chunk.carries[0].value(0), Value::Int(100));
        // unguarded: the zero row reaches the divide and raises the
        // scalar oracle's message
        let mut b = ChainBuilder::new(&r.schema);
        assert!(b.compute(&inv, &wide(&r.schema, ("inv", Ty::Int))));
        let prog = b.finish();
        let err = prog.bind(&r).unwrap().run_range(0..r.len()).unwrap_err();
        assert_eq!(err, EngineError::Eval("division by zero".into()));
    }

    /// Compute stages that don't lower refuse fusion instead of lying.
    #[test]
    fn chain_builder_bails_on_unvectorizable_stages() {
        let r = rel(10);
        let mut b = ChainBuilder::new(&r.schema);
        // OR with fallible RHS cannot batch-evaluate
        let fallible = Expr::eq(
            Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::col("a")),
            Expr::lit(1i64),
        );
        assert!(!b.filter(&Expr::bin(BinOp::Or, Expr::col("p"), fallible.clone())));
        // non-bool filter refuses
        assert!(!b.filter(&Expr::col("a")));
        // compute of a non-lowering expression (fallible CASE branch)
        // refuses
        let case = Expr::case(
            Expr::col("p"),
            Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::col("a")),
            Expr::lit(1i64),
        );
        let s1 = Schema::of(&[("x", Ty::Int)]);
        assert!(!b.compute(&case, &s1));
        // the builder is still usable after refusals
        assert!(b.filter(&Expr::col("p")));
    }

    #[test]
    fn vec_mode_off_prepares_nothing() {
        let r = rel(200);
        let e = Expr::col("p");
        let off = ParConfig {
            vec: VecMode::Off,
            ..ParConfig::default()
        };
        assert!(prepare(&e, &r, &off).is_none());
        assert!(prepare(&e, &r, &force()).is_some());
    }
}

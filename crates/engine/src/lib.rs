//! # `ferry-engine` — the database coprocessor substrate
//!
//! An in-memory relational query engine that executes [`ferry_algebra`]
//! plans. It plays the role of the off-the-shelf RDBMS of the paper
//! (PostgreSQL / MonetDB): a *bulk-oriented* evaluator whose primitives
//! "apply a single operation to all rows in a given table" (§3.2
//! *Operations*), which is exactly the execution model loop-lifting
//! targets.
//!
//! ## What is modelled
//!
//! * a catalog of named base tables with declared key columns (the
//!   `table` combinator references tables by name; the key defines the
//!   canonical row order used for the `pos` encoding),
//! * bulk-at-a-time physical operators for the entire table algebra,
//! * **query accounting** ([`QueryStats`]): every [`Database::execute`]
//!   call counts as one query dispatched to the coprocessor, with an
//!   optional fixed dispatch cost to model client/server round-trip and
//!   parse/plan overhead — this is what makes the avalanche of Table 1
//!   observable and measurable.

//! ## Execution strategies
//!
//! The bulk operators run **copy-free** where the algebra allows it
//! (scans, filters, projections and serialisation are `Arc`-shared views
//! with selection vectors / column remaps), split large inputs into
//! **morsels** executed by a scoped-thread worker pool ([`par`]), and
//! evaluate independent DAG nodes — including the members of a query
//! bundle — concurrently by dependency **wavefront**. All of it is
//! observably deterministic; `ParConfig { threads: 1, .. }` recovers the
//! pure serial engine.
//!
//! Expression-heavy operators additionally carry a **vectorized** path
//! ([`vec_eval`]): expressions compile to register-based kernel programs
//! that run over typed column chunks 1024 rows per batch, with the scalar
//! row-at-a-time interpreter retained as both fallback and differential
//! oracle. `ParConfig::vec` selects the path; the per-dispatch
//! [`QueryProfile`] records which one each node took.
//!
//! ## Observability
//!
//! Every database owns a `ferry-telemetry` hub
//! ([`Database::telemetry`]): aggregate counters and the query-latency
//! histogram live in its metrics registry ([`QueryStats`] is the view
//! `stats()` assembles from it), per-node profiles of the last 16
//! dispatches sit in a [`ProfileRing`], and — under
//! [`TelemetryConfig::Full`] — each dispatch, node evaluation and morsel
//! records a span into the active query trace, worker threads included.

pub mod catalog;
pub mod error;
pub mod eval;
pub mod exec;
pub mod par;
pub mod shard;
pub mod stats;
pub mod sys;
pub mod vec_eval;

pub use catalog::{BaseTable, Database, Snapshot, TableShards, TableStats, Tx};
pub use error::EngineError;
pub use ferry_storage::{
    DurabilityConfig, FsyncPolicy, RecoveryReport, ShardRecoveryReport, StorageError,
};
pub use ferry_telemetry::{Telemetry, TelemetryConfig};
pub use par::{FuseMode, ParConfig, VecMode};
pub use shard::{
    all_shards_mask, shard_hash, shard_of, shards_for_pred, table_home, MAX_SHARDS,
    SHARD_HASH_VERSION,
};
pub use stats::{ExecPath, NodeProfile, ProfileRing, QueryProfile, QueryStats, PROFILE_RING_CAP};
pub use sys::{DispatchCtx, SlowQueryRecord, SysTableDef, SLOW_RING_CAP, SYS_PREFIX};

//! System tables: the database describing itself as relations.
//!
//! The paper's thesis — *database-supported program execution* — turned
//! inward: telemetry, catalog, shard, storage and slow-query state are
//! exposed as ordinary tables under the reserved `ferry.` namespace, so
//! the standard `Q<T>` DSL (filters, group-bys, joins, `explain_analyze`)
//! is the observability query language. No second API surface.
//!
//! Snapshot semantics: a scan of a system table materialises the live
//! source (metrics registry, profile ring, …) **once per scan**, at the
//! moment the executor resolves the `TableRef`, against the catalog
//! version the query pinned. Telemetry reads are *not* transactional —
//! two scans in one bundle may observe different counter values — but
//! each scan is internally consistent (one registry walk, one ring
//! clone). Rows are emitted in key order, so identical state renders
//! identical relations.
//!
//! Base tables shadow system tables: the executor resolves a name in the
//! pinned catalog first and falls back here only on a miss. Creating a
//! base table named `ferry.*` is therefore possible but hides the system
//! view — don't.

use crate::stats::QueryProfile;
use ferry_algebra::{Row, Schema, Ty, Value};
use ferry_telemetry::{Metric, Registry, Telemetry};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The reserved system-table namespace.
pub const SYS_PREFIX: &str = "ferry.";

/// Slow-query records retained per database (oldest evicted first).
pub const SLOW_RING_CAP: usize = 32;

/// Is `name` inside the reserved system namespace?
pub fn is_system(name: &str) -> bool {
    name.starts_with(SYS_PREFIX)
}

/// The intrinsic system tables every database serves, sorted.
/// (`ferry.plan_cache` is *extrinsic*: the runtime registers it via
/// `Database::register_system_table` because the plan cache lives there.)
pub const INTRINSIC: &[&str] = &[
    "ferry.histograms",
    "ferry.metrics",
    "ferry.queries",
    "ferry.shards",
    "ferry.slow_queries",
    "ferry.storage",
    "ferry.tables",
];

/// Schema and key columns of an intrinsic system table. Columns are
/// declared **alphabetically** — the canonical order the `table`
/// combinator exposes, so the DSL tuple arity maps positionally exactly
/// like any base table.
pub fn schema_of(name: &str) -> Option<(Schema, Vec<String>)> {
    let (cols, keys): (&[(&str, Ty)], &[&str]) = match name {
        "ferry.metrics" => (
            &[("kind", Ty::Str), ("name", Ty::Str), ("value", Ty::Int)],
            &["name"],
        ),
        "ferry.histograms" => (
            &[
                ("count", Ty::Int),
                ("mean", Ty::Dbl),
                ("name", Ty::Str),
                ("p50", Ty::Int),
                ("p95", Ty::Int),
                ("p99", Ty::Int),
                ("sum", Ty::Int),
            ],
            &["name"],
        ),
        "ferry.queries" => (
            &[
                ("elapsed_us", Ty::Int),
                ("nodes", Ty::Int),
                ("plan_hash", Ty::Int),
                ("query_id", Ty::Int),
                ("roots", Ty::Int),
                ("trace_id", Ty::Int),
            ],
            &["query_id"],
        ),
        "ferry.tables" => (
            &[
                ("bytes", Ty::Int),
                ("name", Ty::Str),
                ("rows", Ty::Int),
                ("shard_key", Ty::Str),
                ("shards", Ty::Int),
                ("wal_bytes", Ty::Int),
            ],
            &["name"],
        ),
        "ferry.shards" => (
            &[
                ("dense", Ty::Bool),
                ("rows", Ty::Int),
                ("shard", Ty::Int),
                ("table", Ty::Str),
            ],
            &["table", "shard"],
        ),
        "ferry.storage" => (&[("name", Ty::Str), ("value", Ty::Int)], &["name"]),
        "ferry.slow_queries" => (
            &[
                ("elapsed_us", Ty::Int),
                ("plan", Ty::Str),
                ("plan_hash", Ty::Int),
                ("query_id", Ty::Int),
                ("threshold_us", Ty::Int),
                ("trace", Ty::Str),
            ],
            &["query_id"],
        ),
        _ => return None,
    };
    Some((
        Schema::of(cols),
        keys.iter().map(|s| s.to_string()).collect(),
    ))
}

/// One captured slow dispatch: everything needed to diagnose it after
/// the fact without re-running — the plan pretty-print, the optimizer's
/// report, the per-node profile, and (when the dispatch ran traced) the
/// trace id to pull the span timeline from the telemetry ring.
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// Database-assigned dispatch id (joins `ferry.queries`).
    pub query_id: u64,
    /// Telemetry trace active during the dispatch (0 = ran untraced).
    pub trace_id: u64,
    /// Stable hash of the source expression (joins `ferry.plan_cache`;
    /// 0 for dispatches below the runtime, e.g. raw plan execution).
    pub plan_hash: u64,
    /// Bundle members in the dispatch.
    pub roots: u32,
    /// Wall-clock time of the dispatch.
    pub elapsed: Duration,
    /// The threshold in force when this record was captured.
    pub threshold: Duration,
    /// Pretty-printed plan of every root, in bundle order.
    pub plan: String,
    /// The optimizer's report, rendered (None below the runtime).
    pub opt_report: Option<String>,
    /// The dispatch's per-node profile (captured even under
    /// `TelemetryConfig::Off` — crossing the threshold is the opt-in).
    pub profile: QueryProfile,
}

impl SlowQueryRecord {
    /// Trace disposition at this instant: `"captured"` when the trace is
    /// still in the telemetry ring, `"evicted"` when it ran traced but
    /// aged out, `"off"` when the dispatch ran without tracing.
    pub fn trace_status(&self, telemetry: &Telemetry) -> &'static str {
        if self.trace_id == 0 {
            "off"
        } else if telemetry.trace_for_query(self.query_id).is_some() {
            "captured"
        } else {
            "evicted"
        }
    }
}

/// Per-dispatch context the runtime threads through `execute_bundle_ctx`
/// so slow-query capture can attribute a dispatch to its source
/// expression and optimizer run. `Default` (hash 0, no report) is what
/// raw `execute` paths use.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchCtx<'a> {
    /// `Exp::stable_hash` of the source program (0 when unknown).
    pub plan_hash: u64,
    /// The optimizer report of the compiled bundle, if any.
    pub opt: Option<&'a ferry_telemetry::OptReport>,
}

/// An extrinsic system table registered by an upper layer
/// (`Database::register_system_table`): a schema plus a provider closure
/// snapshotting the live source into rows at scan time. The provider
/// must emit rows typed per `schema`, in key order.
#[derive(Clone)]
pub struct SysTableDef {
    pub schema: Schema,
    pub keys: Vec<String>,
    pub provider: Arc<dyn Fn() -> Vec<Row> + Send + Sync>,
}

impl fmt::Debug for SysTableDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SysTableDef")
            .field("schema", &self.schema)
            .field("keys", &self.keys)
            .finish_non_exhaustive()
    }
}

/// `ferry.metrics` rows: one per counter/gauge, in registry (name) order.
pub(crate) fn metrics_rows(reg: &Registry) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, m) in reg.metrics() {
        let (kind, value) = match m {
            Metric::Counter(c) => ("counter", c.get() as i64),
            Metric::Gauge(g) => ("gauge", g.get()),
            Metric::Histogram(_) => continue,
        };
        rows.push(vec![Value::str(kind), Value::str(name), Value::Int(value)]);
    }
    rows
}

/// `ferry.histograms` rows: one per histogram, each a single consistent
/// snapshot (count = Σ buckets by construction).
pub(crate) fn histograms_rows(reg: &Registry) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, m) in reg.metrics() {
        let Metric::Histogram(h) = m else { continue };
        let s = h.snapshot();
        rows.push(vec![
            Value::Int(s.count as i64),
            Value::Dbl(s.mean()),
            Value::str(name),
            Value::Int(s.p50() as i64),
            Value::Int(s.p95() as i64),
            Value::Int(s.p99() as i64),
            Value::Int(s.sum as i64),
        ]);
    }
    rows
}

/// `ferry.queries` rows from the profile ring, oldest first (query-id
/// order — the ring is recency-ordered already).
pub(crate) fn queries_rows<'a>(profiles: impl Iterator<Item = &'a QueryProfile>) -> Vec<Row> {
    profiles
        .map(|p| {
            vec![
                Value::Int(p.elapsed.as_micros() as i64),
                Value::Int(p.nodes.len() as i64),
                Value::Int(p.plan_hash as i64),
                Value::Int(p.query_id as i64),
                Value::Int(p.roots as i64),
                Value::Int(p.trace_id as i64),
            ]
        })
        .collect()
}

/// `ferry.slow_queries` rows, oldest first. The `trace` column is the
/// disposition *now* (a trace can age out of the ring after capture).
pub(crate) fn slow_rows(records: &[SlowQueryRecord], telemetry: &Telemetry) -> Vec<Row> {
    records
        .iter()
        .map(|r| {
            vec![
                Value::Int(r.elapsed.as_micros() as i64),
                Value::str(r.plan.clone()),
                Value::Int(r.plan_hash as i64),
                Value::Int(r.query_id as i64),
                Value::Int(r.threshold.as_micros() as i64),
                Value::str(r.trace_status(telemetry)),
            ]
        })
        .collect()
}

/// Approximate in-memory footprint of one row, used for the
/// incrementally-maintained `ferry.tables` byte counts: fixed cells cost
/// their machine width, strings their length plus header.
pub(crate) fn row_bytes(row: &Row) -> u64 {
    row.iter()
        .map(|v| match v {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Dbl(_) | Value::Nat(_) => 8,
            Value::Str(s) => 8 + s.len() as u64,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_tables_all_have_schemas() {
        for name in INTRINSIC {
            let (schema, keys) = schema_of(name).expect("intrinsic schema");
            assert!(is_system(name));
            // columns alphabetical (the canonical `table` order)
            let cols: Vec<&str> = schema.cols().iter().map(|(c, _)| c.as_ref()).collect();
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            assert_eq!(cols, sorted, "{name} columns must be alphabetical");
            for k in &keys {
                assert!(schema.contains(k), "{name} key {k} in schema");
            }
        }
        assert!(schema_of("ferry.nope").is_none());
        assert!(!is_system("users"));
    }

    #[test]
    fn row_bytes_counts_strings_by_length() {
        let row: Row = vec![
            Value::Int(1),
            Value::str("abcd"),
            Value::Bool(true),
            Value::Unit,
        ];
        assert_eq!(row_bytes(&row), 8 + (8 + 4) + 1);
    }
}

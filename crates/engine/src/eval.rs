//! Row-level expression evaluation.
//!
//! Expressions are *bound* against a schema once per operator (column names
//! resolve to row indices), then evaluated per row. Binding keeps the inner
//! loop free of name lookups — the engine is bulk-oriented, so a `Compute`
//! over a million rows binds once and evaluates a million times.

use crate::error::EngineError;
use ferry_algebra::{BinOp, Expr, Row, Schema, Ty, UnOp, Value};

/// An expression with column references resolved to row indices.
#[derive(Debug, Clone)]
pub enum Bound {
    Col(usize),
    Const(Value),
    Bin(BinOp, Box<Bound>, Box<Bound>),
    Un(UnOp, Box<Bound>),
    Case(Box<Bound>, Box<Bound>, Box<Bound>),
    Cast(Ty, Box<Bound>),
}

/// Resolve column names in `expr` against `schema`. Plans are validated
/// before execution, so a missing column means a malformed plan slipped
/// past (or around) schema inference — reported as
/// [`EngineError::NoSuchColumn`], never a panic.
pub fn bind(expr: &Expr, schema: &Schema) -> Result<Bound, EngineError> {
    match expr {
        Expr::Col(c) => {
            schema
                .index_of(c)
                .map(Bound::Col)
                .ok_or_else(|| EngineError::NoSuchColumn {
                    col: c.to_string(),
                    schema: schema.to_string(),
                })
        }
        Expr::Const(v) => Ok(Bound::Const(v.clone())),
        Expr::Bin(op, l, r) => Ok(Bound::Bin(
            *op,
            Box::new(bind(l, schema)?),
            Box::new(bind(r, schema)?),
        )),
        Expr::Un(op, e) => Ok(Bound::Un(*op, Box::new(bind(e, schema)?))),
        Expr::Case(c, t, e) => Ok(Bound::Case(
            Box::new(bind(c, schema)?),
            Box::new(bind(t, schema)?),
            Box::new(bind(e, schema)?),
        )),
        Expr::Cast(ty, e) => Ok(Bound::Cast(*ty, Box::new(bind(e, schema)?))),
    }
}

fn ee(msg: impl Into<String>) -> EngineError {
    EngineError::Eval(msg.into())
}

/// Evaluate a bound expression over one row.
pub fn eval(b: &Bound, row: &Row) -> Result<Value, EngineError> {
    match b {
        Bound::Col(i) => Ok(row[*i].clone()),
        Bound::Const(v) => Ok(v.clone()),
        Bound::Bin(op, l, r) => {
            // short-circuit logic first
            if matches!(op, BinOp::And | BinOp::Or) {
                let lv = eval(l, row)?
                    .as_bool()
                    .ok_or_else(|| ee("AND/OR on non-bool"))?;
                return match (op, lv) {
                    (BinOp::And, false) => Ok(Value::Bool(false)),
                    (BinOp::Or, true) => Ok(Value::Bool(true)),
                    _ => {
                        let rv = eval(r, row)?
                            .as_bool()
                            .ok_or_else(|| ee("AND/OR on non-bool"))?;
                        Ok(Value::Bool(rv))
                    }
                };
            }
            let lv = eval(l, row)?;
            let rv = eval(r, row)?;
            bin_op(*op, lv, rv)
        }
        Bound::Un(UnOp::Not, e) => match eval(e, row)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            v => Err(ee(format!("NOT on {v}"))),
        },
        Bound::Un(UnOp::Neg, e) => match eval(e, row)? {
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| ee("integer overflow in negation")),
            Value::Dbl(d) => Ok(Value::Dbl(-d)),
            v => Err(ee(format!("negation on {v}"))),
        },
        Bound::Case(c, t, e) => match eval(c, row)? {
            Value::Bool(true) => eval(t, row),
            Value::Bool(false) => eval(e, row),
            v => Err(ee(format!("CASE condition is {v}, not bool"))),
        },
        Bound::Cast(ty, e) => cast(*ty, eval(e, row)?),
    }
}

/// Apply a non-logical binary operator to two values.
pub fn bin_op(op: BinOp, l: Value, r: Value) -> Result<Value, EngineError> {
    use BinOp::*;
    if op.is_cmp() {
        let o = l.cmp(&r);
        let b = match op {
            Eq => o.is_eq(),
            Ne => o.is_ne(),
            Lt => o.is_lt(),
            Le => o.is_le(),
            Gt => o.is_gt(),
            Ge => o.is_ge(),
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    match (op, l, r) {
        (Concat, Value::Str(a), Value::Str(b)) => {
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(&a);
            s.push_str(&b);
            Ok(Value::str(s))
        }
        (Add, Value::Int(a), Value::Int(b)) => a
            .checked_add(b)
            .map(Value::Int)
            .ok_or_else(|| ee("integer overflow in +")),
        (Sub, Value::Int(a), Value::Int(b)) => a
            .checked_sub(b)
            .map(Value::Int)
            .ok_or_else(|| ee("integer overflow in -")),
        (Mul, Value::Int(a), Value::Int(b)) => a
            .checked_mul(b)
            .map(Value::Int)
            .ok_or_else(|| ee("integer overflow in *")),
        (Div, Value::Int(a), Value::Int(b)) => {
            if b == 0 {
                Err(ee("division by zero"))
            } else {
                Ok(Value::Int(a.wrapping_div(b)))
            }
        }
        (Mod, Value::Int(a), Value::Int(b)) => {
            if b == 0 {
                Err(ee("modulo by zero"))
            } else {
                Ok(Value::Int(a.wrapping_rem(b)))
            }
        }
        (Add, Value::Dbl(a), Value::Dbl(b)) => Ok(Value::Dbl(a + b)),
        (Sub, Value::Dbl(a), Value::Dbl(b)) => Ok(Value::Dbl(a - b)),
        (Mul, Value::Dbl(a), Value::Dbl(b)) => Ok(Value::Dbl(a * b)),
        (Div, Value::Dbl(a), Value::Dbl(b)) => {
            if b == 0.0 {
                Err(ee("division by zero"))
            } else {
                Ok(Value::Dbl(a / b))
            }
        }
        (Mod, Value::Dbl(a), Value::Dbl(b)) => {
            if b == 0.0 {
                Err(ee("modulo by zero"))
            } else {
                Ok(Value::Dbl(a % b))
            }
        }
        (Add, Value::Nat(a), Value::Nat(b)) => a
            .checked_add(b)
            .map(Value::Nat)
            .ok_or_else(|| ee("nat overflow in +")),
        (Sub, Value::Nat(a), Value::Nat(b)) => a
            .checked_sub(b)
            .map(Value::Nat)
            .ok_or_else(|| ee("nat underflow in -")),
        (Mul, Value::Nat(a), Value::Nat(b)) => a
            .checked_mul(b)
            .map(Value::Nat)
            .ok_or_else(|| ee("nat overflow in *")),
        (op, l, r) => Err(ee(format!("{op:?} not applicable to {l} and {r}"))),
    }
}

/// Cast between numeric domains (and from bool).
pub fn cast(ty: Ty, v: Value) -> Result<Value, EngineError> {
    match (ty, &v) {
        (t, _) if v.ty() == t => Ok(v),
        (Ty::Dbl, Value::Int(i)) => Ok(Value::Dbl(*i as f64)),
        (Ty::Dbl, Value::Nat(n)) => Ok(Value::Dbl(*n as f64)),
        (Ty::Dbl, Value::Bool(b)) => Ok(Value::Dbl(if *b { 1.0 } else { 0.0 })),
        (Ty::Int, Value::Dbl(d)) => Ok(Value::Int(*d as i64)),
        (Ty::Int, Value::Nat(n)) => i64::try_from(*n)
            .map(Value::Int)
            .map_err(|_| ee("nat too large for int")),
        (Ty::Int, Value::Bool(b)) => Ok(Value::Int(i64::from(*b))),
        (Ty::Nat, Value::Int(i)) => u64::try_from(*i)
            .map(Value::Nat)
            .map_err(|_| ee("negative int cast to nat")),
        (Ty::Nat, Value::Dbl(d)) if *d >= 0.0 => Ok(Value::Nat(*d as u64)),
        (Ty::Nat, Value::Bool(b)) => Ok(Value::Nat(u64::from(*b))),
        (t, v) => Err(ee(format!("cannot cast {v} to {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[
            ("a", Ty::Int),
            ("b", Ty::Int),
            ("p", Ty::Bool),
            ("s", Ty::Str),
        ])
    }

    fn row() -> Row {
        vec![
            Value::Int(6),
            Value::Int(3),
            Value::Bool(true),
            Value::str("x"),
        ]
    }

    fn run(e: Expr) -> Result<Value, EngineError> {
        eval(&bind(&e, &schema())?, &row())
    }

    #[test]
    fn unbound_column_is_an_error_not_a_panic() {
        let err = bind(&Expr::col("nope"), &schema()).unwrap_err();
        assert!(matches!(err, EngineError::NoSuchColumn { .. }));
        // nested occurrences are found too
        let nested = Expr::case(
            Expr::col("p"),
            Expr::bin(BinOp::Add, Expr::col("a"), Expr::col("ghost")),
            Expr::lit(0i64),
        );
        match bind(&nested, &schema()) {
            Err(EngineError::NoSuchColumn { col, .. }) => assert_eq!(col, "ghost"),
            other => panic!("expected NoSuchColumn, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic() {
        let e = Expr::bin(BinOp::Div, Expr::col("a"), Expr::col("b"));
        assert_eq!(run(e).unwrap(), Value::Int(2));
        let m = Expr::bin(BinOp::Mod, Expr::col("a"), Expr::lit(4i64));
        assert_eq!(run(m).unwrap(), Value::Int(2));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = Expr::bin(BinOp::Div, Expr::col("a"), Expr::lit(0i64));
        assert!(run(e).is_err());
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let e = Expr::bin(BinOp::Add, Expr::lit(i64::MAX), Expr::lit(1i64));
        assert!(run(e).is_err());
        let n = Expr::Un(UnOp::Neg, std::sync::Arc::new(Expr::lit(i64::MIN)));
        assert!(run(n).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        let e = Expr::and(
            Expr::bin(BinOp::Gt, Expr::col("a"), Expr::col("b")),
            Expr::col("p"),
        );
        assert_eq!(run(e).unwrap(), Value::Bool(true));
        let ne = Expr::bin(BinOp::Ne, Expr::col("s"), Expr::lit("y"));
        assert_eq!(run(ne).unwrap(), Value::Bool(true));
    }

    #[test]
    fn logic_short_circuits() {
        // (false AND (1/0 = 1)) must not evaluate the division
        let e = Expr::and(
            Expr::lit(false),
            Expr::eq(
                Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64)),
                Expr::lit(1i64),
            ),
        );
        assert_eq!(run(e).unwrap(), Value::Bool(false));
        let o = Expr::bin(
            BinOp::Or,
            Expr::lit(true),
            Expr::eq(
                Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64)),
                Expr::lit(1i64),
            ),
        );
        assert_eq!(run(o).unwrap(), Value::Bool(true));
    }

    #[test]
    fn concat_and_case() {
        let e = Expr::bin(BinOp::Concat, Expr::col("s"), Expr::lit("!"));
        assert_eq!(run(e).unwrap(), Value::str("x!"));
        let c = Expr::case(Expr::col("p"), Expr::lit(1i64), Expr::lit(0i64));
        assert_eq!(run(c).unwrap(), Value::Int(1));
    }

    #[test]
    fn casts() {
        assert_eq!(cast(Ty::Dbl, Value::Int(2)).unwrap(), Value::Dbl(2.0));
        assert_eq!(cast(Ty::Int, Value::Nat(7)).unwrap(), Value::Int(7));
        assert_eq!(cast(Ty::Nat, Value::Int(7)).unwrap(), Value::Nat(7));
        assert!(cast(Ty::Nat, Value::Int(-1)).is_err());
        assert_eq!(cast(Ty::Int, Value::Bool(true)).unwrap(), Value::Int(1));
        assert!(cast(Ty::Str, Value::Int(1)).is_err());
        // identity cast
        assert_eq!(cast(Ty::Int, Value::Int(5)).unwrap(), Value::Int(5));
    }

    #[test]
    fn nat_arithmetic_is_checked() {
        assert!(bin_op(BinOp::Sub, Value::Nat(1), Value::Nat(2)).is_err());
        assert_eq!(
            bin_op(BinOp::Add, Value::Nat(1), Value::Nat(2)).unwrap(),
            Value::Nat(3)
        );
    }
}

/// Exhaustive pin of `bin_op` over every operator × numeric domain,
/// including the nasty edges. This is the *scalar oracle*: the vectorized
/// kernels in [`crate::vec_eval`] are differentially tested against `eval`,
/// so any behaviour change here must be deliberate.
#[cfg(test)]
mod bin_op_oracle {
    use super::*;

    const CMPS: [BinOp; 6] = [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];
    const ARITH: [BinOp; 5] = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod];

    fn ok(op: BinOp, l: Value, r: Value) -> Value {
        bin_op(op, l.clone(), r.clone())
            .unwrap_or_else(|e| panic!("{op:?}({l}, {r}) unexpectedly failed: {e}"))
    }

    fn err(op: BinOp, l: Value, r: Value) -> String {
        match bin_op(op, l.clone(), r.clone()) {
            Err(EngineError::Eval(m)) => m,
            other => panic!("{op:?}({l}, {r}) should fail, got {other:?}"),
        }
    }

    #[test]
    fn int_arithmetic_edges() {
        assert_eq!(
            ok(BinOp::Add, Value::Int(i64::MAX - 1), Value::Int(1)),
            Value::Int(i64::MAX)
        );
        assert_eq!(
            err(BinOp::Add, Value::Int(i64::MAX), Value::Int(1)),
            "integer overflow in +"
        );
        assert_eq!(
            err(BinOp::Sub, Value::Int(i64::MIN), Value::Int(1)),
            "integer overflow in -"
        );
        assert_eq!(
            err(BinOp::Mul, Value::Int(i64::MIN), Value::Int(-1)),
            "integer overflow in *"
        );
        // Pinned quirk: Int division uses wrapping_div after the zero
        // check, so i64::MIN / -1 wraps to i64::MIN instead of erroring.
        assert_eq!(
            ok(BinOp::Div, Value::Int(i64::MIN), Value::Int(-1)),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            ok(BinOp::Mod, Value::Int(i64::MIN), Value::Int(-1)),
            Value::Int(0)
        );
        assert_eq!(
            err(BinOp::Div, Value::Int(5), Value::Int(0)),
            "division by zero"
        );
        assert_eq!(
            err(BinOp::Mod, Value::Int(5), Value::Int(0)),
            "modulo by zero"
        );
        // truncation toward zero
        assert_eq!(
            ok(BinOp::Div, Value::Int(-7), Value::Int(2)),
            Value::Int(-3)
        );
        assert_eq!(
            ok(BinOp::Mod, Value::Int(-7), Value::Int(2)),
            Value::Int(-1)
        );
    }

    #[test]
    fn nat_arithmetic_edges() {
        assert_eq!(
            err(BinOp::Add, Value::Nat(u64::MAX), Value::Nat(1)),
            "nat overflow in +"
        );
        assert_eq!(
            err(BinOp::Sub, Value::Nat(0), Value::Nat(1)),
            "nat underflow in -"
        );
        assert_eq!(
            err(BinOp::Mul, Value::Nat(u64::MAX), Value::Nat(2)),
            "nat overflow in *"
        );
        assert_eq!(
            ok(BinOp::Sub, Value::Nat(u64::MAX), Value::Nat(u64::MAX)),
            Value::Nat(0)
        );
        // Pinned: Nat has no Div/Mod in the scalar oracle — they fall
        // through to the catch-all "not applicable" error.
        assert!(err(BinOp::Div, Value::Nat(4), Value::Nat(2)).contains("not applicable"));
        assert!(err(BinOp::Mod, Value::Nat(4), Value::Nat(2)).contains("not applicable"));
    }

    #[test]
    fn dbl_arithmetic_edges() {
        assert_eq!(
            ok(BinOp::Add, Value::Dbl(f64::MAX), Value::Dbl(f64::MAX)),
            Value::Dbl(f64::INFINITY)
        );
        // NaN propagates silently through arithmetic…
        match ok(BinOp::Mul, Value::Dbl(f64::NAN), Value::Dbl(1.0)) {
            Value::Dbl(d) => assert!(d.is_nan()),
            v => panic!("expected Dbl, got {v}"),
        }
        // …but division/modulo by literal zero is still an error.
        assert_eq!(
            err(BinOp::Div, Value::Dbl(1.0), Value::Dbl(0.0)),
            "division by zero"
        );
        assert_eq!(
            err(BinOp::Div, Value::Dbl(1.0), Value::Dbl(-0.0)),
            "division by zero"
        );
        assert_eq!(
            err(BinOp::Mod, Value::Dbl(1.0), Value::Dbl(0.0)),
            "modulo by zero"
        );
        assert_eq!(
            ok(BinOp::Mod, Value::Dbl(7.5), Value::Dbl(2.0)),
            Value::Dbl(1.5)
        );
    }

    #[test]
    fn comparisons_are_total_over_every_domain() {
        // Int: MIN < -1 < 0 < MAX
        let ints = [i64::MIN, -1, 0, i64::MAX].map(Value::Int);
        // Nat: 0 < 1 < MAX
        let nats = [0, 1, u64::MAX].map(Value::Nat);
        // Dbl under total_cmp: -inf < -0.0 < 0.0 < 1.0 < inf < NaN
        let dbls = [f64::NEG_INFINITY, -0.0, 0.0, 1.0, f64::INFINITY, f64::NAN].map(Value::Dbl);
        for vals in [&ints[..], &nats[..], &dbls[..]] {
            for (i, l) in vals.iter().enumerate() {
                for (j, r) in vals.iter().enumerate() {
                    for op in CMPS {
                        let want = match op {
                            BinOp::Eq => i == j,
                            BinOp::Ne => i != j,
                            BinOp::Lt => i < j,
                            BinOp::Le => i <= j,
                            BinOp::Gt => i > j,
                            BinOp::Ge => i >= j,
                            _ => unreachable!(),
                        };
                        assert_eq!(
                            ok(op, l.clone(), r.clone()),
                            Value::Bool(want),
                            "{op:?}({l}, {r})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nan_compares_equal_to_itself_under_total_order() {
        // Value ordering is f64::total_cmp, not IEEE partial order.
        assert_eq!(
            ok(BinOp::Eq, Value::Dbl(f64::NAN), Value::Dbl(f64::NAN)),
            Value::Bool(true)
        );
        assert_eq!(
            ok(BinOp::Gt, Value::Dbl(f64::NAN), Value::Dbl(f64::INFINITY)),
            Value::Bool(true)
        );
        // -0.0 and 0.0 are *distinct* under total order.
        assert_eq!(
            ok(BinOp::Lt, Value::Dbl(-0.0), Value::Dbl(0.0)),
            Value::Bool(true)
        );
    }

    #[test]
    fn mixed_domains_never_arith() {
        // Every arithmetic op across mismatched domains is the catch-all
        // error — kernels must bail rather than coerce.
        let l = Value::Int(1);
        for r in [
            Value::Nat(1),
            Value::Dbl(1.0),
            Value::Bool(true),
            Value::str("x"),
        ] {
            for op in ARITH {
                assert!(
                    err(op, l.clone(), r.clone()).contains("not applicable"),
                    "{op:?}(int, {r})"
                );
            }
        }
        // Concat is string-only.
        assert!(err(BinOp::Concat, Value::Int(1), Value::Int(2)).contains("not applicable"));
        assert_eq!(
            ok(BinOp::Concat, Value::str("ab"), Value::str("cd")),
            Value::str("abcd")
        );
    }
}

//! Physical operators: bulk-at-a-time evaluation of a plan DAG.
//!
//! Nodes are evaluated in arena order (which is a topological order by
//! construction), each reachable node exactly once; results of shared
//! nodes are reused, mirroring how a real engine evaluates a DAG-shaped
//! query with common subexpressions.

use crate::catalog::Database;
use crate::error::EngineError;
use crate::eval::{bind, eval};
use crate::stats::QueryStats;
use ferry_algebra::{AggFun, Dir, Node, NodeId, Plan, Rel, Row, Schema, SortSpec, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Evaluate the DAG under `root` and return its relation.
pub fn run(
    db: &Database,
    plan: &Plan,
    root: NodeId,
    schemas: &[Schema],
    stats: &mut QueryStats,
) -> Result<Rel, EngineError> {
    let reachable = plan.reachable(root);
    let mut results: Vec<Option<Rel>> = vec![None; plan.len()];
    for id in reachable {
        let rel = eval_node(db, plan, id, schemas, &results)?;
        stats.nodes_evaluated += 1;
        stats.rows_produced += rel.len() as u64;
        results[id.index()] = Some(rel);
    }
    Ok(results[root.index()].take().expect("root evaluated"))
}

fn child(results: &[Option<Rel>], id: NodeId) -> &Rel {
    results[id.index()]
        .as_ref()
        .expect("child evaluated before parent")
}

/// Compare two rows on the given `(index, direction)` spec.
fn cmp_rows(a: &Row, b: &Row, spec: &[(usize, Dir)]) -> Ordering {
    for &(i, d) in spec {
        let o = a[i].cmp(&b[i]);
        let o = match d {
            Dir::Asc => o,
            Dir::Desc => o.reverse(),
        };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

fn resolve_sort(schema: &Schema, order: &[SortSpec]) -> Vec<(usize, Dir)> {
    order
        .iter()
        .map(|(c, d)| (schema.index_of(c).expect("validated"), *d))
        .collect()
}

fn resolve_cols(schema: &Schema, cols: &[ferry_algebra::ColName]) -> Vec<usize> {
    cols.iter()
        .map(|c| schema.index_of(c).expect("validated"))
        .collect()
}

fn key_of(row: &Row, idxs: &[usize]) -> Vec<Value> {
    idxs.iter().map(|&i| row[i].clone()).collect()
}

fn eval_node(
    db: &Database,
    plan: &Plan,
    id: NodeId,
    schemas: &[Schema],
    results: &[Option<Rel>],
) -> Result<Rel, EngineError> {
    let out_schema = schemas[id.index()].clone();
    match plan.node(id) {
        Node::TableRef { name, cols, .. } => {
            let table = db
                .table(name)
                .ok_or_else(|| EngineError::NoSuchTable(name.clone()))?;
            if table.schema.len() != cols.len() {
                return Err(EngineError::TableMismatch {
                    table: name.clone(),
                    detail: format!(
                        "plan expects {} columns, table has {}",
                        cols.len(),
                        table.schema.len()
                    ),
                });
            }
            for ((plan_col, plan_ty), (cat_col, cat_ty)) in cols.iter().zip(table.schema.cols()) {
                if plan_ty != cat_ty {
                    return Err(EngineError::TableMismatch {
                        table: name.clone(),
                        detail: format!("column {cat_col} is {cat_ty}, plan column {plan_col} expects {plan_ty}"),
                    });
                }
            }
            Ok(Rel::new(out_schema, table.rows.clone()))
        }
        Node::Lit { rows, .. } => Ok(Rel::new(out_schema, rows.clone())),
        Node::Attach { input, value, .. } => {
            let rel = child(results, *input);
            let rows = rel
                .rows
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.push(value.clone());
                    r
                })
                .collect();
            Ok(Rel::new(out_schema, rows))
        }
        Node::Project { input, cols } => {
            let rel = child(results, *input);
            let idxs: Vec<usize> = cols
                .iter()
                .map(|(_, old)| rel.schema.index_of(old).expect("validated"))
                .collect();
            let rows = rel.rows.iter().map(|r| key_of(r, &idxs)).collect();
            Ok(Rel::new(out_schema, rows))
        }
        Node::Compute { input, expr, .. } => {
            let rel = child(results, *input);
            let bound = bind(expr, &rel.schema);
            let mut rows = Vec::with_capacity(rel.len());
            for r in &rel.rows {
                let v = eval(&bound, r)?;
                let mut r = r.clone();
                r.push(v);
                rows.push(r);
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::Select { input, pred } => {
            let rel = child(results, *input);
            let bound = bind(pred, &rel.schema);
            let mut rows = Vec::new();
            for r in &rel.rows {
                if eval(&bound, r)? == Value::Bool(true) {
                    rows.push(r.clone());
                }
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::Distinct { input } => {
            let rel = child(results, *input);
            let mut seen: HashMap<&Row, ()> = HashMap::with_capacity(rel.len());
            let mut rows = Vec::new();
            for r in &rel.rows {
                if seen.insert(r, ()).is_none() {
                    rows.push(r.clone());
                }
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::UnionAll { left, right } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let mut rows = l.rows.clone();
            rows.extend(r.rows.iter().cloned());
            Ok(Rel::new(out_schema, rows))
        }
        Node::Difference { left, right } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let exclude: HashMap<&Row, ()> = r.rows.iter().map(|row| (row, ())).collect();
            let mut seen: HashMap<&Row, ()> = HashMap::new();
            let mut rows = Vec::new();
            for row in &l.rows {
                if !exclude.contains_key(row) && seen.insert(row, ()).is_none() {
                    rows.push(row.clone());
                }
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::CrossJoin { left, right } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let mut rows = Vec::with_capacity(l.len() * r.len());
            for a in &l.rows {
                for b in &r.rows {
                    let mut row = a.clone();
                    row.extend(b.iter().cloned());
                    rows.push(row);
                }
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::EquiJoin { left, right, on } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let li = resolve_cols(&l.schema, &on.left);
            let ri = resolve_cols(&r.schema, &on.right);
            // hash join: build on the right, probe with the left
            let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(r.len());
            for (i, row) in r.rows.iter().enumerate() {
                index.entry(key_of(row, &ri)).or_default().push(i);
            }
            let mut rows = Vec::new();
            for a in &l.rows {
                if let Some(matches) = index.get(&key_of(a, &li)) {
                    for &i in matches {
                        let mut row = a.clone();
                        row.extend(r.rows[i].iter().cloned());
                        rows.push(row);
                    }
                }
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::SemiJoin { left, right, on } | Node::AntiJoin { left, right, on } => {
            let anti = matches!(plan.node(id), Node::AntiJoin { .. });
            let l = child(results, *left);
            let r = child(results, *right);
            let li = resolve_cols(&l.schema, &on.left);
            let ri = resolve_cols(&r.schema, &on.right);
            let keys: HashMap<Vec<Value>, ()> =
                r.rows.iter().map(|row| (key_of(row, &ri), ())).collect();
            let rows = l
                .rows
                .iter()
                .filter(|a| keys.contains_key(&key_of(a, &li)) != anti)
                .cloned()
                .collect();
            Ok(Rel::new(out_schema, rows))
        }
        Node::ThetaJoin { left, right, pred } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let joint = l.schema.concat(&r.schema);
            let bound = bind(pred, &joint);
            let mut rows = Vec::new();
            for a in &l.rows {
                for b in &r.rows {
                    let mut row = a.clone();
                    row.extend(b.iter().cloned());
                    if eval(&bound, &row)? == Value::Bool(true) {
                        rows.push(row);
                    }
                }
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::RowNum {
            input, part, order, ..
        } => {
            let rel = child(results, *input);
            Ok(windowed(rel, part, order, out_schema, WindowKind::RowNum))
        }
        Node::RowRank { input, order, .. } => {
            let rel = child(results, *input);
            Ok(windowed(rel, &[], order, out_schema, WindowKind::Rank))
        }
        Node::DenseRank {
            input, part, order, ..
        } => {
            let rel = child(results, *input);
            Ok(windowed(
                rel,
                part,
                order,
                out_schema,
                WindowKind::DenseRank,
            ))
        }
        Node::GroupBy { input, keys, aggs } => {
            let rel = child(results, *input);
            let ki = resolve_cols(&rel.schema, keys);
            let ai: Vec<Option<usize>> = aggs
                .iter()
                .map(|a| {
                    a.input
                        .as_ref()
                        .map(|c| rel.schema.index_of(c).expect("validated"))
                })
                .collect();
            // group rows by key, first-occurrence order
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
            for row in &rel.rows {
                let key = key_of(row, &ki);
                let accs = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    aggs.iter().map(|a| Acc::new(a.fun)).collect()
                });
                for (acc, idx) in accs.iter_mut().zip(&ai) {
                    acc.feed(idx.map(|i| &row[i]))?;
                }
            }
            let mut rows = Vec::with_capacity(order.len());
            for key in order {
                let accs = groups.remove(&key).expect("group present");
                let mut row = key;
                for acc in accs {
                    row.push(acc.finish()?);
                }
                rows.push(row);
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::Serialize { input, order, cols } => {
            let rel = child(results, *input);
            let spec = resolve_sort(&rel.schema, order);
            let mut idxs: Vec<usize> = (0..rel.len()).collect();
            idxs.sort_by(|&a, &b| cmp_rows(&rel.rows[a], &rel.rows[b], &spec).then(a.cmp(&b)));
            let ci = resolve_cols(&rel.schema, cols);
            let rows = idxs
                .into_iter()
                .map(|i| key_of(&rel.rows[i], &ci))
                .collect();
            Ok(Rel::new(out_schema, rows))
        }
    }
}

#[derive(Clone, Copy)]
enum WindowKind {
    RowNum,
    Rank,
    DenseRank,
}

/// Shared implementation of `ROW_NUMBER`/`RANK`/`DENSE_RANK`.
///
/// Rows are ordered by `(part, order, original index)` — the original index
/// as final tiebreak makes numbering deterministic when the order spec has
/// ties, matching what loop-lifting assumes of the back-end ("the database
/// system is free to consider these bindings ... in any order" only where
/// the result is order-insensitive).
fn windowed(
    rel: &Rel,
    part: &[ferry_algebra::ColName],
    order: &[SortSpec],
    out_schema: Schema,
    kind: WindowKind,
) -> Rel {
    let pi = resolve_cols(&rel.schema, part);
    let spec = resolve_sort(&rel.schema, order);
    let mut idxs: Vec<usize> = (0..rel.len()).collect();
    idxs.sort_by(|&a, &b| {
        key_of(&rel.rows[a], &pi)
            .cmp(&key_of(&rel.rows[b], &pi))
            .then_with(|| cmp_rows(&rel.rows[a], &rel.rows[b], &spec))
            .then(a.cmp(&b))
    });
    let mut rows: Vec<Row> = Vec::with_capacity(rel.len());
    let mut prev_part: Option<Vec<Value>> = None;
    let mut prev_order: Option<Vec<Value>> = None;
    let mut row_number = 0u64;
    let mut rank_value = 0u64;
    let order_idx: Vec<usize> = spec.iter().map(|&(i, _)| i).collect();
    for i in idxs {
        let row = &rel.rows[i];
        let p = key_of(row, &pi);
        let o = key_of(row, &order_idx);
        if prev_part.as_ref() != Some(&p) {
            row_number = 0;
            rank_value = 0;
            prev_order = None;
            prev_part = Some(p);
        }
        row_number += 1;
        let fresh_order = prev_order.as_ref() != Some(&o);
        if fresh_order {
            prev_order = Some(o);
        }
        let n = match kind {
            WindowKind::RowNum => row_number,
            WindowKind::Rank => {
                if fresh_order {
                    rank_value = row_number;
                }
                rank_value
            }
            WindowKind::DenseRank => {
                if fresh_order {
                    rank_value += 1;
                }
                rank_value
            }
        };
        let mut out = row.clone();
        out.push(Value::Nat(n));
        rows.push(out);
    }
    Rel::new(out_schema, rows)
}

/// Aggregate accumulator.
enum Acc {
    Count(i64),
    SumInt(i64),
    SumDbl(f64),
    SumNat(u64),
    SumEmpty, // sum before the first value fixes the numeric domain
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
    All(bool),
    Any(bool),
}

impl Acc {
    fn new(fun: AggFun) -> Acc {
        match fun {
            AggFun::CountAll => Acc::Count(0),
            AggFun::Sum => Acc::SumEmpty,
            AggFun::Min => Acc::Min(None),
            AggFun::Max => Acc::Max(None),
            AggFun::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFun::All => Acc::All(true),
            AggFun::Any => Acc::Any(false),
        }
    }

    fn feed(&mut self, v: Option<&Value>) -> Result<(), EngineError> {
        let overflow = || EngineError::Eval("overflow in SUM".into());
        match self {
            Acc::Count(n) => *n += 1,
            Acc::SumEmpty => {
                *self = match v.expect("validated") {
                    Value::Int(i) => Acc::SumInt(*i),
                    Value::Dbl(d) => Acc::SumDbl(*d),
                    Value::Nat(n) => Acc::SumNat(*n),
                    v => return Err(EngineError::Eval(format!("SUM over {v}"))),
                }
            }
            Acc::SumInt(s) => {
                let i = v.and_then(|v| v.as_int()).ok_or_else(overflow)?;
                *s = s.checked_add(i).ok_or_else(overflow)?;
            }
            Acc::SumDbl(s) => *s += v.and_then(|v| v.as_dbl()).unwrap_or(0.0),
            Acc::SumNat(s) => {
                let n = v.and_then(|v| v.as_nat()).ok_or_else(overflow)?;
                *s = s.checked_add(n).ok_or_else(overflow)?;
            }
            Acc::Min(m) => {
                let v = v.expect("validated");
                if m.as_ref().is_none_or(|m| v < m) {
                    *m = Some(v.clone());
                }
            }
            Acc::Max(m) => {
                let v = v.expect("validated");
                if m.as_ref().is_none_or(|m| v > m) {
                    *m = Some(v.clone());
                }
            }
            Acc::Avg { sum, n } => {
                let d = match v.expect("validated") {
                    Value::Int(i) => *i as f64,
                    Value::Dbl(d) => *d,
                    v => return Err(EngineError::Eval(format!("AVG over {v}"))),
                };
                *sum += d;
                *n += 1;
            }
            Acc::All(b) => *b &= v.and_then(|v| v.as_bool()).unwrap_or(true),
            Acc::Any(b) => *b |= v.and_then(|v| v.as_bool()).unwrap_or(false),
        }
        Ok(())
    }

    fn finish(self) -> Result<Value, EngineError> {
        match self {
            Acc::Count(n) => Ok(Value::Int(n)),
            Acc::SumInt(s) => Ok(Value::Int(s)),
            Acc::SumDbl(s) => Ok(Value::Dbl(s)),
            Acc::SumNat(s) => Ok(Value::Nat(s)),
            // SUM over an empty group: groups only exist for non-empty
            // inputs, so this is unreachable via GroupBy, but keep it total.
            Acc::SumEmpty => Ok(Value::Int(0)),
            Acc::Min(m) | Acc::Max(m) => {
                m.ok_or_else(|| EngineError::Eval("MIN/MAX over empty group".into()))
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Err(EngineError::Eval("AVG over empty group".into()))
                } else {
                    Ok(Value::Dbl(sum / n as f64))
                }
            }
            Acc::All(b) => Ok(Value::Bool(b)),
            Acc::Any(b) => Ok(Value::Bool(b)),
        }
    }
}

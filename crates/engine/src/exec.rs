//! Physical operators: bulk-at-a-time evaluation of a plan DAG.
//!
//! Three compounding execution strategies keep the bulk operators — the
//! hot path of every loop-lifted bundle — fast:
//!
//! 1. **Copy-free buffers.** Relations are views over `Arc`-shared row
//!    buffers ([`Rel`]). `TableRef` and `Lit` hand out the catalog's /
//!    plan's own buffer; `Select`, `Distinct`, semi/anti joins emit
//!    *selection vectors*; `Project` and `Serialize` emit *column remaps*.
//!    Rows are only materialised by operators that create new cells.
//! 2. **Morsel-driven intra-operator parallelism** ([`crate::par`]):
//!    predicate evaluation, row construction, join probes and sorts split
//!    large inputs into ordered morsels executed by scoped worker threads.
//! 3. **DAG wavefront scheduling**: the arena is topologically ordered, so
//!    nodes group into dependency levels; independent siblings of one
//!    level (including the sub-plans of different bundle members in
//!    [`run_many`]) evaluate concurrently.
//!
//! All three are *observably deterministic*: morsel outputs reassemble in
//! morsel order, sorts break ties on row position, and wavefronts only
//! reorder wall-clock work, never results. `tests/differential.rs` checks
//! serial and parallel runs cell-for-cell.

use crate::catalog::{Snapshot, TableShards};
use crate::error::EngineError;
use crate::eval::{bind, eval, Bound};
use crate::par::{self, ParConfig};
use crate::shard::{all_shards_mask, shards_for_pred};
use crate::stats::{ExecPath, NodeProfile, QueryStats};
use crate::vec_eval::{self, ChainBuilder, ChainProg, Reg, StreamChunk, VirtSrc, BATCH_ROWS};
use ferry_algebra::plan::Aggregate;
use ferry_algebra::{
    AggFun, ColName, ColVec, Dir, Expr, Node, NodeId, Plan, Rel, Row, Schema, SortSpec, Value,
};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering as AtOrd};
use std::sync::Mutex;
use std::time::Instant;

/// Evaluate the DAG under `root` and return its relation. `prof`
/// receives one [`NodeProfile`] per evaluated node.
pub fn run(
    snap: &Snapshot<'_>,
    plan: &Plan,
    root: NodeId,
    schemas: &[Schema],
    stats: &mut QueryStats,
    prof: &mut Vec<NodeProfile>,
) -> Result<Rel, EngineError> {
    Ok(run_many(snap, plan, &[root], schemas, stats, prof)?
        .pop()
        .expect("one root in, one relation out"))
}

/// Evaluate the DAG under several roots **in one pass**: nodes shared
/// between roots (common sub-plans of a query bundle) are evaluated once,
/// and independent nodes of each dependency wavefront run concurrently.
/// Returns one relation per root, in root order.
pub fn run_many(
    snap: &Snapshot<'_>,
    plan: &Plan,
    roots: &[NodeId],
    schemas: &[Schema],
    stats: &mut QueryStats,
    prof: &mut Vec<NodeProfile>,
) -> Result<Vec<Rel>, EngineError> {
    let cfg = snap.par_config();
    // mark every node reachable from any root
    let mut needed = vec![false; plan.len()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut needed[id.index()], true) {
            continue;
        }
        stack.extend(plan.node(id).children());
    }
    let pipelines = form_pipelines(plan, roots, &needed);
    let shard_plan = plan_shards(snap, plan, roots, &needed, schemas);
    let grouped = {
        let mut g = vec![false; plan.len()];
        for spec in pipelines.values() {
            if let PipeInput::Scan(s) = spec.input {
                g[s.index()] = true;
            }
            for &mid in &spec.mids {
                g[mid.index()] = true;
            }
        }
        // a chain-op tail is listed among its own mids but keeps its slot
        for &tail in pipelines.keys() {
            g[tail] = false;
        }
        g
    };
    // dependency levels: children are always lower-indexed, one forward
    // scan. Pipeline-absorbed nodes still get levels (their parents need
    // them) but no wave slot — the tail evaluates them.
    let mut level = vec![0u32; plan.len()];
    let mut waves: Vec<Vec<NodeId>> = Vec::new();
    for idx in 0..plan.len() {
        if !needed[idx] {
            continue;
        }
        let id = NodeId(idx as u32);
        let l = plan
            .node(id)
            .children()
            .iter()
            .map(|c| level[c.index()] + 1)
            .max()
            .unwrap_or(0);
        level[idx] = l;
        if grouped[idx] {
            continue;
        }
        if waves.len() <= l as usize {
            waves.resize_with(l as usize + 1, Vec::new);
        }
        waves[l as usize].push(id);
    }

    let mut results: Vec<Option<Rel>> = vec![None; plan.len()];
    for wave in &waves {
        // Nodes of one wave are mutually independent (an ancestor is always
        // on a strictly higher level). Evaluate the heavyweight ones on the
        // worker pool, the trivial ones inline, then record in id order.
        let mut outcomes: Vec<Option<(Rel, NodeMetrics)>> = vec![None; wave.len()];
        let heavy: Vec<usize> = (0..wave.len())
            .filter(|&k| {
                let id = wave[k];
                // a pipeline tail's work is sized by its chain input, not
                // by its (never-materialised) direct children
                let est = match pipelines.get(&id.index()) {
                    Some(spec) => match spec.input {
                        PipeInput::Scan(s) => est_input_rows(snap, plan, s, &results),
                        PipeInput::Node(n) => {
                            results[n.index()].as_ref().map(Rel::len).unwrap_or(0)
                        }
                    },
                    None => est_input_rows(snap, plan, id, &results),
                };
                est >= cfg.min_rows.max(2)
            })
            .collect();
        if cfg.threads > 1 && heavy.len() >= 2 {
            stats.par_waves += 1;
            let slots: Vec<WaveSlot> = heavy.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let results_ref = &results;
            // forward the ambient trace context into the wave workers so
            // their spans land in the dispatching query's trace
            let ctx = ferry_telemetry::current_ctx();
            std::thread::scope(|s| {
                for _ in 0..cfg.threads.min(heavy.len()) {
                    s.spawn(|| {
                        let _t = ferry_telemetry::enter_ctx(ctx);
                        loop {
                            let w = next.fetch_add(1, AtOrd::Relaxed);
                            if w >= heavy.len() {
                                break;
                            }
                            let id = wave[heavy[w]];
                            *slots[w].lock().unwrap() = Some(eval_timed(
                                snap,
                                plan,
                                id,
                                schemas,
                                results_ref,
                                &cfg,
                                &pipelines,
                                &shard_plan,
                            ));
                        }
                    });
                }
            });
            for (w, slot) in slots.into_iter().enumerate() {
                let outcome = slot
                    .into_inner()
                    .unwrap()
                    .expect("every wave slot is claimed")?;
                outcomes[heavy[w]] = Some(outcome);
            }
        }
        for (k, &id) in wave.iter().enumerate() {
            if outcomes[k].is_none() {
                outcomes[k] = Some(eval_timed(
                    snap,
                    plan,
                    id,
                    schemas,
                    &results,
                    &cfg,
                    &pipelines,
                    &shard_plan,
                )?);
            }
        }
        for (k, outcome) in outcomes.into_iter().enumerate() {
            let (rel, m) = outcome.expect("wave fully evaluated");
            let id = wave[k];
            // a pipeline tail accounts for every member it evaluated
            stats.nodes_evaluated += m.fused_nodes.max(1) as u64;
            stats.rows_produced += rel.len() as u64;
            stats.morsel_tasks += m.morsels as u64;
            if m.morsels > 1 {
                stats.par_nodes += 1;
            }
            if m.path == ExecPath::Vectorized {
                stats.vec_nodes += 1;
            }
            if m.path == ExecPath::Fused {
                stats.fused_pipelines += 1;
                stats.fused_nodes += m.fused_nodes as u64;
            }
            stats.kernel_batches += m.batches as u64;
            stats.shard_rows += m.shard_rows;
            stats.shard_pruned += m.shard_pruned;
            let label = plan.node(id).label();
            // member labels in scan→sink order, for profiles and spans
            let fused_labels: Vec<&'static str> = pipelines
                .get(&id.index())
                .map(|spec| {
                    let mut v = Vec::new();
                    if let PipeInput::Scan(s) = spec.input {
                        v.push(plan.node(s).label());
                    }
                    v.extend(spec.mids.iter().map(|&mid| plan.node(mid).label()));
                    if let Some(sink) = spec.sink {
                        v.push(plan.node(sink).label());
                    }
                    v
                })
                .unwrap_or_default();
            if ferry_telemetry::tracing_active() {
                // post-hoc span: the node was timed by eval_timed (maybe
                // on a worker thread); record it here under the dispatch
                // span so every plan node shows up in the query trace
                let mut attrs: Vec<(&'static str, ferry_telemetry::AttrVal)> = vec![
                    ("node", id.0.into()),
                    ("rows", (rel.len() as u64).into()),
                    ("morsels", m.morsels.into()),
                    ("path", m.path.to_string().into()),
                    ("batches", m.batches.into()),
                ];
                if m.shards_total > 0 {
                    attrs.push(("shards_scanned", m.shards_scanned.into()));
                    attrs.push(("shards_total", m.shards_total.into()));
                }
                let (span_label, event) = if fused_labels.is_empty() {
                    (label, "exec.node")
                } else {
                    attrs.push(("nodes", fused_labels.join("→").into()));
                    ("pipeline", "exec.pipeline")
                };
                ferry_telemetry::record_span(
                    span_label,
                    event,
                    m.start_ns,
                    m.elapsed.as_nanos() as u64,
                    attrs,
                );
            }
            prof.push(NodeProfile {
                node: id.0,
                label,
                rows: rel.len() as u64,
                elapsed: m.elapsed,
                morsels: m.morsels,
                path: m.path,
                batches: m.batches,
                fused: fused_labels,
                shards_scanned: m.shards_scanned,
                shards_total: m.shards_total,
            });
            results[id.index()] = Some(rel);
        }
    }
    Ok(roots
        .iter()
        .map(|r| {
            results[r.index()]
                .clone()
                .expect("root evaluated by final wave")
        })
        .collect())
}

/// Rows the node will consume — child result sizes (already evaluated in
/// earlier waves), or the base-table / literal size for leaves. Decides
/// whether a node is worth a worker-pool slot.
fn est_input_rows(snap: &Snapshot<'_>, plan: &Plan, id: NodeId, results: &[Option<Rel>]) -> usize {
    match plan.node(id) {
        Node::TableRef { name, .. } => snap.table(name).map(|t| t.rows.len()).unwrap_or(0),
        Node::Lit { rows, .. } => rows.len(),
        n => n
            .children()
            .iter()
            .map(|c| results[c.index()].as_ref().map(Rel::len).unwrap_or(0))
            .sum(),
    }
}

/// Per-node execution metrics, folded into [`QueryStats`].
#[derive(Debug, Clone, Copy, Default)]
struct NodeMetrics {
    morsels: u32,
    /// Evaluation start on the telemetry clock (for post-hoc spans).
    start_ns: u64,
    elapsed: std::time::Duration,
    /// Scalar or vectorized — which implementation this evaluation took.
    path: ExecPath,
    /// Kernel batches executed (vectorized path only).
    batches: u32,
    /// Plan nodes this evaluation covered: `0` for ordinary nodes, the
    /// group size for pipeline tails (fused or fallback).
    fused_nodes: u32,
    /// Shards this evaluation actually read (sharded base-table scans
    /// only; `shards_total` stays `0` on unsharded tables).
    shards_scanned: u32,
    /// The table's shard count, when the scan hit a sharded table.
    shards_total: u32,
    /// Rows read from sharded base tables (post-pruning).
    shard_rows: u64,
    /// Rows partition pruning skipped without reading.
    shard_pruned: u64,
}

impl NodeMetrics {
    /// Record that the node ran vectorized, executing `batches` batches.
    fn vectorized(&mut self, batches: u32) {
        self.path = ExecPath::Vectorized;
        self.batches += batches;
    }
}

/// Result slot a worker fills for one heavyweight wave member.
type WaveSlot = Mutex<Option<Result<(Rel, NodeMetrics), EngineError>>>;

/// Where a pipeline chain's input comes from.
#[derive(Debug, Clone, Copy)]
enum PipeInput {
    /// A single-consumer `TableRef`/`Lit` absorbed into the group,
    /// evaluated inline by the tail (zero-copy either way).
    Scan(NodeId),
    /// An ordinary node evaluated by an earlier wave.
    Node(NodeId),
}

/// A maximal fusible chain, grouped structurally at dispatch time and
/// evaluated by [`eval_pipeline`] under its tail's wave slot. Grouping is
/// *advisory*: if any member's expression fails to lower to a kernel at
/// evaluation time, the tail falls back to node-at-a-time execution of
/// exactly the same members — results never depend on grouping.
#[derive(Debug)]
struct PipelineSpec {
    input: PipeInput,
    /// Chain operators (Select/Project/Compute/Attach) bottom-up; each is
    /// the sole consumer of its predecessor. When the group's tail is
    /// itself a chain op, it is the last entry here and `sink` is `None`.
    mids: Vec<NodeId>,
    /// A sink tail (window / join probe / group-by / serialize) consuming
    /// the chain's output.
    sink: Option<NodeId>,
    /// Total plan nodes in the group (scan + mids + sink).
    members: u32,
}

/// Is this node a fusible chain member?
fn is_chain_op(n: &Node) -> bool {
    matches!(
        n,
        Node::Select { .. } | Node::Project { .. } | Node::Compute { .. } | Node::Attach { .. }
    )
}

/// The input a pipeline chain extends through: the lone input of chain
/// ops and sinks, the probe (left) side of hash joins. `None` for
/// operators that break pipelines (build sides, set ops, cross/theta
/// joins, leaves).
fn chain_child(n: &Node) -> Option<NodeId> {
    match n {
        Node::Select { input, .. }
        | Node::Project { input, .. }
        | Node::Compute { input, .. }
        | Node::Attach { input, .. }
        | Node::RowNum { input, .. }
        | Node::RowRank { input, .. }
        | Node::DenseRank { input, .. }
        | Node::GroupBy { input, .. }
        | Node::Serialize { input, .. } => Some(*input),
        Node::EquiJoin { left, .. } | Node::SemiJoin { left, .. } | Node::AntiJoin { left, .. } => {
            Some(*left)
        }
        _ => None,
    }
}

/// Greedily group maximal fusible chains, keyed by tail node index.
/// Walking tails top-down (descending index) gives each chain to its
/// topmost consumer; a member must have exactly one consumer across all
/// roots so absorbing it cannot recompute or starve a shared sub-plan.
fn form_pipelines(plan: &Plan, roots: &[NodeId], needed: &[bool]) -> HashMap<usize, PipelineSpec> {
    let mut consumers = vec![0u32; plan.len()];
    for (idx, &need) in needed.iter().enumerate() {
        if !need {
            continue;
        }
        for c in plan.node(NodeId(idx as u32)).children() {
            consumers[c.index()] += 1;
        }
    }
    for r in roots {
        consumers[r.index()] += 1;
    }
    let mut grouped = vec![false; plan.len()];
    let mut pipelines: HashMap<usize, PipelineSpec> = HashMap::new();
    for idx in (0..plan.len()).rev() {
        if !needed[idx] || grouped[idx] {
            continue;
        }
        let id = NodeId(idx as u32);
        let node = plan.node(id);
        let Some(mut cur) = chain_child(node) else {
            continue;
        };
        let sink = (!is_chain_op(node)).then_some(id);
        let mut mids: Vec<NodeId> = Vec::new();
        if sink.is_none() {
            mids.push(id);
        }
        while is_chain_op(plan.node(cur)) && consumers[cur.index()] == 1 && !grouped[cur.index()] {
            mids.push(cur);
            cur = chain_child(plan.node(cur)).expect("chain ops have an input");
        }
        let absorb_scan = matches!(plan.node(cur), Node::TableRef { .. } | Node::Lit { .. })
            && consumers[cur.index()] == 1
            && !grouped[cur.index()];
        mids.reverse();
        // a group must contain at least one chain op and two members —
        // a lone sink over its input is just ordinary evaluation
        let members = mids.len() as u32 + u32::from(sink.is_some()) + u32::from(absorb_scan);
        if mids.is_empty() || members < 2 {
            continue;
        }
        let input = if absorb_scan {
            grouped[cur.index()] = true;
            PipeInput::Scan(cur)
        } else {
            PipeInput::Node(cur)
        };
        for &mid in &mids {
            grouped[mid.index()] = true;
        }
        grouped[idx] = false; // the tail keeps its own wave slot
        pipelines.insert(
            idx,
            PipelineSpec {
                input,
                mids,
                sink,
                members,
            },
        );
    }
    pipelines
}

/// The shard-aware planner pass: which scans can skip shards and which
/// group-bys can run shard-locally. Computed once per dispatch from the
/// plan's *structure* (before anything evaluates); evaluation consults it
/// by node index. Always empty on unsharded databases.
#[derive(Debug, Default)]
struct ShardPlan {
    /// `TableRef` index → shard scan decision, one entry per scan of a
    /// sharded table (pruned or not — `explain_analyze` renders both).
    scans: HashMap<usize, ScanShards>,
    /// `GroupBy` index → shard-local grouping decision.
    groups: HashMap<usize, GroupLocal>,
}

/// Shard decision for one sharded base-table scan.
#[derive(Debug)]
struct ScanShards {
    /// Buffer rows to scan (ascending), when pruning dropped at least one
    /// shard; `None` scans the whole table.
    sel: Option<Vec<u32>>,
    /// The surviving shard when pruning pinned exactly one: the scan
    /// returns the shard's cached dense partition
    /// ([`TableShards::dense`]) instead of a selection vector, so the
    /// batch drivers run over contiguous rows.
    single: Option<u32>,
    scanned: u32,
    total: u32,
    /// Rows the dropped shards hold (skipped without reading).
    pruned_rows: u64,
}

/// A group-by whose keys include the table's shard key: groups are
/// shard-disjoint, so each shard aggregates locally and the outputs
/// concatenate without a cross-shard combine.
#[derive(Debug)]
struct GroupLocal {
    shards: std::sync::Arc<TableShards>,
}

/// Build the [`ShardPlan`] for this dispatch.
///
/// **Pruning** (sound by `ShardHash` preserving `Value` equality): a
/// `Select` whose predicate constrains the shard-key column to a shard
/// subset ([`shards_for_pred`]) restricts its `TableRef`'s scan to those
/// shards' rows — but only when the `Select` is the scan's *sole*
/// consumer, so no other reader of the table sees a reduced relation.
/// The `Select` still evaluates its predicate over the surviving rows;
/// pruning only removes rows the predicate could never accept.
///
/// **Shard-local grouping**: a `GroupBy` runs per-shard when its key
/// columns trace through `Select`/`Project` views (which share the
/// table's buffer and never re-materialise rows) down to a sharded
/// `TableRef` and include the shard-key position. Equal key tuples then
/// agree on the shard key, hence live in one shard — groups never span
/// shards.
fn plan_shards(
    snap: &Snapshot<'_>,
    plan: &Plan,
    roots: &[NodeId],
    needed: &[bool],
    schemas: &[Schema],
) -> ShardPlan {
    let mut sp = ShardPlan::default();
    let mut consumers = vec![0u32; plan.len()];
    for (idx, &need) in needed.iter().enumerate() {
        if !need {
            continue;
        }
        for c in plan.node(NodeId(idx as u32)).children() {
            consumers[c.index()] += 1;
        }
    }
    for r in roots {
        consumers[r.index()] += 1;
    }
    for (idx, &need) in needed.iter().enumerate().take(plan.len()) {
        if !need {
            continue;
        }
        match plan.node(NodeId(idx as u32)) {
            // record every sharded scan (unpruned entries feed explain)
            Node::TableRef { name, .. } => {
                let Some(ts) = snap.table(name).and_then(|t| t.shard.as_ref()) else {
                    continue;
                };
                let total = ts.sels.len() as u32;
                sp.scans.insert(
                    idx,
                    ScanShards {
                        sel: None,
                        single: None,
                        scanned: total,
                        total,
                        pruned_rows: 0,
                    },
                );
            }
            Node::Select { input, pred } => {
                if consumers[input.index()] != 1 {
                    continue;
                }
                let Node::TableRef { name, .. } = plan.node(*input) else {
                    continue;
                };
                let Some(table) = snap.table(name) else {
                    continue;
                };
                let Some(ts) = &table.shard else { continue };
                let Some(key) = &ts.key else { continue };
                // the predicate names the *plan's* columns; TableRef maps
                // them positionally onto the catalog schema
                let Some(kpos) = table.schema.index_of(key) else {
                    continue;
                };
                let (plan_key, _) = &schemas[input.index()].cols()[kpos];
                let s = ts.sels.len();
                let Some(mask) = shards_for_pred(pred, plan_key, s) else {
                    continue;
                };
                let mask = mask & all_shards_mask(s);
                let scanned = mask.count_ones();
                if scanned as usize >= s {
                    continue;
                }
                let (single, sel, surviving) = if scanned == 1 {
                    // the dense fast path needs no selection vector
                    let k = mask.trailing_zeros();
                    (Some(k), None, ts.sels[k as usize].len())
                } else {
                    // multi-shard survivor set: re-sort the shards' buffer
                    // positions so the scan keeps global insert order
                    let mut v: Vec<u32> = (0..s)
                        .filter(|&k| mask >> k & 1 == 1)
                        .flat_map(|k| ts.sels[k].iter().copied())
                        .collect();
                    v.sort_unstable();
                    let n = v.len();
                    (None, Some(v), n)
                };
                let entry = sp.scans.get_mut(&input.index()).expect("scan recorded");
                entry.pruned_rows = ts.shard_of.len() as u64 - surviving as u64;
                entry.scanned = scanned;
                entry.single = single;
                entry.sel = sel;
            }
            Node::GroupBy { input, keys, .. } => {
                if keys.is_empty() {
                    continue;
                }
                let mut names: Vec<ColName> = keys.clone();
                let mut cur = *input;
                let ts = loop {
                    match plan.node(cur) {
                        Node::Select { input, .. } => cur = *input,
                        Node::Project { input, cols } => {
                            // rewrite each key through the rename pairs
                            let mapped = names
                                .iter()
                                .map(|n| {
                                    cols.iter()
                                        .find(|(new, _)| new == n)
                                        .map(|(_, old)| old.clone())
                                })
                                .collect::<Option<Vec<_>>>();
                            match mapped {
                                Some(m) => names = m,
                                None => break None,
                            }
                            cur = *input;
                        }
                        Node::TableRef { name, .. } => {
                            let Some(table) = snap.table(name) else {
                                break None;
                            };
                            let Some(ts) = &table.shard else { break None };
                            let Some(key) = &ts.key else { break None };
                            let Some(kpos) = table.schema.index_of(key) else {
                                break None;
                            };
                            let tschema = &schemas[cur.index()];
                            let hit = names.iter().any(|n| tschema.index_of(n) == Some(kpos));
                            break hit.then(|| ts.clone());
                        }
                        _ => break None,
                    }
                };
                if let Some(ts) = ts {
                    sp.groups.insert(idx, GroupLocal { shards: ts });
                }
            }
            _ => {}
        }
    }
    sp
}

#[allow(clippy::too_many_arguments)]
fn eval_timed(
    snap: &Snapshot<'_>,
    plan: &Plan,
    id: NodeId,
    schemas: &[Schema],
    results: &[Option<Rel>],
    cfg: &ParConfig,
    pipelines: &HashMap<usize, PipelineSpec>,
    shard: &ShardPlan,
) -> Result<(Rel, NodeMetrics), EngineError> {
    let mut m = NodeMetrics {
        start_ns: ferry_telemetry::now_ns(),
        ..NodeMetrics::default()
    };
    let start = Instant::now();
    let rel = match pipelines.get(&id.index()) {
        Some(spec) => eval_pipeline(snap, plan, id, spec, schemas, results, cfg, shard, &mut m),
        None => eval_node(snap, plan, id, schemas, results, cfg, shard, &mut m),
    }?;
    m.elapsed = start.elapsed();
    Ok((rel, m))
}

/// Evaluate a pipeline group under its tail's slot: compile the chain ops
/// into one batch program ([`ChainBuilder`]), stream the input through it
/// morsel-by-morsel, and hand the chain's output straight to the sink.
/// Any refusal along the way (fusion gated off, an expression that does
/// not lower, a chunk variant surprise) falls back to evaluating the same
/// members node-at-a-time — grouping never changes results.
#[allow(clippy::too_many_arguments)]
fn eval_pipeline(
    snap: &Snapshot<'_>,
    plan: &Plan,
    tail: NodeId,
    spec: &PipelineSpec,
    schemas: &[Schema],
    results: &[Option<Rel>],
    cfg: &ParConfig,
    shard: &ShardPlan,
    m: &mut NodeMetrics,
) -> Result<Rel, EngineError> {
    m.fused_nodes = spec.members;
    let input = match spec.input {
        PipeInput::Scan(s) => eval_node(snap, plan, s, schemas, results, cfg, shard, m)?,
        PipeInput::Node(n) => child(results, n).clone(),
    };
    let fused_mid = if cfg.fuse_for(input.len()) {
        match build_chain(plan, &input, &spec.mids, schemas) {
            Some(prog) => stream_chain(&input, &prog, cfg, m)?,
            None => None,
        }
    } else {
        None
    };
    if let Some(mid_rel) = fused_mid {
        let out = match spec.sink {
            Some(sink_id) => {
                // inject the fused chain output as the sink's child
                let mut overlay: Vec<Option<Rel>> = results.to_vec();
                let top = *spec.mids.last().expect("grouped chains have mids");
                overlay[top.index()] = Some(mid_rel);
                eval_node(snap, plan, sink_id, schemas, &overlay, cfg, shard, m)?
            }
            None => mid_rel,
        };
        m.path = ExecPath::Fused;
        return Ok(out);
    }
    // structural grouping was advisory — run the members one at a time
    let mut overlay: Vec<Option<Rel>> = results.to_vec();
    if let PipeInput::Scan(s) = spec.input {
        overlay[s.index()] = Some(input);
    }
    for &mid in &spec.mids {
        let rel = eval_node(snap, plan, mid, schemas, &overlay, cfg, shard, m)?;
        overlay[mid.index()] = Some(rel);
    }
    match spec.sink {
        Some(sink_id) => eval_node(snap, plan, sink_id, schemas, &overlay, cfg, shard, m),
        None => Ok(overlay[tail.index()].clone().expect("tail evaluated")),
    }
}

/// Compile the chain ops into one batch program, or `None` when any
/// member refuses (expression doesn't lower, schema surprise).
fn build_chain(plan: &Plan, input: &Rel, mids: &[NodeId], schemas: &[Schema]) -> Option<ChainProg> {
    let mut b = ChainBuilder::new(&input.schema);
    for &id in mids {
        let out_schema = &schemas[id.index()];
        let ok = match plan.node(id) {
            Node::Select { pred, .. } => b.filter(pred),
            Node::Compute { expr, .. } => b.compute(expr, out_schema),
            Node::Project { cols, .. } => {
                let idxs = cols
                    .iter()
                    .map(|(_, old)| b.schema().index_of(old))
                    .collect::<Option<Vec<_>>>()?;
                b.project(&idxs, out_schema);
                true
            }
            Node::Attach { value, .. } => {
                b.attach(value, out_schema);
                true
            }
            _ => false,
        };
        if !ok {
            return None;
        }
    }
    Some(b.finish())
}

/// Stream `input` through the chain program and materialise its output.
/// `Ok(None)` when binding fails (a chunk variant contradicts the
/// schema) — the caller falls back to node-at-a-time.
fn stream_chain(
    input: &Rel,
    prog: &ChainProg,
    cfg: &ParConfig,
    m: &mut NodeMetrics,
) -> Result<Option<Rel>, EngineError> {
    let out_schema = prog.out_schema().clone();
    // no kernels, pure-input output: the chain is just a column remap
    if prog.stage_count() == 0 {
        if let Some(cols) = prog.pure_input_out() {
            let raw: Vec<u32> = cols
                .iter()
                .map(|&c| input.raw_col(c as usize) as u32)
                .collect();
            return Ok(Some(input.with_cols(out_schema, raw)));
        }
    }
    let Some(bound) = prog.bind(input) else {
        return Ok(None);
    };
    let (chunks, morsels) = par::map_morsels(cfg, input.len(), |range| {
        bound.run_range(range).map(|c| vec![c])
    })?;
    m.morsels += morsels;
    m.batches += chunks.iter().map(|c| c.batches).sum::<u32>();
    // pure-input output: survivors become a selection vector + remap over
    // the input's own buffer — no row materialises
    if let Some(cols) = prog.pure_input_out() {
        let mut sel: Vec<u32> = Vec::with_capacity(chunks.iter().map(|c| c.rows.len()).sum());
        for c in &chunks {
            sel.extend_from_slice(&c.rows);
        }
        let raw: Vec<u32> = cols
            .iter()
            .map(|&c| input.raw_col(c as usize) as u32)
            .collect();
        return Ok(Some(input.with_sel(sel).with_cols(out_schema, raw)));
    }
    // carries and constants create new cells: build the output rows
    let total: usize = chunks.iter().map(|c| c.rows.len()).sum();
    let width = out_schema.cols().len();
    let buf = input.buffer();
    let mut rows: Vec<Row> = Vec::with_capacity(total);
    for chunk in &chunks {
        for p in 0..chunk.rows.len() {
            let raw = chunk.rows[p] as usize;
            let mut row: Row = Vec::with_capacity(width);
            for src in prog.out() {
                row.push(match src {
                    VirtSrc::Input(c) => buf[raw][input.raw_col(*c as usize)].clone(),
                    VirtSrc::Carry(k) => chunk.carries[*k as usize].value(p),
                    VirtSrc::Const(v) => v.clone(),
                });
            }
            rows.push(row);
        }
    }
    let out = Rel::new(out_schema, rows);
    // seed the new buffer's chunk cache from what the chain already holds
    // in columnar form, so a sink's typed path skips the transposition
    let mut all_rows: Vec<u32> = Vec::with_capacity(total);
    for c in &chunks {
        all_rows.extend_from_slice(&c.rows);
    }
    for (j, src) in prog.out().iter().enumerate() {
        match src {
            VirtSrc::Input(c) => {
                if let Some(chunk) = input.cached_col(input.raw_col(*c as usize)) {
                    out.seed_chunk(j, std::sync::Arc::new(chunk.gather(&all_rows)));
                }
            }
            VirtSrc::Carry(k) => {
                if let Some(cv) = carries_to_colvec(&chunks, *k as usize) {
                    out.seed_chunk(j, std::sync::Arc::new(cv));
                }
            }
            VirtSrc::Const(_) => {}
        }
    }
    Ok(Some(out))
}

/// Concatenate carried column `k` of every morsel chunk into one typed
/// [`ColVec`] (strings re-encode into a fresh dictionary). `None` for
/// `Val` registers — `Other` chunks are cheap to rebuild and rarely hit.
fn carries_to_colvec(chunks: &[StreamChunk], k: usize) -> Option<ColVec> {
    match &chunks.first()?.carries[k] {
        Reg::I64(_) => {
            let mut out = Vec::new();
            for c in chunks {
                out.extend_from_slice(match &c.carries[k] {
                    Reg::I64(v) => v,
                    _ => return None,
                });
            }
            Some(ColVec::Int(out))
        }
        Reg::U64(_) => {
            let mut out = Vec::new();
            for c in chunks {
                out.extend_from_slice(match &c.carries[k] {
                    Reg::U64(v) => v,
                    _ => return None,
                });
            }
            Some(ColVec::Nat(out))
        }
        Reg::F64(_) => {
            let mut out = Vec::new();
            for c in chunks {
                out.extend_from_slice(match &c.carries[k] {
                    Reg::F64(v) => v,
                    _ => return None,
                });
            }
            Some(ColVec::Dbl(out))
        }
        Reg::Bool(_) => {
            let mut out = Vec::new();
            for c in chunks {
                out.extend_from_slice(match &c.carries[k] {
                    Reg::Bool(v) => v,
                    _ => return None,
                });
            }
            Some(ColVec::Bool(out))
        }
        Reg::Str(_) => {
            let mut codes = Vec::new();
            let mut dict: Vec<std::sync::Arc<str>> = Vec::new();
            let mut seen: HashMap<std::sync::Arc<str>, u32> = HashMap::new();
            for c in chunks {
                let Reg::Str(v) = &c.carries[k] else {
                    return None;
                };
                for s in v {
                    let code = *seen.entry(s.clone()).or_insert_with(|| {
                        dict.push(s.clone());
                        (dict.len() - 1) as u32
                    });
                    codes.push(code);
                }
            }
            Some(ColVec::Str { codes, dict })
        }
        Reg::Val(_) => None,
    }
}

fn child(results: &[Option<Rel>], id: NodeId) -> &Rel {
    results[id.index()]
        .as_ref()
        .expect("child evaluated before parent")
}

fn no_such_col(schema: &Schema, col: &str) -> EngineError {
    EngineError::NoSuchColumn {
        col: col.to_string(),
        schema: schema.to_string(),
    }
}

/// Resolve an order specification to visible column indices; a missing
/// column is a malformed plan, reported — not panicked — as
/// [`EngineError::NoSuchColumn`].
fn resolve_sort(schema: &Schema, order: &[SortSpec]) -> Result<Vec<(usize, Dir)>, EngineError> {
    order
        .iter()
        .map(|(c, d)| {
            schema
                .index_of(c)
                .map(|i| (i, *d))
                .ok_or_else(|| no_such_col(schema, c))
        })
        .collect()
}

/// Resolve column names to visible indices (see [`resolve_sort`]).
fn resolve_cols(schema: &Schema, cols: &[ColName]) -> Result<Vec<usize>, EngineError> {
    cols.iter()
        .map(|c| schema.index_of(c).ok_or_else(|| no_such_col(schema, c)))
        .collect()
}

/// Bind `expr` against the relation's visible schema, then rewrite the
/// column slots through the view's remap so the bound form evaluates
/// directly against **buffer** rows — predicates and computed columns
/// never force a view to materialise.
fn bind_rel(expr: &Expr, rel: &Rel) -> Result<Bound, EngineError> {
    let b = bind(expr, &rel.schema)?;
    Ok(match rel.col_map() {
        None => b,
        Some(map) => remap_bound(b, map),
    })
}

fn remap_bound(b: Bound, map: &[u32]) -> Bound {
    match b {
        Bound::Col(i) => Bound::Col(map[i] as usize),
        Bound::Const(v) => Bound::Const(v),
        Bound::Bin(op, l, r) => Bound::Bin(
            op,
            Box::new(remap_bound(*l, map)),
            Box::new(remap_bound(*r, map)),
        ),
        Bound::Un(op, e) => Bound::Un(op, Box::new(remap_bound(*e, map))),
        Bound::Case(c, t, e) => Bound::Case(
            Box::new(remap_bound(*c, map)),
            Box::new(remap_bound(*t, map)),
            Box::new(remap_bound(*e, map)),
        ),
        Bound::Cast(ty, e) => Bound::Cast(ty, Box::new(remap_bound(*e, map))),
    }
}

/// Compare two visible rows on the given `(column, direction)` spec.
fn cmp_vis(rel: &Rel, a: u32, b: u32, spec: &[(usize, Dir)]) -> Ordering {
    for &(c, d) in spec {
        let o = rel.cell(a as usize, c).cmp(rel.cell(b as usize, c));
        let o = match d {
            Dir::Asc => o,
            Dir::Desc => o.reverse(),
        };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Visible cells of row `i` at columns `idxs`, borrowed (hash/probe keys).
fn key_ref<'a>(rel: &'a Rel, i: usize, idxs: &[usize]) -> Vec<&'a Value> {
    idxs.iter().map(|&c| rel.cell(i, c)).collect()
}

/// One `u64` equality code per **visible** row of `rel` for the given
/// chunk (a full-buffer column). `None` when the chunk's type does not
/// admit codes — `Other` always, strings when `cross_buffer` comparability
/// is required (dictionary codes are per-buffer). See [`ColVec::eq_code`]
/// for the encoding; this is its batch form, one tight typed loop instead
/// of a per-cell variant match.
fn chunk_codes(rel: &Rel, chunk: &ColVec, cross_buffer: bool) -> Option<Vec<u64>> {
    let n = rel.len();
    let mut out = Vec::with_capacity(n);
    match chunk {
        ColVec::Int(v) => out.extend((0..n).map(|i| v[rel.raw_row(i)] as u64)),
        ColVec::Nat(v) => out.extend((0..n).map(|i| v[rel.raw_row(i)])),
        // total_cmp equality coincides with bit equality
        ColVec::Dbl(v) => out.extend((0..n).map(|i| v[rel.raw_row(i)].to_bits())),
        ColVec::Bool(v) => out.extend((0..n).map(|i| v[rel.raw_row(i)] as u64)),
        ColVec::Str { codes, .. } if !cross_buffer => {
            out.extend((0..n).map(|i| codes[rel.raw_row(i)] as u64));
        }
        _ => return None,
    }
    Some(out)
}

/// Row-major typed key codes for columns `cols` of `rel` — one
/// `Vec<u64>` per visible row — or `None` when the config keeps the node
/// scalar or any column's chunk does not admit codes.
fn typed_codes(
    rel: &Rel,
    cols: &[usize],
    cfg: &ParConfig,
    cross_buffer: bool,
) -> Option<Vec<Vec<u64>>> {
    if !cfg.vectorize(rel.len()) || cols.is_empty() {
        return None;
    }
    let code_cols: Vec<Vec<u64>> = cols
        .iter()
        .map(|&c| chunk_codes(rel, &rel.typed_col(rel.raw_col(c)), cross_buffer))
        .collect::<Option<_>>()?;
    Some(
        (0..rel.len())
            .map(|i| code_cols.iter().map(|col| col[i]).collect())
            .collect(),
    )
}

/// The typed chunks for a single-column equi-join key pair, when both
/// sides admit **cross-buffer** codes of the same storage variant (so
/// code equality coincides with `Value` equality across the two buffers).
fn join_codes(
    l: &Rel,
    r: &Rel,
    li: &[usize],
    ri: &[usize],
    cfg: &ParConfig,
) -> Option<(Vec<u64>, Vec<u64>)> {
    if li.len() != 1 || !cfg.vectorize(l.len()) {
        return None;
    }
    let lch = l.typed_col(l.raw_col(li[0]));
    let rch = r.typed_col(r.raw_col(ri[0]));
    // different storage variants must never compare equal (scalar `Value`
    // ordering separates domains); codes would collide, so bail
    if std::mem::discriminant(lch.as_ref()) != std::mem::discriminant(rch.as_ref()) {
        return None;
    }
    Some((chunk_codes(l, &lch, true)?, chunk_codes(r, &rch, true)?))
}

/// Multiply-shift hasher for `u64` eq-code keys. The default SipHash is
/// the measurable hot path of code-keyed joins, groupings and dedups;
/// the keys here are machine-word equality codes already, so one
/// Fibonacci multiply gives hashbrown enough spread. Not DoS-hardened —
/// use only for code-keyed maps, never for `Value`/string keys.
#[derive(Clone, Copy, Default)]
struct CodeHash;

impl std::hash::BuildHasher for CodeHash {
    type Hasher = CodeHasher;
    fn build_hasher(&self) -> CodeHasher {
        CodeHasher(0)
    }
}

struct CodeHasher(u64);

impl std::hash::Hasher for CodeHasher {
    fn write(&mut self, bytes: &[u8]) {
        // generic fallback (length prefixes of composite keys)
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
    fn finish(&self) -> u64 {
        // fold the multiply's well-mixed top bits into the bucket-index
        // low bits
        self.0 ^ (self.0 >> 32)
    }
}

/// Order-preserving `u64` sort codes for a `(column, direction)` spec —
/// one code column per sort key. Comparing codes column-by-column (then
/// the row index) reproduces `cmp_vis` plus the index tiebreak *exactly*:
/// `Value::cmp` orders doubles by `total_cmp`, whose order the sign-fold
/// bit transform below preserves bit-for-bit, and strings by dictionary
/// **rank** (chunk dictionaries are first-occurrence order, so they are
/// remapped through a rank table sorted on the strings themselves).
/// `Desc` keys are bitwise-complemented. `None` when the config keeps the
/// node scalar or any column's storage does not admit codes.
fn sort_codes(rel: &Rel, spec: &[(usize, Dir)], cfg: &ParConfig) -> Option<Vec<Vec<u64>>> {
    if spec.is_empty() || !cfg.vectorize(rel.len()) {
        return None;
    }
    let n = rel.len();
    let mut out = Vec::with_capacity(spec.len());
    for &(c, d) in spec {
        let chunk = rel.typed_col(rel.raw_col(c));
        let mut col: Vec<u64> = Vec::with_capacity(n);
        match chunk.as_ref() {
            ColVec::Int(v) => {
                col.extend((0..n).map(|i| (v[rel.raw_row(i)] as u64) ^ (1 << 63)));
            }
            ColVec::Nat(v) => col.extend((0..n).map(|i| v[rel.raw_row(i)])),
            ColVec::Bool(v) => col.extend((0..n).map(|i| v[rel.raw_row(i)] as u64)),
            ColVec::Dbl(v) => col.extend((0..n).map(|i| {
                let b = v[rel.raw_row(i)].to_bits();
                // total_cmp order: negatives reversed below positives
                if b >> 63 == 1 {
                    !b
                } else {
                    b | (1 << 63)
                }
            })),
            ColVec::Str { codes, dict } => {
                let mut order: Vec<u32> = (0..dict.len() as u32).collect();
                order.sort_unstable_by(|&a, &b| dict[a as usize].cmp(&dict[b as usize]));
                let mut rank = vec![0u64; dict.len()];
                for (r, &d) in order.iter().enumerate() {
                    rank[d as usize] = r as u64;
                }
                col.extend((0..n).map(|i| rank[codes[rel.raw_row(i)] as usize]));
            }
            _ => return None,
        }
        if matches!(d, Dir::Desc) {
            for c in col.iter_mut() {
                *c = !*c;
            }
        }
        out.push(col);
    }
    Some(out)
}

/// Sort visible row indices by pre-computed code columns, original index
/// as the final tiebreak (the typed twin of the `cmp_vis` comparators).
fn sort_by_codes(cfg: &ParConfig, n: usize, cols: &[Vec<u64>]) -> (Vec<u32>, u32) {
    par::sort_indices(cfg, n, |a, b| {
        for col in cols {
            match col[a as usize].cmp(&col[b as usize]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        a.cmp(&b)
    })
}

#[allow(clippy::too_many_arguments)]
fn eval_node(
    snap: &Snapshot<'_>,
    plan: &Plan,
    id: NodeId,
    schemas: &[Schema],
    results: &[Option<Rel>],
    cfg: &ParConfig,
    shard: &ShardPlan,
    m: &mut NodeMetrics,
) -> Result<Rel, EngineError> {
    let out_schema = schemas[id.index()].clone();
    match plan.node(id) {
        Node::TableRef { name, cols, .. } => {
            // base tables resolve in the pinned catalog; a miss falls
            // back to the system tables (`ferry.*` — a live snapshot of
            // telemetry/catalog/storage state materialised per scan)
            let sys_owned;
            let table = match snap.table(name) {
                Some(t) => t,
                None => match snap.system_table(name) {
                    Some(t) => {
                        sys_owned = t;
                        &sys_owned
                    }
                    None => return Err(EngineError::NoSuchTable(name.clone())),
                },
            };
            if table.schema.len() != cols.len() {
                return Err(EngineError::TableMismatch {
                    table: name.clone(),
                    detail: format!(
                        "plan expects {} columns, table has {}",
                        cols.len(),
                        table.schema.len()
                    ),
                });
            }
            for ((plan_col, plan_ty), (cat_col, cat_ty)) in cols.iter().zip(table.schema.cols()) {
                if plan_ty != cat_ty {
                    return Err(EngineError::TableMismatch {
                        table: name.clone(),
                        detail: format!("column {cat_col} is {cat_ty}, plan column {plan_col} expects {plan_ty}"),
                    });
                }
            }
            let Some(ss) = shard.scans.get(&id.index()) else {
                // zero-copy scan: the result shares the catalog's buffer
                return Ok(Rel::from_shared(out_schema, table.rows.clone()));
            };
            m.shards_scanned = ss.scanned;
            m.shards_total = ss.total;
            if let Some(k) = ss.single {
                // pruned to one shard: scan its cached dense partition —
                // contiguous rows, shared (and transposed) across queries
                let ts = table.shard.as_ref().expect("sharded scan planned");
                let part = ts.dense(k as usize, &table.rows, table.schema.len());
                m.shard_rows += part.rows().len() as u64;
                m.shard_pruned += ss.pruned_rows;
                return Ok(Rel::from_shared(out_schema, part));
            }
            let out = Rel::from_shared(out_schema, table.rows.clone());
            match &ss.sel {
                // pruned scan: a selection vector over the table's own
                // buffer listing only the surviving shards' rows — the
                // dropped shards are never touched
                Some(sel) => {
                    m.shard_rows += sel.len() as u64;
                    m.shard_pruned += ss.pruned_rows;
                    Ok(out.with_sel(sel.clone()))
                }
                None => {
                    m.shard_rows += out.len() as u64;
                    Ok(out)
                }
            }
        }
        // zero-copy: every execution shares the plan's literal buffer
        Node::Lit { rows, .. } => Ok(Rel::from_shared(out_schema, rows.clone())),
        Node::Attach { input, value, .. } => {
            let rel = child(results, *input);
            let (rows, morsels) = par::map_morsels(cfg, rel.len(), |range| {
                let mut out = Vec::with_capacity(range.len());
                for i in range {
                    let mut r = rel.owned_row_with(i, 1);
                    r.push(value.clone());
                    out.push(r);
                }
                Ok::<_, EngineError>(out)
            })?;
            m.morsels += morsels;
            Ok(Rel::new(out_schema, rows))
        }
        Node::Project { input, cols } => {
            // pure column remap — no row is touched
            let rel = child(results, *input);
            let raw: Vec<u32> = cols
                .iter()
                .map(|(_, old)| {
                    rel.schema
                        .index_of(old)
                        .map(|c| rel.raw_col(c) as u32)
                        .ok_or_else(|| no_such_col(&rel.schema, old))
                })
                .collect::<Result<_, _>>()?;
            Ok(rel.with_cols(out_schema, raw))
        }
        Node::Compute { input, expr, .. } => {
            let rel = child(results, *input);
            if let Some(prep) = vec_eval::prepare(expr, rel, cfg) {
                // vectorized: kernel-evaluate the expression per batch,
                // then assemble output rows
                let batches = AtomicU32::new(0);
                let (rows, morsels) = par::map_morsels(cfg, rel.len(), |range| {
                    let (vals, b) = prep.values_range(rel, range.clone())?;
                    batches.fetch_add(b, AtOrd::Relaxed);
                    let mut out = Vec::with_capacity(range.len());
                    for (i, v) in range.zip(vals) {
                        let mut r = rel.owned_row_with(i, 1);
                        r.push(v);
                        out.push(r);
                    }
                    Ok::<_, EngineError>(out)
                })?;
                m.morsels += morsels;
                m.vectorized(batches.into_inner());
                return Ok(Rel::new(out_schema, rows));
            }
            let bound = bind_rel(expr, rel)?;
            let buf = rel.buffer();
            let (rows, morsels) = par::map_morsels(cfg, rel.len(), |range| {
                let mut out = Vec::with_capacity(range.len());
                for i in range {
                    let v = eval(&bound, &buf[rel.raw_row(i)])?;
                    let mut r = rel.owned_row_with(i, 1);
                    r.push(v);
                    out.push(r);
                }
                Ok::<_, EngineError>(out)
            })?;
            m.morsels += morsels;
            Ok(Rel::new(out_schema, rows))
        }
        Node::Select { input, pred } => {
            // selection vector over the shared buffer — rows are not copied
            let rel = child(results, *input);
            if let Some(prep) = vec_eval::prepare(pred, rel, cfg) {
                // fused filter: the predicate kernel writes straight into
                // the selection vector, no boolean column materialises
                let batches = AtomicU32::new(0);
                let (keep, morsels) = par::map_morsels(cfg, rel.len(), |range| {
                    let (keep, b) = prep.filter_range(rel, range)?;
                    batches.fetch_add(b, AtOrd::Relaxed);
                    Ok::<_, EngineError>(keep)
                })?;
                m.morsels += morsels;
                m.vectorized(batches.into_inner());
                return Ok(rel.with_sel(keep).with_schema(out_schema));
            }
            let bound = bind_rel(pred, rel)?;
            let buf = rel.buffer();
            let (keep, morsels) = par::map_morsels(cfg, rel.len(), |range| {
                let mut keep = Vec::new();
                for i in range {
                    let raw = rel.raw_row(i);
                    if eval(&bound, &buf[raw])? == Value::Bool(true) {
                        keep.push(raw as u32);
                    }
                }
                Ok::<_, EngineError>(keep)
            })?;
            m.morsels += morsels;
            Ok(rel.with_sel(keep).with_schema(out_schema))
        }
        Node::Distinct { input } => {
            // pass-through view keeping the first occurrence of each row
            let rel = child(results, *input);
            let w = rel.width();
            let all: Vec<usize> = (0..w).collect();
            // vectorized: dedup on typed eq-codes (u64 per cell; dictionary
            // codes for strings — valid because all rows share one buffer)
            // instead of hashing `Value` cells
            if w == 1 && cfg.vectorize(rel.len()) {
                // single column: flat u64 keys, no per-row allocation
                if let Some(codes) = chunk_codes(rel, &rel.typed_col(rel.raw_col(0)), false) {
                    let mut seen: HashSet<u64, CodeHash> =
                        HashSet::with_capacity_and_hasher(rel.len(), CodeHash);
                    let mut keep = Vec::new();
                    for (i, &code) in codes.iter().enumerate() {
                        if seen.insert(code) {
                            keep.push(rel.raw_row(i) as u32);
                        }
                    }
                    m.vectorized(rel.len().div_ceil(BATCH_ROWS) as u32);
                    return Ok(rel.with_sel(keep).with_schema(out_schema));
                }
            } else if let Some(codes) = typed_codes(rel, &all, cfg, false) {
                let mut seen: HashMap<Vec<u64>, (), CodeHash> =
                    HashMap::with_capacity_and_hasher(rel.len(), CodeHash);
                let mut keep = Vec::new();
                for (i, key) in codes.into_iter().enumerate() {
                    if seen.insert(key, ()).is_none() {
                        keep.push(rel.raw_row(i) as u32);
                    }
                }
                m.vectorized(rel.len().div_ceil(BATCH_ROWS) as u32);
                return Ok(rel.with_sel(keep).with_schema(out_schema));
            }
            let mut seen: HashMap<Vec<&Value>, ()> = HashMap::with_capacity(rel.len());
            let mut keep = Vec::new();
            for i in 0..rel.len() {
                if seen.insert(key_ref(rel, i, &all), ()).is_none() {
                    keep.push(rel.raw_row(i) as u32);
                }
            }
            Ok(rel.with_sel(keep).with_schema(out_schema))
        }
        Node::UnionAll { left, right } => {
            let l = child(results, *left);
            let r = child(results, *right);
            if r.is_empty() {
                return Ok(l.with_schema(out_schema));
            }
            if l.is_empty() {
                return Ok(r.with_schema(out_schema));
            }
            let mut rows = Vec::with_capacity(l.len() + r.len());
            for i in 0..l.len() {
                rows.push(l.owned_row(i));
            }
            for i in 0..r.len() {
                rows.push(r.owned_row(i));
            }
            Ok(Rel::new(out_schema, rows))
        }
        Node::Difference { left, right } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let w = l.width();
            let all: Vec<usize> = (0..w).collect();
            let exclude: HashMap<Vec<&Value>, ()> =
                (0..r.len()).map(|j| (key_ref(r, j, &all), ())).collect();
            let mut seen: HashMap<Vec<&Value>, ()> = HashMap::new();
            let mut keep = Vec::new();
            for i in 0..l.len() {
                let key = key_ref(l, i, &all);
                if !exclude.contains_key(&key) && seen.insert(key, ()).is_none() {
                    keep.push(l.raw_row(i) as u32);
                }
            }
            Ok(l.with_sel(keep).with_schema(out_schema))
        }
        Node::CrossJoin { left, right } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let rw = r.width();
            let (rows, morsels) = par::map_morsels(cfg, l.len(), |range| {
                let mut out = Vec::with_capacity(range.len() * r.len());
                for i in range {
                    for j in 0..r.len() {
                        let mut row = l.owned_row_with(i, rw);
                        r.extend_row(j, &mut row);
                        out.push(row);
                    }
                }
                Ok::<_, EngineError>(out)
            })?;
            m.morsels += morsels;
            Ok(Rel::new(out_schema, rows))
        }
        Node::EquiJoin { left, right, on } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let li = resolve_cols(&l.schema, &on.left)?;
            let ri = resolve_cols(&r.schema, &on.right)?;
            // typed probe: single-column keys over cross-buffer u64 codes
            // hash and compare machine words instead of `Value` cells
            if let Some((lcodes, rcodes)) = join_codes(l, r, &li, &ri, cfg) {
                // flat-chain index: one map entry per distinct key plus a
                // `next` link per build row — no per-key `Vec` allocations.
                // Built in reverse so each chain links ascending build rows
                // and the probe emits matches in the same order the nested
                // `Vec<u32>` index would.
                let mut head: HashMap<u64, u32, CodeHash> =
                    HashMap::with_capacity_and_hasher(r.len(), CodeHash);
                let mut next: Vec<u32> = vec![u32::MAX; r.len()];
                for j in (0..rcodes.len()).rev() {
                    let slot = head.entry(rcodes[j]).or_insert(u32::MAX);
                    next[j] = *slot;
                    *slot = j as u32;
                }
                let rw = r.width();
                let (rows, morsels) = par::map_morsels(cfg, l.len(), |range| {
                    let mut out = Vec::new();
                    for i in range {
                        let mut j = head.get(&lcodes[i]).copied().unwrap_or(u32::MAX);
                        while j != u32::MAX {
                            let mut row = l.owned_row_with(i, rw);
                            r.extend_row(j as usize, &mut row);
                            out.push(row);
                            j = next[j as usize];
                        }
                    }
                    Ok::<_, EngineError>(out)
                })?;
                m.morsels += morsels;
                m.vectorized(l.len().div_ceil(BATCH_ROWS) as u32);
                return Ok(Rel::new(out_schema, rows));
            }
            // scalar hash join: build on the right, probe with the left
            let mut index: HashMap<Vec<&Value>, Vec<u32>> = HashMap::with_capacity(r.len());
            for j in 0..r.len() {
                index.entry(key_ref(r, j, &ri)).or_default().push(j as u32);
            }
            let rw = r.width();
            let (rows, morsels) = par::map_morsels(cfg, l.len(), |range| {
                let mut out = Vec::new();
                for i in range {
                    if let Some(matches) = index.get(&key_ref(l, i, &li)) {
                        for &j in matches {
                            let mut row = l.owned_row_with(i, rw);
                            r.extend_row(j as usize, &mut row);
                            out.push(row);
                        }
                    }
                }
                Ok::<_, EngineError>(out)
            })?;
            m.morsels += morsels;
            Ok(Rel::new(out_schema, rows))
        }
        Node::SemiJoin { left, right, on } | Node::AntiJoin { left, right, on } => {
            let anti = matches!(plan.node(id), Node::AntiJoin { .. });
            let l = child(results, *left);
            let r = child(results, *right);
            let li = resolve_cols(&l.schema, &on.left)?;
            let ri = resolve_cols(&r.schema, &on.right)?;
            // typed membership probe (see EquiJoin)
            if let Some((lcodes, rcodes)) = join_codes(l, r, &li, &ri, cfg) {
                let keys: HashSet<u64, CodeHash> = rcodes.into_iter().collect();
                let (keep, morsels) = par::map_morsels(cfg, l.len(), |range| {
                    let mut keep = Vec::new();
                    for i in range {
                        if keys.contains(&lcodes[i]) != anti {
                            keep.push(l.raw_row(i) as u32);
                        }
                    }
                    Ok::<_, EngineError>(keep)
                })?;
                m.morsels += morsels;
                m.vectorized(l.len().div_ceil(BATCH_ROWS) as u32);
                return Ok(l.with_sel(keep).with_schema(out_schema));
            }
            let keys: HashMap<Vec<&Value>, ()> =
                (0..r.len()).map(|j| (key_ref(r, j, &ri), ())).collect();
            // the output is a selection vector over the left input
            let (keep, morsels) = par::map_morsels(cfg, l.len(), |range| {
                let mut keep = Vec::new();
                for i in range {
                    if keys.contains_key(&key_ref(l, i, &li)) != anti {
                        keep.push(l.raw_row(i) as u32);
                    }
                }
                Ok::<_, EngineError>(keep)
            })?;
            m.morsels += morsels;
            Ok(l.with_sel(keep).with_schema(out_schema))
        }
        Node::ThetaJoin { left, right, pred } => {
            let l = child(results, *left);
            let r = child(results, *right);
            let joint = l.schema.concat(&r.schema);
            let bound = bind(pred, &joint)?;
            let rw = r.width();
            let (rows, morsels) = par::map_morsels(cfg, l.len(), |range| {
                let mut out = Vec::new();
                for i in range {
                    for j in 0..r.len() {
                        let mut row = l.owned_row_with(i, rw);
                        r.extend_row(j, &mut row);
                        if eval(&bound, &row)? == Value::Bool(true) {
                            out.push(row);
                        }
                    }
                }
                Ok::<_, EngineError>(out)
            })?;
            m.morsels += morsels;
            Ok(Rel::new(out_schema, rows))
        }
        Node::RowNum {
            input, part, order, ..
        } => {
            let rel = child(results, *input);
            windowed(rel, part, order, out_schema, WindowKind::RowNum, cfg, m)
        }
        Node::RowRank { input, order, .. } => {
            let rel = child(results, *input);
            windowed(rel, &[], order, out_schema, WindowKind::Rank, cfg, m)
        }
        Node::DenseRank {
            input, part, order, ..
        } => {
            let rel = child(results, *input);
            windowed(rel, part, order, out_schema, WindowKind::DenseRank, cfg, m)
        }
        Node::GroupBy { input, keys, aggs } => {
            let rel = child(results, *input);
            let ki = resolve_cols(&rel.schema, keys)?;
            let ai: Vec<Option<usize>> = aggs
                .iter()
                .map(|a| {
                    a.input
                        .as_ref()
                        .map(|c| {
                            rel.schema
                                .index_of(c)
                                .ok_or_else(|| no_such_col(&rel.schema, c))
                        })
                        .transpose()
                })
                .collect::<Result<_, _>>()?;
            // shard-local grouping: keys include the shard key, so groups
            // never span shards — aggregate each shard independently.
            // Worth it only when the parts actually run concurrently:
            // serially, partitioning + per-part dispatch + the merge is
            // pure overhead on top of the same aggregation work.
            if cfg.threads > 1 {
                if let Some(gl) = shard.groups.get(&id.index()) {
                    if let Some(out) =
                        group_by_sharded(rel, &ki, aggs, &ai, &out_schema, cfg, &gl.shards, m)
                    {
                        return Ok(out);
                    }
                }
            }
            if let Some((out, _firsts)) = group_by_typed(rel, &ki, aggs, &ai, &out_schema, cfg)? {
                m.vectorized(rel.len().div_ceil(BATCH_ROWS) as u32);
                return Ok(out);
            }
            // scalar: group rows by key, first-occurrence order
            let (rows, _firsts) = group_by_scalar(rel, &ki, aggs, &ai)?;
            Ok(Rel::new(out_schema, rows))
        }
        Node::Serialize { input, order, cols } => {
            // order + projection as a pure view: sorted selection vector
            // composed with a column remap — the bundle's result rows are
            // the input's own buffer cells
            let rel = child(results, *input);
            let spec = resolve_sort(&rel.schema, order)?;
            // typed sort codes when the order columns admit them (see
            // `sort_codes`); `Value` comparator otherwise
            let (idxs, morsels) = match sort_codes(rel, &spec, cfg) {
                Some(cols) => {
                    m.vectorized(rel.len().div_ceil(BATCH_ROWS) as u32);
                    sort_by_codes(cfg, rel.len(), &cols)
                }
                None => par::sort_indices(cfg, rel.len(), |a, b| {
                    cmp_vis(rel, a, b, &spec).then(a.cmp(&b))
                }),
            };
            m.morsels += morsels;
            let sel: Vec<u32> = idxs
                .into_iter()
                .map(|i| rel.raw_row(i as usize) as u32)
                .collect();
            let raw_cols: Vec<u32> = resolve_cols(&rel.schema, cols)?
                .into_iter()
                .map(|c| rel.raw_col(c) as u32)
                .collect();
            Ok(rel.with_sel(sel).with_cols(out_schema, raw_cols))
        }
    }
}

#[derive(Clone, Copy)]
enum WindowKind {
    RowNum,
    Rank,
    DenseRank,
}

/// Shared implementation of `ROW_NUMBER`/`RANK`/`DENSE_RANK`.
///
/// Rows are ordered by `(part, order, original index)` — the original index
/// as final tiebreak makes numbering deterministic when the order spec has
/// ties, matching what loop-lifting assumes of the back-end ("the database
/// system is free to consider these bindings ... in any order" only where
/// the result is order-insensitive). The sort itself runs on the morsel
/// pool (chunk sort + merge); numbering is a cheap serial scan.
fn windowed(
    rel: &Rel,
    part: &[ColName],
    order: &[SortSpec],
    out_schema: Schema,
    kind: WindowKind,
    cfg: &ParConfig,
    m: &mut NodeMetrics,
) -> Result<Rel, EngineError> {
    let pi: Vec<(usize, Dir)> = resolve_cols(&rel.schema, part)?
        .into_iter()
        .map(|c| (c, Dir::Asc))
        .collect();
    let spec = resolve_sort(&rel.schema, order)?;
    // typed fast path: order-preserving u64 sort codes for `(part, order)`
    // replace per-pair `Value` comparisons, and the same codes drive the
    // partition/order boundary tests of the numbering scan below (code
    // equality coincides with `Value` equality by construction)
    let full: Vec<(usize, Dir)> = pi.iter().chain(spec.iter()).copied().collect();
    if let Some(cols) = sort_codes(rel, &full, cfg) {
        let (idxs, morsels) = sort_by_codes(cfg, rel.len(), &cols);
        m.morsels += morsels;
        m.vectorized(rel.len().div_ceil(BATCH_ROWS) as u32);
        let np = pi.len();
        let mut rows: Vec<Row> = Vec::with_capacity(rel.len());
        let mut prev: Option<usize> = None;
        let mut row_number = 0u64;
        let mut rank_value = 0u64;
        for i in idxs {
            let i = i as usize;
            let same_part = prev.is_some_and(|p| cols[..np].iter().all(|c| c[i] == c[p]));
            if !same_part {
                row_number = 0;
                rank_value = 0;
            }
            row_number += 1;
            let fresh_order = !same_part
                || cols[np..]
                    .iter()
                    .any(|c| c[i] != c[prev.expect("same part")]);
            let n = match kind {
                WindowKind::RowNum => row_number,
                WindowKind::Rank => {
                    if fresh_order {
                        rank_value = row_number;
                    }
                    rank_value
                }
                WindowKind::DenseRank => {
                    if fresh_order {
                        rank_value += 1;
                    }
                    rank_value
                }
            };
            let mut out = rel.owned_row_with(i, 1);
            out.push(Value::Nat(n));
            rows.push(out);
            prev = Some(i);
        }
        return Ok(Rel::new(out_schema, rows));
    }
    let (idxs, morsels) = par::sort_indices(cfg, rel.len(), |a, b| {
        cmp_vis(rel, a, b, &pi)
            .then_with(|| cmp_vis(rel, a, b, &spec))
            .then(a.cmp(&b))
    });
    m.morsels += morsels;
    let part_idx: Vec<usize> = pi.iter().map(|&(c, _)| c).collect();
    let order_idx: Vec<usize> = spec.iter().map(|&(c, _)| c).collect();
    let mut rows: Vec<Row> = Vec::with_capacity(rel.len());
    let mut prev_part: Option<Vec<&Value>> = None;
    let mut prev_order: Option<Vec<&Value>> = None;
    let mut row_number = 0u64;
    let mut rank_value = 0u64;
    for i in idxs {
        let i = i as usize;
        let p = key_ref(rel, i, &part_idx);
        let o = key_ref(rel, i, &order_idx);
        if prev_part.as_ref() != Some(&p) {
            row_number = 0;
            rank_value = 0;
            prev_order = None;
            prev_part = Some(p);
        }
        row_number += 1;
        let fresh_order = prev_order.as_ref() != Some(&o);
        if fresh_order {
            prev_order = Some(o);
        }
        let n = match kind {
            WindowKind::RowNum => row_number,
            WindowKind::Rank => {
                if fresh_order {
                    rank_value = row_number;
                }
                rank_value
            }
            WindowKind::DenseRank => {
                if fresh_order {
                    rank_value += 1;
                }
                rank_value
            }
        };
        let mut out = rel.owned_row_with(i, 1);
        out.push(Value::Nat(n));
        rows.push(out);
    }
    Ok(Rel::new(out_schema, rows))
}

/// Aggregate accumulator.
enum Acc {
    Count(i64),
    SumInt(i64),
    SumDbl(f64),
    SumNat(u64),
    SumEmpty, // sum before the first value fixes the numeric domain
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
    All(bool),
    Any(bool),
}

impl Acc {
    fn new(fun: AggFun) -> Acc {
        match fun {
            AggFun::CountAll => Acc::Count(0),
            AggFun::Sum => Acc::SumEmpty,
            AggFun::Min => Acc::Min(None),
            AggFun::Max => Acc::Max(None),
            AggFun::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFun::All => Acc::All(true),
            AggFun::Any => Acc::Any(false),
        }
    }

    fn feed(&mut self, v: Option<&Value>) -> Result<(), EngineError> {
        let overflow = || EngineError::Eval("overflow in SUM".into());
        match self {
            Acc::Count(n) => *n += 1,
            Acc::SumEmpty => {
                *self = match v.expect("validated") {
                    Value::Int(i) => Acc::SumInt(*i),
                    Value::Dbl(d) => Acc::SumDbl(*d),
                    Value::Nat(n) => Acc::SumNat(*n),
                    v => return Err(EngineError::Eval(format!("SUM over {v}"))),
                }
            }
            Acc::SumInt(s) => {
                let i = v.and_then(|v| v.as_int()).ok_or_else(overflow)?;
                *s = s.checked_add(i).ok_or_else(overflow)?;
            }
            Acc::SumDbl(s) => *s += v.and_then(|v| v.as_dbl()).unwrap_or(0.0),
            Acc::SumNat(s) => {
                let n = v.and_then(|v| v.as_nat()).ok_or_else(overflow)?;
                *s = s.checked_add(n).ok_or_else(overflow)?;
            }
            Acc::Min(m) => {
                let v = v.expect("validated");
                if m.as_ref().is_none_or(|m| v < m) {
                    *m = Some(v.clone());
                }
            }
            Acc::Max(m) => {
                let v = v.expect("validated");
                if m.as_ref().is_none_or(|m| v > m) {
                    *m = Some(v.clone());
                }
            }
            Acc::Avg { sum, n } => {
                let d = match v.expect("validated") {
                    Value::Int(i) => *i as f64,
                    Value::Dbl(d) => *d,
                    v => return Err(EngineError::Eval(format!("AVG over {v}"))),
                };
                *sum += d;
                *n += 1;
            }
            Acc::All(b) => *b &= v.and_then(|v| v.as_bool()).unwrap_or(true),
            Acc::Any(b) => *b |= v.and_then(|v| v.as_bool()).unwrap_or(false),
        }
        Ok(())
    }

    fn finish(self) -> Result<Value, EngineError> {
        match self {
            Acc::Count(n) => Ok(Value::Int(n)),
            Acc::SumInt(s) => Ok(Value::Int(s)),
            Acc::SumDbl(s) => Ok(Value::Dbl(s)),
            Acc::SumNat(s) => Ok(Value::Nat(s)),
            // SUM over an empty group: groups only exist for non-empty
            // inputs, so this is unreachable via GroupBy, but keep it total.
            Acc::SumEmpty => Ok(Value::Int(0)),
            Acc::Min(m) | Acc::Max(m) => {
                m.ok_or_else(|| EngineError::Eval("MIN/MAX over empty group".into()))
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Err(EngineError::Eval("AVG over empty group".into()))
                } else {
                    Ok(Value::Dbl(sum / n as f64))
                }
            }
            Acc::All(b) => Ok(Value::Bool(b)),
            Acc::Any(b) => Ok(Value::Bool(b)),
        }
    }
}

/// Vectorized aggregate state: one accumulator slot per group, fed
/// column-at-a-time from the input's typed chunk.
enum VAgg {
    Count(Vec<i64>),
    SumInt(Vec<i64>),
    SumNat(Vec<u64>),
    SumDbl(Vec<f64>),
    /// Raw buffer row of the group's current best cell (`u32::MAX` until
    /// the group's first row arrives). Works for every chunk type via
    /// [`ColVec::cmp_cells`], and finishing is a single `value()` call —
    /// no per-row `Value` clones along the way.
    MinMax {
        max: bool,
        best: Vec<u32>,
    },
    Avg {
        sum: Vec<f64>,
        n: Vec<i64>,
    },
    All(Vec<bool>),
    Any(Vec<bool>),
}

/// Typed group-by: key rows by `u64` eq-codes, then run each aggregate as
/// a tight loop over its typed chunk. Returns `Ok(None)` when any part of
/// the node falls outside the typed domains (the scalar path then owns
/// it, including its error behaviours — e.g. `AVG` over `Nat`). On
/// success also returns each group's first-occurrence **visible** row
/// index ([`group_by_sharded`] merges per-shard outputs on it).
fn group_by_typed(
    rel: &Rel,
    ki: &[usize],
    aggs: &[Aggregate],
    ai: &[Option<usize>],
    out_schema: &Schema,
    cfg: &ParConfig,
) -> Result<Option<(Rel, Vec<u32>)>, EngineError> {
    let n = rel.len();
    if !cfg.vectorize(n) {
        return Ok(None);
    }
    // per-aggregate plan: the input chunk plus the accumulator kind its
    // storage variant admits
    let mut chunks: Vec<Option<std::sync::Arc<ColVec>>> = Vec::with_capacity(aggs.len());
    let mut states: Vec<VAgg> = Vec::with_capacity(aggs.len());
    for (a, idx) in aggs.iter().zip(ai) {
        let chunk = idx.map(|c| rel.typed_col(rel.raw_col(c)));
        let state = match (a.fun, chunk.as_deref()) {
            (AggFun::CountAll, _) => VAgg::Count(Vec::new()),
            (AggFun::Sum, Some(ColVec::Int(_))) => VAgg::SumInt(Vec::new()),
            (AggFun::Sum, Some(ColVec::Nat(_))) => VAgg::SumNat(Vec::new()),
            (AggFun::Sum, Some(ColVec::Dbl(_))) => VAgg::SumDbl(Vec::new()),
            (AggFun::Min, Some(_)) => VAgg::MinMax {
                max: false,
                best: Vec::new(),
            },
            (AggFun::Max, Some(_)) => VAgg::MinMax {
                max: true,
                best: Vec::new(),
            },
            (AggFun::Avg, Some(ColVec::Int(_) | ColVec::Dbl(_))) => VAgg::Avg {
                sum: Vec::new(),
                n: Vec::new(),
            },
            (AggFun::All, Some(ColVec::Bool(_))) => VAgg::All(Vec::new()),
            (AggFun::Any, Some(ColVec::Bool(_))) => VAgg::Any(Vec::new()),
            _ => return Ok(None),
        };
        chunks.push(chunk);
        states.push(state);
    }
    // phase 1: group ids in first-occurrence order, keyed on eq-codes
    // (same-buffer: dictionary string codes are valid keys)
    let mut gid: Vec<u32> = Vec::with_capacity(n);
    let mut first_row: Vec<u32> = Vec::new();
    if ki.is_empty() {
        // global aggregate: one group holding every row (scalar semantics:
        // no rows, no group)
        if n > 0 {
            gid.resize(n, 0);
            first_row.push(0);
        }
    } else if ki.len() == 1 {
        let Some(codes) = chunk_codes(rel, &rel.typed_col(rel.raw_col(ki[0])), false) else {
            return Ok(None);
        };
        let mut groups: HashMap<u64, u32, CodeHash> = HashMap::with_hasher(CodeHash);
        for (i, &c) in codes.iter().enumerate() {
            let g = *groups.entry(c).or_insert_with(|| {
                first_row.push(i as u32);
                (first_row.len() - 1) as u32
            });
            gid.push(g);
        }
    } else {
        let Some(keys) = typed_codes(rel, ki, cfg, false) else {
            return Ok(None);
        };
        let mut groups: HashMap<Vec<u64>, u32, CodeHash> = HashMap::with_hasher(CodeHash);
        for (i, key) in keys.into_iter().enumerate() {
            let g = *groups.entry(key).or_insert_with(|| {
                first_row.push(i as u32);
                (first_row.len() - 1) as u32
            });
            gid.push(g);
        }
    }
    let ng = first_row.len();
    let raws: Vec<u32> = (0..n).map(|i| rel.raw_row(i) as u32).collect();
    // phase 2: batch aggregation, one typed pass per aggregate
    let overflow = || EngineError::Eval("overflow in SUM".into());
    for (state, chunk) in states.iter_mut().zip(&chunks) {
        match state {
            VAgg::Count(c) => {
                c.resize(ng, 0);
                for &g in &gid {
                    c[g as usize] += 1;
                }
            }
            VAgg::SumInt(s) => {
                s.resize(ng, 0);
                let v = chunk.as_ref().and_then(|c| c.as_int()).expect("planned");
                for (k, &g) in gid.iter().enumerate() {
                    let slot = &mut s[g as usize];
                    *slot = slot.checked_add(v[raws[k] as usize]).ok_or_else(overflow)?;
                }
            }
            VAgg::SumNat(s) => {
                s.resize(ng, 0);
                let v = chunk.as_ref().and_then(|c| c.as_nat()).expect("planned");
                for (k, &g) in gid.iter().enumerate() {
                    let slot = &mut s[g as usize];
                    *slot = slot.checked_add(v[raws[k] as usize]).ok_or_else(overflow)?;
                }
            }
            VAgg::SumDbl(s) => {
                // scalar Sum folds from the group's first value, so a group
                // of only `-0.0`s sums to `-0.0`; seeding with `-0.0` (the
                // additive identity that preserves the sign of zero sums)
                // reproduces that bit-for-bit
                s.resize(ng, -0.0);
                let v = chunk.as_ref().and_then(|c| c.as_dbl()).expect("planned");
                for (k, &g) in gid.iter().enumerate() {
                    s[g as usize] += v[raws[k] as usize];
                }
            }
            VAgg::MinMax { max, best } => {
                best.resize(ng, u32::MAX);
                let c = chunk.as_ref().expect("planned");
                for (k, &g) in gid.iter().enumerate() {
                    let raw = raws[k];
                    let b = &mut best[g as usize];
                    if *b == u32::MAX {
                        *b = raw;
                    } else {
                        let o = c.cmp_cells(raw as usize, *b as usize);
                        // strict comparison: ties keep the first-seen cell,
                        // matching the scalar accumulator
                        if o == if *max {
                            Ordering::Greater
                        } else {
                            Ordering::Less
                        } {
                            *b = raw;
                        }
                    }
                }
            }
            VAgg::Avg { sum, n: cnt } => {
                sum.resize(ng, 0.0);
                cnt.resize(ng, 0);
                match chunk.as_deref().expect("planned") {
                    ColVec::Int(v) => {
                        for (k, &g) in gid.iter().enumerate() {
                            sum[g as usize] += v[raws[k] as usize] as f64;
                            cnt[g as usize] += 1;
                        }
                    }
                    ColVec::Dbl(v) => {
                        for (k, &g) in gid.iter().enumerate() {
                            sum[g as usize] += v[raws[k] as usize];
                            cnt[g as usize] += 1;
                        }
                    }
                    _ => unreachable!("planned above"),
                }
            }
            VAgg::All(bs) => {
                bs.resize(ng, true);
                let v = chunk.as_ref().and_then(|c| c.as_bool()).expect("planned");
                for (k, &g) in gid.iter().enumerate() {
                    bs[g as usize] &= v[raws[k] as usize];
                }
            }
            VAgg::Any(bs) => {
                bs.resize(ng, false);
                let v = chunk.as_ref().and_then(|c| c.as_bool()).expect("planned");
                for (k, &g) in gid.iter().enumerate() {
                    bs[g as usize] |= v[raws[k] as usize];
                }
            }
        }
    }
    // phase 3: materialise one output row per group
    let mut rows: Vec<Row> = Vec::with_capacity(ng);
    for g in 0..ng {
        let fi = first_row[g] as usize;
        let mut row: Row = Vec::with_capacity(ki.len() + states.len());
        row.extend(ki.iter().map(|&c| rel.cell(fi, c).clone()));
        for (state, chunk) in states.iter().zip(&chunks) {
            row.push(match state {
                VAgg::Count(c) => Value::Int(c[g]),
                VAgg::SumInt(s) => Value::Int(s[g]),
                VAgg::SumNat(s) => Value::Nat(s[g]),
                VAgg::SumDbl(s) => Value::Dbl(s[g]),
                VAgg::MinMax { best, .. } => {
                    chunk.as_ref().expect("planned").value(best[g] as usize)
                }
                VAgg::Avg { sum, n } => Value::Dbl(sum[g] / n[g] as f64),
                VAgg::All(bs) => Value::Bool(bs[g]),
                VAgg::Any(bs) => Value::Bool(bs[g]),
            });
        }
        rows.push(row);
    }
    Ok(Some((Rel::new(out_schema.clone(), rows), first_row)))
}

/// The scalar group-by loop shared by the stock path and the per-shard
/// parts of [`group_by_sharded`]: rows in first-occurrence group order,
/// plus each group's first **visible** row index.
fn group_by_scalar(
    rel: &Rel,
    ki: &[usize],
    aggs: &[Aggregate],
    ai: &[Option<usize>],
) -> Result<(Vec<Row>, Vec<u32>), EngineError> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut firsts: Vec<u32> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    for i in 0..rel.len() {
        let key: Vec<Value> = ki.iter().map(|&c| rel.cell(i, c).clone()).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            firsts.push(i as u32);
            aggs.iter().map(|a| Acc::new(a.fun)).collect()
        });
        for (acc, idx) in accs.iter_mut().zip(ai) {
            acc.feed(idx.map(|c| rel.cell(i, c)))?;
        }
    }
    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group present");
        let mut row = key;
        for acc in accs {
            row.push(acc.finish()?);
        }
        rows.push(row);
    }
    Ok((rows, firsts))
}

/// Shard-local group-by. The planner proved the keys include the shard
/// key, so equal key tuples agree on it and hash to one shard: groups are
/// shard-disjoint, each shard's visible rows aggregate independently (the
/// per-part feed order is the global order restricted to the part, so
/// order-sensitive accumulators are bit-identical), and the per-shard
/// outputs merge by global first-occurrence index into *exactly* the
/// stock path's row order.
///
/// Returns `None` when the fast path does not apply — the input is no
/// longer a pure view over the table's own buffer (a fused chain
/// materialised rows), or fewer than two shards hold rows — **or when any
/// part fails**: the stock global path then reruns the node and owns the
/// exact result or error.
#[allow(clippy::too_many_arguments)]
fn group_by_sharded(
    rel: &Rel,
    ki: &[usize],
    aggs: &[Aggregate],
    ai: &[Option<usize>],
    out_schema: &Schema,
    cfg: &ParConfig,
    ts: &TableShards,
    m: &mut NodeMetrics,
) -> Option<Rel> {
    if ki.is_empty() || rel.buffer().len() != ts.shard_of.len() {
        return None;
    }
    let s = ts.sels.len();
    // An unfiltered, unprojected scan partitions into the table's cached
    // dense per-shard buffers ([`TableShards::dense`]): contiguous rows,
    // chunk caches shared across queries, and `sels[k]` doubles as the
    // visible-index map (visible == raw on a pure scan). Otherwise,
    // partition the visible rows by shard, keeping both the buffer
    // position (the part's selection vector) and the visible index (the
    // merge key back into global first-occurrence order).
    let pure = rel.sel_map().is_none() && rel.col_map().is_none();
    let mut parts: Vec<Vec<u32>> = Vec::new();
    let mut part_vis: Vec<Vec<u32>> = Vec::new();
    if !pure {
        parts = vec![Vec::new(); s];
        part_vis = vec![Vec::new(); s];
        for i in 0..rel.len() {
            let raw = rel.raw_row(i);
            let k = ts.shard_of[raw] as usize;
            parts[k].push(raw as u32);
            part_vis[k].push(i as u32);
        }
    }
    let occupied = |k: usize| !if pure { &ts.sels[k] } else { &parts[k] }.is_empty();
    let live: Vec<usize> = (0..s).filter(|&k| occupied(k)).collect();
    if live.len() < 2 {
        return None;
    }
    type PartOut = Result<(Vec<Row>, Vec<u32>, u32), EngineError>;
    let run_part = |k: usize| -> PartOut {
        let (part, vis): (Rel, &[u32]) = if pure {
            let buf = ts.dense(k, rel.buffer(), rel.width());
            (Rel::from_shared(rel.schema.clone(), buf), &ts.sels[k])
        } else {
            (rel.with_sel(parts[k].clone()), &part_vis[k])
        };
        let (rows, firsts, batches) = match group_by_typed(&part, ki, aggs, ai, out_schema, cfg)? {
            Some((out, firsts)) => {
                let rows = (0..out.len()).map(|g| out.owned_row(g)).collect();
                (rows, firsts, part.len().div_ceil(BATCH_ROWS) as u32)
            }
            None => {
                let (rows, firsts) = group_by_scalar(&part, ki, aggs, ai)?;
                (rows, firsts, 0)
            }
        };
        // part-local visible index → global visible index
        let firsts = firsts.iter().map(|&f| vis[f as usize]).collect();
        Ok((rows, firsts, batches))
    };
    let outs: Vec<PartOut> = if cfg.threads > 1 {
        let slots: Vec<Mutex<Option<PartOut>>> = live.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let ctx = ferry_telemetry::current_ctx();
        std::thread::scope(|scope| {
            for _ in 0..cfg.threads.min(live.len()) {
                scope.spawn(|| {
                    let _t = ferry_telemetry::enter_ctx(ctx);
                    loop {
                        let w = next.fetch_add(1, AtOrd::Relaxed);
                        if w >= live.len() {
                            break;
                        }
                        *slots[w].lock().unwrap() = Some(run_part(live[w]));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("every part slot is claimed"))
            .collect()
    } else {
        live.iter().map(|&k| run_part(k)).collect()
    };
    let mut merged: Vec<(u32, Row)> = Vec::new();
    let mut batches = 0u32;
    for out in outs {
        let (rows, firsts, b) = out.ok()?;
        batches += b;
        merged.extend(firsts.into_iter().zip(rows));
    }
    // global first-occurrence order (first indices are distinct: each
    // group has exactly one, in exactly one shard)
    merged.sort_unstable_by_key(|&(f, _)| f);
    m.morsels += live.len() as u32;
    if batches > 0 {
        m.vectorized(batches);
    }
    Some(Rel::new(
        out_schema.clone(),
        merged.into_iter().map(|(_, r)| r).collect(),
    ))
}

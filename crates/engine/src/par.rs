//! Morsel-driven parallelism: a dependency-free worker pool over row
//! ranges.
//!
//! Large operator inputs are split into *morsels* (contiguous row ranges)
//! that std scoped threads claim from a shared atomic counter — the
//! classic morsel-driven scheme, minus NUMA placement, which an in-process
//! engine does not control anyway. Results are reassembled **in morsel
//! order**, so a parallel run produces byte-identical output to a serial
//! run regardless of thread count, morsel size, or claim order; the
//! differential test suite (`tests/differential.rs`) locks this in.
//!
//! Everything is gated by [`ParConfig`]: small inputs (`min_rows`) and
//! single-threaded configurations take a straight serial path with zero
//! synchronisation overhead.

use std::cmp::Ordering;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
use std::sync::Mutex;

/// Execution-path selection for operators that have both a scalar
/// (row-at-a-time `Bound` interpretation) and a vectorized (typed-chunk
/// kernel) implementation. See `crate::vec_eval` and `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VecMode {
    /// Vectorize when the input is large enough to amortise the one-off
    /// column transposition; small inputs stay scalar.
    #[default]
    Auto,
    /// Scalar only — the fallback path doubles as the differential oracle.
    Off,
    /// Vectorize whenever a kernel can be compiled, regardless of input
    /// size (differential tests force this to cover tiny inputs).
    Force,
}

/// Pipeline-fusion selection: whether maximal fusible operator chains
/// collapse into one streaming batch program (see `crate::exec`'s
/// pipeline compiler and DESIGN.md "Pipeline fusion").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FuseMode {
    /// Fuse whenever the chain input clears the vectorization threshold.
    #[default]
    Auto,
    /// Never fuse — every node materializes its `Rel` (node-at-a-time).
    Off,
    /// Fuse every eligible chain regardless of input size (differential
    /// tests force this to cover tiny inputs).
    Force,
}

/// Parallelism knobs carried by a `Database` (and settable through a
/// `Connection`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker threads for morsel execution and DAG wavefronts. `1`
    /// disables all parallelism (pure serial evaluation, no threads
    /// spawned).
    pub threads: usize,
    /// Inputs smaller than this stay serial — forking threads for a
    /// 50-row relation costs more than the work itself.
    pub min_rows: usize,
    /// Rows per morsel; `0` picks automatically (input split into about
    /// `4 × threads` morsels, at least 1024 rows each). Exposed mainly so
    /// the differential tests can force degenerate splits.
    pub morsel_rows: usize,
    /// Scalar vs vectorized path selection (orthogonal to threading:
    /// kernels run inside morsels, so the two compose).
    pub vec: VecMode,
    /// Pipeline fusion on top of vectorization: fused chains stream
    /// batches end to end instead of materializing a `Rel` per node.
    /// Composes with `vec` (fusion requires the vectorized path) and
    /// with morsels (a fused pipeline parallelizes like a single node).
    pub fuse: FuseMode,
}

impl Default for ParConfig {
    fn default() -> ParConfig {
        ParConfig {
            threads: default_threads(),
            min_rows: 4096,
            morsel_rows: 0,
            vec: VecMode::Auto,
            fuse: FuseMode::Auto,
        }
    }
}

impl ParConfig {
    /// Fully serial configuration.
    pub fn serial() -> ParConfig {
        ParConfig {
            threads: 1,
            ..ParConfig::default()
        }
    }

    pub fn with_threads(threads: usize) -> ParConfig {
        ParConfig {
            threads: threads.max(1),
            ..ParConfig::default()
        }
    }

    /// Should an input of `n` rows be processed in parallel?
    pub fn parallel_for(&self, n: usize) -> bool {
        self.threads > 1 && n >= self.min_rows.max(2)
    }

    /// Should an operator over `n` input rows take the vectorized path
    /// (assuming it has one and a kernel compiles)? The `Auto` threshold
    /// is deliberately low: the transposition is cached on the shared
    /// buffer, so it amortises across operators, not just within one.
    pub fn vectorize(&self, n: usize) -> bool {
        match self.vec {
            VecMode::Off => false,
            VecMode::Force => n > 0,
            VecMode::Auto => n >= 64,
        }
    }

    /// Should a fusible chain over `n` input rows run as one fused
    /// pipeline? Fusion rides on the vectorized kernels, so `vec: Off`
    /// disables it regardless of `fuse`; `Force` only overrides the
    /// *size* threshold, not the vec gate.
    pub fn fuse_for(&self, n: usize) -> bool {
        match self.fuse {
            FuseMode::Off => false,
            FuseMode::Force => self.vec != VecMode::Off && n > 0,
            FuseMode::Auto => self.vectorize(n),
        }
    }

    /// Morsel size for an input of `n` rows.
    pub fn morsel_size(&self, n: usize) -> usize {
        if self.morsel_rows > 0 {
            self.morsel_rows
        } else {
            n.div_ceil(self.threads.max(1) * 4).max(1024)
        }
    }
}

/// Hardware parallelism, capped: beyond 8 workers the shared-buffer
/// engine is memory-bound and extra threads only add contention.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Split `0..n` into morsels, apply `f` to each (in parallel when the
/// config allows), and concatenate the per-morsel outputs in morsel
/// order. Returns the output plus the number of morsels executed.
///
/// Errors: the lowest-indexed morsel error is returned, so failure is as
/// deterministic as success.
pub fn map_morsels<T, E, F>(cfg: &ParConfig, n: usize, f: F) -> Result<(Vec<T>, u32), E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<Vec<T>, E> + Sync,
{
    let (chunks, morsels) = run_morsels(cfg, n, f)?;
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for mut chunk in chunks {
        out.append(&mut chunk);
    }
    Ok((out, morsels))
}

/// Result slot a worker fills for one claimed morsel.
type MorselSlot<T, E> = Mutex<Option<Result<Vec<T>, E>>>;

/// Like [`map_morsels`] but keeping per-morsel outputs separate (the
/// parallel sort needs the chunk boundaries for merging).
pub fn run_morsels<T, E, F>(cfg: &ParConfig, n: usize, f: F) -> Result<(Vec<Vec<T>>, u32), E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<Vec<T>, E> + Sync,
{
    if n == 0 {
        return Ok((Vec::new(), 0));
    }
    if !cfg.parallel_for(n) {
        return f(0..n).map(|v| (vec![v], 1));
    }
    let m = cfg.morsel_size(n);
    let count = n.div_ceil(m);
    if count <= 1 {
        return f(0..n).map(|v| (vec![v], 1));
    }
    let slots: Vec<MorselSlot<T, E>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = cfg.threads.min(count);
    // forward the ambient trace context into the workers: per-morsel
    // spans then carry the dispatching query's trace id even though they
    // are recorded on other threads (and an inactive context keeps all of
    // this a no-op)
    let ctx = ferry_telemetry::current_ctx();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let _t = ferry_telemetry::enter_ctx(ctx);
                loop {
                    let i = next.fetch_add(1, AtOrd::Relaxed);
                    if i >= count {
                        break;
                    }
                    let lo = i * m;
                    let hi = (lo + m).min(n);
                    let mut span = ferry_telemetry::span("morsel", "exec.morsel");
                    span.attr("morsel", i).attr("rows", hi - lo);
                    *slots[i].lock().unwrap() = Some(f(lo..hi));
                }
            });
        }
    });
    let mut chunks = Vec::with_capacity(count);
    for slot in slots {
        match slot.into_inner().unwrap() {
            Some(Ok(v)) => chunks.push(v),
            Some(Err(e)) => return Err(e),
            None => unreachable!("every morsel is claimed by some worker"),
        }
    }
    Ok((chunks, count as u32))
}

/// Sort the index set `0..n` by `cmp` — serial `sort_by` below the
/// parallelism threshold, chunk-sort + k-way merge above it. `cmp` must be
/// a *total* order (break ties on the index itself) so chunked and serial
/// runs agree exactly.
pub fn sort_indices<F>(cfg: &ParConfig, n: usize, cmp: F) -> (Vec<u32>, u32)
where
    F: Fn(u32, u32) -> Ordering + Sync,
{
    if !cfg.parallel_for(n) {
        let mut idxs: Vec<u32> = (0..n as u32).collect();
        idxs.sort_unstable_by(|&a, &b| cmp(a, b));
        return (idxs, 1);
    }
    let (mut runs, morsels) = run_morsels::<u32, std::convert::Infallible, _>(cfg, n, |range| {
        let mut idxs: Vec<u32> = (range.start as u32..range.end as u32).collect();
        idxs.sort_unstable_by(|&a, &b| cmp(a, b));
        Ok(idxs)
    })
    .unwrap_or_else(|e| match e {});
    // balanced pairwise merging: O(n log k) total
    while runs.len() > 1 {
        let mut merged = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => merged.push(merge_sorted(a, b, &cmp)),
                None => merged.push(a),
            }
        }
        runs = merged;
    }
    (runs.pop().unwrap_or_default(), morsels)
}

fn merge_sorted<F: Fn(u32, u32) -> Ordering>(a: Vec<u32>, b: Vec<u32>, cmp: &F) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(a[i], b[j]) == Ordering::Greater {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par() -> ParConfig {
        ParConfig {
            threads: 4,
            min_rows: 1,
            morsel_rows: 7,
            ..ParConfig::default()
        }
    }

    #[test]
    fn map_morsels_preserves_order() {
        let (out, morsels) = map_morsels::<usize, (), _>(&par(), 100, |r| Ok(r.collect())).unwrap();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(morsels, 100usize.div_ceil(7) as u32);
        // serial path gives the identical answer
        let (serial, m1) =
            map_morsels::<usize, (), _>(&ParConfig::serial(), 100, |r| Ok(r.collect())).unwrap();
        assert_eq!(out, serial);
        assert_eq!(m1, 1);
    }

    #[test]
    fn map_morsels_reports_lowest_error() {
        let err = map_morsels::<usize, usize, _>(&par(), 100, |r| {
            if r.start >= 30 {
                Err(r.start)
            } else {
                Ok(r.collect())
            }
        })
        .unwrap_err();
        // morsels are 7 rows: the first failing morsel starts at 35
        assert_eq!(err, 35);
    }

    #[test]
    fn empty_input_runs_no_morsels() {
        let (out, morsels) = map_morsels::<usize, (), _>(&par(), 0, |r| Ok(r.collect())).unwrap();
        assert!(out.is_empty());
        assert_eq!(morsels, 0);
    }

    #[test]
    fn sort_indices_matches_serial() {
        let keys: Vec<u32> = (0..500).map(|i| (i * 7919) % 101).collect();
        let cmp = |a: u32, b: u32| keys[a as usize].cmp(&keys[b as usize]).then(a.cmp(&b));
        let (par_sorted, morsels) = sort_indices(&par(), keys.len(), cmp);
        let (serial, _) = sort_indices(&ParConfig::serial(), keys.len(), cmp);
        assert!(morsels > 1);
        assert_eq!(par_sorted, serial);
        assert!(par_sorted
            .windows(2)
            .all(|w| cmp(w[0], w[1]) != Ordering::Greater));
    }

    #[test]
    fn config_gates() {
        let cfg = ParConfig::default();
        assert!(!ParConfig::serial().parallel_for(1_000_000));
        assert!(!ParConfig::with_threads(4).parallel_for(10));
        assert!(cfg.morsel_size(0) >= 1);
        let fixed = ParConfig {
            morsel_rows: 7,
            ..cfg
        };
        assert_eq!(fixed.morsel_size(1_000_000), 7);
    }

    #[test]
    fn vec_mode_gates() {
        let auto = ParConfig::default();
        assert!(auto.vectorize(100_000));
        assert!(!auto.vectorize(8));
        let off = ParConfig {
            vec: VecMode::Off,
            ..auto
        };
        assert!(!off.vectorize(100_000));
        let force = ParConfig {
            vec: VecMode::Force,
            ..auto
        };
        assert!(force.vectorize(1));
        assert!(!force.vectorize(0));
    }

    #[test]
    fn fuse_mode_gates() {
        let auto = ParConfig::default();
        assert!(auto.fuse_for(100_000));
        assert!(!auto.fuse_for(8)); // below the vec Auto threshold
        let off = ParConfig {
            fuse: FuseMode::Off,
            ..auto
        };
        assert!(!off.fuse_for(100_000));
        let force = ParConfig {
            fuse: FuseMode::Force,
            ..auto
        };
        assert!(force.fuse_for(1));
        assert!(!force.fuse_for(0));
        // fusion never outruns the vec gate
        let vec_off = ParConfig {
            vec: VecMode::Off,
            fuse: FuseMode::Force,
            ..auto
        };
        assert!(!vec_off.fuse_for(100_000));
    }
}

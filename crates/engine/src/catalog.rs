//! The database: a catalog of base tables plus the query entry point.

use crate::error::EngineError;
use crate::exec;
use crate::par::ParConfig;
use crate::stats::{ProfileRing, QueryProfile, QueryStats};
use ferry_algebra::{infer_schema, NodeId, Plan, Rel, Row, RowBuf, Schema};
use ferry_storage::{DurabilityConfig, RecoveryReport, StdFs, Storage, TableImage, Vfs, WalRecord};
use ferry_telemetry::{Counter, Histogram, Registry, Telemetry, TelemetryConfig};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering as AtOrd};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A database-resident base table: schema, key columns (defining the
/// canonical order the `table` combinator exposes) and rows.
///
/// Rows sit behind an `Arc<RowBuf>` so a `TableRef` scan shares the
/// catalog's buffer — including its lazily-built columnar chunk cache —
/// with the query result instead of copying the table (`Arc::make_mut` on
/// insert preserves value semantics for writers).
#[derive(Debug, Clone)]
pub struct BaseTable {
    pub schema: Schema,
    /// Names of key columns (must be part of the schema). The key orders
    /// the table: the Ferry front-end materialises `pos` by row-numbering
    /// over these columns.
    pub keys: Vec<String>,
    pub rows: Arc<RowBuf>,
}

/// The in-memory database acting as the coprocessor.
///
/// `execute` is the client/server boundary: each call is **one query**
/// dispatched to the database, counted in [`QueryStats`] and charged
/// `dispatch_cost` of fixed latency (default zero; set it to model a
/// networked DBMS round-trip).
#[derive(Debug)]
pub struct Database {
    tables: HashMap<String, BaseTable>,
    dispatch_cost: Duration,
    /// Morsel/wavefront parallelism knobs used by every dispatch.
    par: ParConfig,
    /// The observability hub: config, metrics registry, trace ring.
    /// Per-instance (no process globals), so concurrent databases and
    /// tests never see each other's numbers.
    telemetry: Arc<Telemetry>,
    /// Cached counter handles into `telemetry`'s registry — the hot path
    /// bumps atomics without touching the registry lock.
    metrics: EngineMetrics,
    /// Per-node profiles of the most recent dispatches.
    profiles: Mutex<ProfileRing>,
    /// Dispatch id allocator (`QueryProfile::query_id`; monotone, 1-based).
    next_query_id: AtomicU64,
    /// Monotone counter bumped whenever the *schema* of the catalog
    /// changes (tables created, replaced or force-installed). Compiled
    /// plans are data-independent, so row inserts do **not** bump it —
    /// the runtime's plan cache keys on this version to invalidate
    /// bundles exactly when recompilation could change them.
    schema_version: u64,
    /// The durability substrate, when this database was opened with
    /// [`Database::open`]. `None` = in-memory only (the default). Every
    /// catalog mutation is appended to its WAL **before** being applied
    /// in memory (log-before-ack).
    storage: Option<Storage>,
    /// What recovery found and did, for databases opened durably.
    recovery: Option<RecoveryReport>,
    /// The most recent *auto*-checkpoint failure. Mutations do not surface
    /// these (see [`Database::maybe_checkpoint`]); callers that care poll
    /// here or watch the `storage.checkpoint_failures` counter.
    last_checkpoint_error: Option<String>,
}

/// The engine's named metrics, resolved once per database. Counter names
/// are the public contract (`DESIGN.md` lists them); `Database::stats()`
/// reads these same handles back into a [`QueryStats`] view.
#[derive(Debug)]
struct EngineMetrics {
    queries: Arc<Counter>,
    rows_out: Arc<Counter>,
    nodes_evaluated: Arc<Counter>,
    rows_produced: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    morsel_tasks: Arc<Counter>,
    par_nodes: Arc<Counter>,
    par_waves: Arc<Counter>,
    vec_nodes: Arc<Counter>,
    kernel_batches: Arc<Counter>,
    checkpoint_failures: Arc<Counter>,
    query_latency_ns: Arc<Histogram>,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> EngineMetrics {
        // these names are code-controlled, so a kind conflict cannot
        // happen from within the workspace; if a foreign registrant ever
        // claims one as a different kind, fall back to a detached handle
        // (the numbers are lost, the engine keeps running)
        let counter = |name: &str| registry.counter(name).unwrap_or_default();
        EngineMetrics {
            queries: counter("engine.queries"),
            rows_out: counter("engine.rows_out"),
            nodes_evaluated: counter("engine.nodes_evaluated"),
            rows_produced: counter("engine.rows_produced"),
            cache_hits: counter("runtime.cache_hits"),
            cache_misses: counter("runtime.cache_misses"),
            morsel_tasks: counter("engine.morsel_tasks"),
            par_nodes: counter("engine.par_nodes"),
            par_waves: counter("engine.par_waves"),
            vec_nodes: counter("engine.vec_nodes"),
            kernel_batches: counter("engine.kernel_batches"),
            checkpoint_failures: counter("storage.checkpoint_failures"),
            query_latency_ns: registry
                .histogram("engine.query_latency_ns")
                .unwrap_or_default(),
        }
    }
}

impl Default for Database {
    fn default() -> Database {
        Database::with_telemetry(Arc::new(Telemetry::default()))
    }
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Build a database reporting into an existing telemetry hub (e.g.
    /// one shared with other databases of a process).
    pub fn with_telemetry(telemetry: Arc<Telemetry>) -> Database {
        let metrics = EngineMetrics::new(telemetry.registry());
        Database {
            tables: HashMap::new(),
            dispatch_cost: Duration::ZERO,
            par: ParConfig::default(),
            telemetry,
            metrics,
            profiles: Mutex::new(ProfileRing::default()),
            next_query_id: AtomicU64::new(0),
            schema_version: 0,
            storage: None,
            recovery: None,
            last_checkpoint_error: None,
        }
    }

    /// Open (or create) a **durable** database rooted at `path`: recover
    /// the catalog from its snapshot + WAL, then log every subsequent
    /// mutation there before acknowledging it.
    pub fn open(path: impl AsRef<Path>, config: DurabilityConfig) -> Result<Database, EngineError> {
        let vfs: Arc<dyn Vfs> = Arc::new(StdFs::new(path.as_ref())?);
        Database::open_with_vfs(vfs, config)
    }

    /// [`Database::open`] over an explicit VFS — the entry point the
    /// fault-injection harness uses with a `ferry_storage::FaultFs`.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        config: DurabilityConfig,
    ) -> Result<Database, EngineError> {
        let mut db = Database::new();
        let recovered = Storage::open(vfs, config, db.telemetry.registry())?;
        for img in recovered.tables {
            // recovered tables are installed directly (they were validated
            // when first logged); each install bumps `schema_version`, so
            // any plan cache keyed on a fresh database misses as it must
            db.tables.insert(
                img.name,
                BaseTable {
                    schema: img.schema,
                    keys: img.keys,
                    rows: Arc::new(RowBuf::new(img.rows)),
                },
            );
            db.schema_version += 1;
        }
        db.storage = Some(recovered.storage);
        db.recovery = Some(recovered.report);
        Ok(db)
    }

    /// Is this database backed by durable storage?
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// The recovery timeline of a durable database (what the snapshot
    /// provided, how many WAL records were replayed, torn-tail repair).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Write a snapshot of the current catalog and compact the WAL.
    /// No-op returning 0 for in-memory databases.
    pub fn checkpoint(&mut self) -> Result<u64, EngineError> {
        let Some(storage) = self.storage.as_mut() else {
            return Ok(0);
        };
        let mut images: Vec<TableImage> = self
            .tables
            .iter()
            .map(|(name, t)| TableImage {
                name: name.clone(),
                schema: t.schema.clone(),
                keys: t.keys.clone(),
                rows: t.rows.rows().to_vec(),
            })
            .collect();
        // deterministic snapshot bytes regardless of HashMap order
        images.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(storage.checkpoint(&images)?)
    }

    /// Force-fsync the WAL regardless of the configured policy (shutdown
    /// barrier). No-op for in-memory databases.
    pub fn sync(&mut self) -> Result<(), EngineError> {
        if let Some(storage) = self.storage.as_mut() {
            storage.sync()?;
        }
        Ok(())
    }

    /// Append `rec` to the WAL (durable per the fsync policy once this
    /// returns), then checkpoint if the configured WAL budget is spent.
    /// Must be called **before** the in-memory mutation is applied.
    fn log_durable(&mut self, rec: &WalRecord) -> Result<(), EngineError> {
        if let Some(storage) = self.storage.as_mut() {
            storage.log(rec)?;
        }
        Ok(())
    }

    /// Run the auto-checkpoint if `checkpoint_every` says the WAL budget
    /// is spent. Called **after** the mutation is applied in memory, so
    /// the snapshot covers it. Failures are recorded, never returned: the
    /// mutation itself is already WAL-durable and applied, so an error
    /// from `insert`/`create_table` here would read as "mutation failed"
    /// and invite a double-applying retry. The WAL keeps growing and the
    /// next mutation retries the compaction.
    fn maybe_checkpoint(&mut self) {
        if self.storage.as_ref().is_some_and(Storage::checkpoint_due) {
            match self.checkpoint() {
                Ok(_) => self.last_checkpoint_error = None,
                Err(e) => {
                    self.metrics.checkpoint_failures.inc();
                    self.last_checkpoint_error = Some(e.to_string());
                }
            }
        }
    }

    /// The most recent auto-checkpoint failure, if any (cleared by the
    /// next successful one). See [`Database::maybe_checkpoint`] for why
    /// mutations swallow these.
    pub fn last_checkpoint_error(&self) -> Option<&str> {
        self.last_checkpoint_error.as_deref()
    }

    /// This database's telemetry hub (registry, trace ring, config).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Set how much the telemetry layer records for subsequent dispatches.
    pub fn set_telemetry_config(&self, config: TelemetryConfig) {
        self.telemetry.set_config(config);
    }

    /// The id of the most recently dispatched query (0 before the first).
    pub fn last_query_id(&self) -> u64 {
        self.next_query_id.load(AtOrd::Relaxed)
    }

    /// The id of the most recent dispatch executed under telemetry trace
    /// `trace_id`, if its profile is still in the ring.
    pub fn query_id_for_trace(&self, trace_id: u64) -> Option<u64> {
        if trace_id == 0 {
            return None;
        }
        let profiles = self.profiles.lock().unwrap();
        let qid = profiles
            .iter()
            .rev()
            .find(|p| p.trace_id == trace_id)
            .map(|p| p.query_id);
        qid
    }

    /// Create (or replace) a base table.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        keys: Vec<&str>,
    ) -> Result<(), EngineError> {
        let name = name.into();
        for k in &keys {
            if !schema.contains(k) {
                return Err(EngineError::TableMismatch {
                    table: name,
                    detail: format!("key column {k} not in schema {schema}"),
                });
            }
        }
        let keys: Vec<String> = keys.into_iter().map(String::from).collect();
        self.log_durable(&WalRecord::CreateTable {
            name: name.clone(),
            schema: schema.clone(),
            keys: keys.clone(),
        })?;
        self.tables.insert(
            name,
            BaseTable {
                schema,
                keys,
                rows: Arc::new(RowBuf::default()),
            },
        );
        self.schema_version += 1;
        self.maybe_checkpoint();
        Ok(())
    }

    /// Install a table **without** the `create_table` validation — the
    /// restore-from-snapshot escape hatch. The caller is responsible for
    /// the invariants (`keys ⊆ schema`, row cells typed per schema);
    /// consumers such as `Connection::interpreter_tables` must therefore
    /// report violations as errors rather than assume them impossible.
    /// On a durable database the full table (rows included) is WAL-logged
    /// before installation, which is why this can fail.
    pub fn install_table(
        &mut self,
        name: impl Into<String>,
        table: BaseTable,
    ) -> Result<(), EngineError> {
        let name = name.into();
        if self.storage.is_some() {
            self.log_durable(&WalRecord::InstallTable {
                name: name.clone(),
                schema: table.schema.clone(),
                keys: table.keys.clone(),
                rows: table.rows.rows().to_vec(),
            })?;
        }
        self.tables.insert(name, table);
        self.schema_version += 1;
        self.maybe_checkpoint();
        Ok(())
    }

    /// The current schema version (see the field docs).
    pub fn schema_version(&self) -> u64 {
        self.schema_version
    }

    /// Record a plan-cache outcome in this database's [`QueryStats`].
    /// The cache itself lives in the runtime (`ferry::Connection`); the
    /// counters live here so one `stats()` call tells the whole story of
    /// a workload (queries dispatched *and* compilations amortised).
    pub fn record_cache(&self, hit: bool) {
        if !self.telemetry.counters_on() {
            return;
        }
        if hit {
            self.metrics.cache_hits.inc();
        } else {
            self.metrics.cache_misses.inc();
        }
    }

    /// Append rows to a base table (types are checked). On a durable
    /// database the rows are WAL-logged after validation and **before**
    /// the in-memory append — a failed append leaves both the log and the
    /// catalog unchanged.
    pub fn insert(&mut self, name: &str, rows: Vec<Row>) -> Result<(), EngineError> {
        let table = self
            .tables
            .get(name)
            .ok_or_else(|| EngineError::NoSuchTable(name.to_string()))?;
        for row in &rows {
            if row.len() != table.schema.len() {
                return Err(EngineError::TableMismatch {
                    table: name.to_string(),
                    detail: format!(
                        "row width {} != schema width {}",
                        row.len(),
                        table.schema.len()
                    ),
                });
            }
            for (v, (c, t)) in row.iter().zip(table.schema.cols()) {
                if v.ty() != *t {
                    return Err(EngineError::TableMismatch {
                        table: name.to_string(),
                        detail: format!("column {c}: value {v} is not {t}"),
                    });
                }
            }
        }
        // move the rows through the WAL record rather than cloning them —
        // the in-memory path pays nothing for durability support
        let rec = WalRecord::Insert {
            table: name.to_string(),
            rows,
        };
        self.log_durable(&rec)?;
        let WalRecord::Insert { rows, .. } = rec else {
            unreachable!()
        };
        let table = self.tables.get_mut(name).expect("validated above");
        // extend_rows also invalidates the buffer's columnar chunk cache
        Arc::make_mut(&mut table.rows).extend_rows(rows);
        self.maybe_checkpoint();
        Ok(())
    }

    pub fn table(&self, name: &str) -> Option<&BaseTable> {
        self.tables.get(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Fixed latency charged per dispatched query (models network
    /// round-trip and parse/plan overhead of a real client/server DBMS).
    pub fn set_dispatch_cost(&mut self, cost: Duration) {
        self.dispatch_cost = cost;
    }

    /// Set the parallelism configuration used by subsequent dispatches.
    pub fn set_par_config(&mut self, cfg: ParConfig) {
        self.par = cfg;
    }

    pub fn par_config(&self) -> ParConfig {
        self.par
    }

    /// A point-in-time [`QueryStats`] view assembled from the telemetry
    /// registry and the profile ring.
    pub fn stats(&self) -> QueryStats {
        let m = &self.metrics;
        QueryStats {
            queries: m.queries.get(),
            rows_out: m.rows_out.get(),
            nodes_evaluated: m.nodes_evaluated.get(),
            rows_produced: m.rows_produced.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            morsel_tasks: m.morsel_tasks.get(),
            par_nodes: m.par_nodes.get(),
            par_waves: m.par_waves.get(),
            vec_nodes: m.vec_nodes.get(),
            kernel_batches: m.kernel_batches.get(),
            profiles: self.profiles.lock().unwrap().clone(),
        }
    }

    /// Zero every registry metric (latency histograms included) and drop
    /// the retained profiles. Traces in the telemetry ring are untouched.
    pub fn reset_stats(&self) {
        self.telemetry.registry().reset();
        self.profiles.lock().unwrap().clear();
    }

    /// Dispatch **one query** — validate the plan, evaluate the DAG bottom-
    /// up (shared nodes once), return the root relation.
    pub fn execute(&self, plan: &Plan, root: NodeId) -> Result<Rel, EngineError> {
        Ok(self
            .execute_bundle(plan, &[root])?
            .pop()
            .expect("one root in, one relation out"))
    }

    /// Dispatch a bundle of queries and collect the results in order.
    ///
    /// The whole bundle is evaluated in **one pass** over the shared plan
    /// DAG: sub-plans common to several members run once, and independent
    /// members overlap on the wavefront scheduler. Accounting is
    /// unchanged from dispatching each member separately — every root
    /// still counts as one query and is charged `dispatch_cost`, so the
    /// Table 1 avalanche numbers measure the same client/server protocol.
    pub fn execute_bundle(&self, plan: &Plan, roots: &[NodeId]) -> Result<Vec<Rel>, EngineError> {
        if roots.is_empty() {
            return Ok(Vec::new());
        }
        let qid = self.next_query_id.fetch_add(1, AtOrd::Relaxed) + 1;
        let trace_id = ferry_telemetry::current_ctx().trace;
        let mut dispatch = ferry_telemetry::span("dispatch", "engine");
        dispatch
            .attr("query_id", qid)
            .attr("queries", roots.len())
            .attr("threads", self.par.threads);
        let start_ns = ferry_telemetry::now_ns();
        if !self.dispatch_cost.is_zero() {
            for _ in roots {
                spin_for(self.dispatch_cost);
            }
        }
        let schemas = infer_schema(plan)?;
        let mut local = QueryStats::default();
        let mut prof = Vec::new();
        let results = exec::run_many(self, plan, roots, &schemas, &mut local, &mut prof)?;
        let elapsed_ns = ferry_telemetry::now_ns().saturating_sub(start_ns);
        drop(dispatch);
        if self.telemetry.counters_on() {
            let m = &self.metrics;
            m.queries.add(roots.len() as u64);
            m.rows_out.add(results.iter().map(|r| r.len() as u64).sum());
            m.nodes_evaluated.add(local.nodes_evaluated);
            m.rows_produced.add(local.rows_produced);
            m.morsel_tasks.add(local.morsel_tasks);
            m.par_nodes.add(local.par_nodes);
            m.par_waves.add(local.par_waves);
            m.vec_nodes.add(local.vec_nodes);
            m.kernel_batches.add(local.kernel_batches);
            m.query_latency_ns.record(elapsed_ns);
            self.profiles.lock().unwrap().push(QueryProfile {
                query_id: qid,
                trace_id,
                roots: roots.len() as u32,
                elapsed: Duration::from_nanos(elapsed_ns),
                nodes: prof,
            });
        }
        Ok(results)
    }
}

/// Busy-wait for `d`. `thread::sleep` has millisecond-class granularity on
/// some platforms; the dispatch costs we model are tens of microseconds.
fn spin_for(d: Duration) {
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::{Ty, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::of(&[("a", Ty::Int), ("b", Ty::Str)]),
            vec!["a"],
        )
        .unwrap();
        db.insert(
            "t",
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_lookup() {
        let db = db();
        let t = db.table("t").unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.keys, vec!["a"]);
        assert!(db.table("nope").is_none());
    }

    #[test]
    fn insert_type_checked() {
        let mut db = db();
        let bad = db.insert("t", vec![vec![Value::str("no"), Value::str("x")]]);
        assert!(matches!(bad, Err(EngineError::TableMismatch { .. })));
        let bad_width = db.insert("t", vec![vec![Value::Int(1)]]);
        assert!(bad_width.is_err());
        let no_table = db.insert("zzz", vec![]);
        assert!(matches!(no_table, Err(EngineError::NoSuchTable(_))));
    }

    #[test]
    fn key_must_be_in_schema() {
        let mut db = Database::new();
        let r = db.create_table("t", Schema::of(&[("a", Ty::Int)]), vec!["zzz"]);
        assert!(r.is_err());
    }

    #[test]
    fn execute_counts_queries() {
        let db = db();
        let mut plan = Plan::new();
        let l = plan.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![Value::Int(5)]]);
        db.execute(&plan, l).unwrap();
        db.execute(&plan, l).unwrap();
        let stats = db.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rows_out, 2);
        db.reset_stats();
        assert_eq!(db.stats().queries, 0);
    }
}

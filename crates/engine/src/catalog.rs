//! The database: a catalog of base tables plus the query entry point.

use crate::error::EngineError;
use crate::exec;
use crate::par::ParConfig;
use crate::stats::QueryStats;
use ferry_algebra::{infer_schema, NodeId, Plan, Rel, Row, RowBuf, Schema};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A database-resident base table: schema, key columns (defining the
/// canonical order the `table` combinator exposes) and rows.
///
/// Rows sit behind an `Arc<RowBuf>` so a `TableRef` scan shares the
/// catalog's buffer — including its lazily-built columnar chunk cache —
/// with the query result instead of copying the table (`Arc::make_mut` on
/// insert preserves value semantics for writers).
#[derive(Debug, Clone)]
pub struct BaseTable {
    pub schema: Schema,
    /// Names of key columns (must be part of the schema). The key orders
    /// the table: the Ferry front-end materialises `pos` by row-numbering
    /// over these columns.
    pub keys: Vec<String>,
    pub rows: Arc<RowBuf>,
}

/// The in-memory database acting as the coprocessor.
///
/// `execute` is the client/server boundary: each call is **one query**
/// dispatched to the database, counted in [`QueryStats`] and charged
/// `dispatch_cost` of fixed latency (default zero; set it to model a
/// networked DBMS round-trip).
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, BaseTable>,
    dispatch_cost: Duration,
    /// Morsel/wavefront parallelism knobs used by every dispatch.
    par: ParConfig,
    stats: Mutex<QueryStats>,
    /// Monotone counter bumped whenever the *schema* of the catalog
    /// changes (tables created, replaced or force-installed). Compiled
    /// plans are data-independent, so row inserts do **not** bump it —
    /// the runtime's plan cache keys on this version to invalidate
    /// bundles exactly when recompilation could change them.
    schema_version: u64,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Create (or replace) a base table.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        keys: Vec<&str>,
    ) -> Result<(), EngineError> {
        let name = name.into();
        for k in &keys {
            if !schema.contains(k) {
                return Err(EngineError::TableMismatch {
                    table: name,
                    detail: format!("key column {k} not in schema {schema}"),
                });
            }
        }
        self.tables.insert(
            name,
            BaseTable {
                schema,
                keys: keys.into_iter().map(String::from).collect(),
                rows: Arc::new(RowBuf::default()),
            },
        );
        self.schema_version += 1;
        Ok(())
    }

    /// Install a table **without** the `create_table` validation — the
    /// restore-from-snapshot escape hatch. The caller is responsible for
    /// the invariants (`keys ⊆ schema`, row cells typed per schema);
    /// consumers such as `Connection::interpreter_tables` must therefore
    /// report violations as errors rather than assume them impossible.
    pub fn install_table(&mut self, name: impl Into<String>, table: BaseTable) {
        self.tables.insert(name.into(), table);
        self.schema_version += 1;
    }

    /// The current schema version (see the field docs).
    pub fn schema_version(&self) -> u64 {
        self.schema_version
    }

    /// Record a plan-cache outcome in this database's [`QueryStats`].
    /// The cache itself lives in the runtime (`ferry::Connection`); the
    /// counters live here so one `stats()` call tells the whole story of
    /// a workload (queries dispatched *and* compilations amortised).
    pub fn record_cache(&self, hit: bool) {
        let mut stats = self.stats.lock().unwrap();
        if hit {
            stats.cache_hits += 1;
        } else {
            stats.cache_misses += 1;
        }
    }

    /// Append rows to a base table (types are checked).
    pub fn insert(&mut self, name: &str, rows: Vec<Row>) -> Result<(), EngineError> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| EngineError::NoSuchTable(name.to_string()))?;
        for row in &rows {
            if row.len() != table.schema.len() {
                return Err(EngineError::TableMismatch {
                    table: name.to_string(),
                    detail: format!(
                        "row width {} != schema width {}",
                        row.len(),
                        table.schema.len()
                    ),
                });
            }
            for (v, (c, t)) in row.iter().zip(table.schema.cols()) {
                if v.ty() != *t {
                    return Err(EngineError::TableMismatch {
                        table: name.to_string(),
                        detail: format!("column {c}: value {v} is not {t}"),
                    });
                }
            }
        }
        // extend_rows also invalidates the buffer's columnar chunk cache
        Arc::make_mut(&mut table.rows).extend_rows(rows);
        Ok(())
    }

    pub fn table(&self, name: &str) -> Option<&BaseTable> {
        self.tables.get(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Fixed latency charged per dispatched query (models network
    /// round-trip and parse/plan overhead of a real client/server DBMS).
    pub fn set_dispatch_cost(&mut self, cost: Duration) {
        self.dispatch_cost = cost;
    }

    /// Set the parallelism configuration used by subsequent dispatches.
    pub fn set_par_config(&mut self, cfg: ParConfig) {
        self.par = cfg;
    }

    pub fn par_config(&self) -> ParConfig {
        self.par
    }

    pub fn stats(&self) -> QueryStats {
        self.stats.lock().unwrap().clone()
    }

    pub fn reset_stats(&self) {
        self.stats.lock().unwrap().reset();
    }

    /// Dispatch **one query** — validate the plan, evaluate the DAG bottom-
    /// up (shared nodes once), return the root relation.
    pub fn execute(&self, plan: &Plan, root: NodeId) -> Result<Rel, EngineError> {
        if !self.dispatch_cost.is_zero() {
            spin_for(self.dispatch_cost);
        }
        let schemas = infer_schema(plan)?;
        let mut local = QueryStats::default();
        let result = exec::run(self, plan, root, &schemas, &mut local)?;
        local.queries = 1;
        local.rows_out = result.len() as u64;
        self.stats.lock().unwrap().absorb(local);
        Ok(result)
    }

    /// Dispatch a bundle of queries and collect the results in order.
    ///
    /// The whole bundle is evaluated in **one pass** over the shared plan
    /// DAG: sub-plans common to several members run once, and independent
    /// members overlap on the wavefront scheduler. Accounting is
    /// unchanged from dispatching each member separately — every root
    /// still counts as one query and is charged `dispatch_cost`, so the
    /// Table 1 avalanche numbers measure the same client/server protocol.
    pub fn execute_bundle(&self, plan: &Plan, roots: &[NodeId]) -> Result<Vec<Rel>, EngineError> {
        if roots.is_empty() {
            return Ok(Vec::new());
        }
        if !self.dispatch_cost.is_zero() {
            for _ in roots {
                spin_for(self.dispatch_cost);
            }
        }
        let schemas = infer_schema(plan)?;
        let mut local = QueryStats::default();
        let results = exec::run_many(self, plan, roots, &schemas, &mut local)?;
        local.queries = roots.len() as u64;
        local.rows_out = results.iter().map(|r| r.len() as u64).sum();
        self.stats.lock().unwrap().absorb(local);
        Ok(results)
    }
}

/// Busy-wait for `d`. `thread::sleep` has millisecond-class granularity on
/// some platforms; the dispatch costs we model are tens of microseconds.
fn spin_for(d: Duration) {
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::{Ty, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::of(&[("a", Ty::Int), ("b", Ty::Str)]),
            vec!["a"],
        )
        .unwrap();
        db.insert(
            "t",
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_lookup() {
        let db = db();
        let t = db.table("t").unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.keys, vec!["a"]);
        assert!(db.table("nope").is_none());
    }

    #[test]
    fn insert_type_checked() {
        let mut db = db();
        let bad = db.insert("t", vec![vec![Value::str("no"), Value::str("x")]]);
        assert!(matches!(bad, Err(EngineError::TableMismatch { .. })));
        let bad_width = db.insert("t", vec![vec![Value::Int(1)]]);
        assert!(bad_width.is_err());
        let no_table = db.insert("zzz", vec![]);
        assert!(matches!(no_table, Err(EngineError::NoSuchTable(_))));
    }

    #[test]
    fn key_must_be_in_schema() {
        let mut db = Database::new();
        let r = db.create_table("t", Schema::of(&[("a", Ty::Int)]), vec!["zzz"]);
        assert!(r.is_err());
    }

    #[test]
    fn execute_counts_queries() {
        let db = db();
        let mut plan = Plan::new();
        let l = plan.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![Value::Int(5)]]);
        db.execute(&plan, l).unwrap();
        db.execute(&plan, l).unwrap();
        let stats = db.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rows_out, 2);
        db.reset_stats();
        assert_eq!(db.stats().queries, 0);
    }
}

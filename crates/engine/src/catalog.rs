//! The database: a catalog of base tables plus the query entry point.
//!
//! # Concurrency model (MVCC + group commit)
//!
//! The catalog is multi-versioned. Every committed transaction produces a
//! fresh immutable [`Catalog`] version behind an `Arc`; readers *pin* the
//! published version with one brief `RwLock` read ([`Database::snapshot`])
//! and then run entirely lock-free against it — a writer committing
//! mid-query can never tear a bundle, stall a scan, or be observed
//! half-applied. Writers serialise on a commit mutex, build their version
//! off to the side (copy-on-write per table: cloning the table map shares
//! every `Arc<RowBuf>`; the first insert into a table copies its buffer
//! once), and commit by atomically installing the new version.
//!
//! Durability composes via **group commit**: under
//! [`FsyncPolicy::Always`] a committing transaction appends its WAL
//! record and then *enqueues* for durability instead of fsyncing itself.
//! Whichever waiter finds the fsync slot free becomes the leader, runs
//! one fsync covering every record appended so far (the WAL mutex is
//! released during the fsync, so more committers keep enqueuing), then
//! publishes the newest catalog version the fsync covered and wakes all
//! waiters whose LSNs are now durable. Acked ⇒ durable is preserved —
//! versions are *published to readers only after* their LSN is synced —
//! while N concurrent writers share one fsync instead of paying N.
//!
//! A failed group fsync keeps the PR-5 contract: the storage layer
//! truncates the un-synced tail and poisons the WAL; here the pending
//! queue is cleared, every waiter gets the error (nothing they were told
//! failed can ever surface), and the commit head rolls back to the
//! published version so the catalog agrees with the log.

use crate::error::EngineError;
use crate::exec;
use crate::par::ParConfig;
use crate::shard::{shard_of, table_home, MAX_SHARDS};
use crate::stats::{ProfileRing, QueryProfile, QueryStats};
use crate::sys::{self, DispatchCtx, SlowQueryRecord, SysTableDef, SLOW_RING_CAP};
use ferry_algebra::{infer_schema, NodeId, Plan, Rel, Row, RowBuf, Schema, Value};
use ferry_storage::{
    DurabilityConfig, FsyncPolicy, RecoveryReport, ShardRecoveryReport, ShardTableDef,
    ShardTableImage, ShardedStorage, StdFs, Storage, StorageError, TableImage, Vfs, WalRecord,
};
use ferry_telemetry::{names, Counter, Gauge, Histogram, Registry, Telemetry, TelemetryConfig};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering as AtOrd};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// A database-resident base table: schema, key columns (defining the
/// canonical order the `table` combinator exposes) and rows.
///
/// Rows sit behind an `Arc<RowBuf>` so a `TableRef` scan shares the
/// catalog's buffer — including its lazily-built columnar chunk cache —
/// with the query result instead of copying the table (`Arc::make_mut` on
/// insert preserves value semantics for writers).
#[derive(Debug, Clone)]
pub struct BaseTable {
    pub schema: Schema,
    /// Names of key columns (must be part of the schema). The key orders
    /// the table: the Ferry front-end materialises `pos` by row-numbering
    /// over these columns.
    pub keys: Vec<String>,
    pub rows: Arc<RowBuf>,
    /// Hash-partition state when this table lives in a **sharded**
    /// database (`None` in unsharded databases). Kept row-aligned with
    /// `rows` by every insert.
    pub shard: Option<Arc<TableShards>>,
}

/// Where each row of one table lives across a sharded database's S
/// shards. The planner prunes scans with `sels` and partitions
/// shard-local aggregations with `shard_of`; the storage layer routes
/// WAL appends and snapshot slices by the same assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct TableShards {
    /// The declared partitioning column, `None` for tables created
    /// without one — their rows all live on the `home` shard.
    pub key: Option<String>,
    /// Home shard of an unsharded table (stable hash of the table name).
    pub home: u32,
    /// Owning shard of each buffer row (aligned with `BaseTable::rows`).
    pub shard_of: Vec<u32>,
    /// Ascending buffer positions per shard — the pruned-scan selection
    /// vectors. `sels.len()` is the database's shard count S.
    pub sels: Vec<Vec<u32>>,
    /// Lazily-built dense per-shard row buffers (the physical partitions).
    /// A scan pruned to a *single* shard returns `dense[k]` instead of a
    /// selection vector over the global buffer, so its chunk cache — and
    /// everything vectorized downstream — works on contiguous data. Space
    /// for time: populated shards duplicate their rows; any insert
    /// invalidates ([`DenseCache`] resets on clone, `push` takes the
    /// touched slot).
    dense: DenseCache,
}

/// The per-shard dense-buffer cache of one [`TableShards`]. Interior
/// mutability (`OnceLock`) lets concurrent readers race to build a
/// partition; a manual `Clone` that yields *empty* slots keeps the
/// copy-on-write insert path (`Arc::make_mut`) from inheriting buffers
/// that no longer match `sels`.
struct DenseCache(Vec<std::sync::OnceLock<Arc<RowBuf>>>);

impl DenseCache {
    fn new(shards: usize) -> DenseCache {
        DenseCache((0..shards).map(|_| std::sync::OnceLock::new()).collect())
    }
}

impl Clone for DenseCache {
    fn clone(&self) -> DenseCache {
        DenseCache::new(self.0.len())
    }
}

impl PartialEq for DenseCache {
    /// Caches never participate in equality — they are derived state.
    fn eq(&self, _: &DenseCache) -> bool {
        true
    }
}

impl std::fmt::Debug for DenseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let built: Vec<usize> = (0..self.0.len())
            .filter(|&k| self.0[k].get().is_some())
            .collect();
        write!(f, "DenseCache(built: {built:?})")
    }
}

impl BaseTable {
    /// This table with its shard assignment (re)built for an S-shard
    /// database by hashing every row's shard-key cell — the recovery /
    /// install normalisation path. Errors when the declared key column
    /// is not in the schema.
    fn resharded(
        mut self,
        name: &str,
        shard_key: Option<&str>,
        shards: usize,
    ) -> Result<BaseTable, EngineError> {
        let key_idx = match shard_key {
            Some(k) => Some(
                self.schema
                    .index_of(k)
                    .ok_or_else(|| EngineError::TableMismatch {
                        table: name.to_string(),
                        detail: format!("shard key column {k} not in schema {}", self.schema),
                    })?,
            ),
            None => None,
        };
        let mut sh = TableShards::new(
            shard_key.map(String::from),
            table_home(name, shards),
            shards,
        );
        for (pos, row) in self.rows.rows().iter().enumerate() {
            sh.push(pos as u32, key_idx.map(|c| &row[c]));
        }
        self.shard = Some(Arc::new(sh));
        Ok(self)
    }
}

impl TableShards {
    /// Empty shard state for a new table in an S-shard database.
    fn new(key: Option<String>, home: u32, shards: usize) -> TableShards {
        TableShards {
            key,
            home,
            shard_of: Vec::new(),
            sels: vec![Vec::new(); shards],
            dense: DenseCache::new(shards),
        }
    }

    /// Route one appended row (buffer position `pos`, shard-key cell
    /// `cell` when the table is keyed) and record it.
    fn push(&mut self, pos: u32, cell: Option<&ferry_algebra::Value>) -> u32 {
        let k = match (&self.key, cell) {
            (Some(_), Some(v)) => shard_of(v, self.sels.len()),
            _ => self.home,
        };
        self.shard_of.push(k);
        self.sels[k as usize].push(pos);
        // the shard's dense buffer (if built on this unpublished clone)
        // no longer covers the appended row
        self.dense.0[k as usize].take();
        k
    }

    /// Shard `k`'s rows of `buf` as a dense buffer, in buffer order
    /// (within-shard order equals global insert order restricted to the
    /// shard, so a scan of this equals the selection-vector view of the
    /// same shard). Built on first use and cached; chunk caches are
    /// seeded by gathering whatever columns `buf` has already transposed,
    /// so a warm table stays transposed through partitioning. A shard
    /// holding *every* row (unkeyed tables on their home shard) shares
    /// `buf` itself rather than copying it.
    pub fn dense(&self, k: usize, buf: &Arc<RowBuf>, ncols: usize) -> Arc<RowBuf> {
        let sel = &self.sels[k];
        if sel.len() == buf.rows().len() {
            return buf.clone();
        }
        self.dense.0[k]
            .get_or_init(|| {
                let rows = buf.rows();
                let part = Arc::new(RowBuf::new(
                    sel.iter().map(|&i| rows[i as usize].clone()).collect(),
                ));
                for col in 0..ncols {
                    if let Some(chunk) = buf.cached_col(col) {
                        part.seed_chunk(col, Arc::new(chunk.gather(sel)));
                    }
                }
                part
            })
            .clone()
    }

    /// Is shard `k`'s dense partition currently built? (`ferry.shards`
    /// residency column; purely observational, never builds.)
    pub fn dense_resident(&self, k: usize) -> bool {
        self.dense.0.get(k).is_some_and(|s| s.get().is_some())
    }
}

/// Incrementally-maintained size statistics of one base table, versioned
/// with the catalog (cloned per transaction like the table map — two
/// `u64`s per table, so versioning them is free). `ferry.tables` reads
/// these instead of walking row buffers per scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Approximate resident bytes of the table's rows
    /// ([`sys::row_bytes`] heuristic, summed at insert time).
    pub bytes: u64,
    /// Approximate bytes this table has contributed to the WAL over its
    /// lifetime (durable databases; 0 in-memory). `ferry.tables` reports
    /// this minus the mark taken at the last successful checkpoint.
    pub wal_bytes: u64,
}

/// One immutable version of the catalog. Published versions are never
/// mutated — writers clone the table map (sharing row buffers) and
/// install a successor with `epoch + 1`.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, BaseTable>,
    /// Per-table [`TableStats`], keyed like `tables` and maintained by
    /// the same transactions.
    stats: HashMap<String, TableStats>,
    /// Bumped by DDL only (create/install); row inserts leave it alone.
    /// Compiled plans are data-independent, so the runtime's plan cache
    /// keys on this to invalidate exactly when recompilation could
    /// change a bundle.
    schema_version: u64,
    /// Bumped by **every** committed transaction — the version number of
    /// this catalog. Exported as the `engine.epoch` gauge.
    epoch: u64,
}

impl Catalog {
    /// Storage images of every table, sorted for deterministic snapshot
    /// bytes regardless of `HashMap` order.
    fn images(&self) -> Vec<TableImage> {
        let mut images: Vec<TableImage> = self
            .tables
            .iter()
            .map(|(name, t)| TableImage {
                name: name.clone(),
                schema: t.schema.clone(),
                keys: t.keys.clone(),
                rows: t.rows.rows().to_vec(),
            })
            .collect();
        images.sort_by(|a, b| a.name.cmp(&b.name));
        images
    }

    /// Sharded-storage images of every table (sorted like [`Catalog::images`]):
    /// rows in global insert order, each tagged with its owning shard.
    fn shard_images(&self) -> Vec<ShardTableImage> {
        let mut images: Vec<ShardTableImage> = self
            .tables
            .iter()
            .map(|(name, t)| {
                let sh = t.shard.as_ref().expect("sharded database table");
                ShardTableImage {
                    def: ShardTableDef {
                        name: name.clone(),
                        schema: t.schema.clone(),
                        keys: t.keys.clone(),
                        shard_key: sh.key.clone(),
                    },
                    rows: t.rows.rows().to_vec(),
                    shard_of: sh.shard_of.clone(),
                }
            })
            .collect();
        images.sort_by(|a, b| a.def.name.cmp(&b.def.name));
        images
    }
}

/// The durability substrate behind a database: one WAL + snapshot
/// ([`Storage`]), or S shard WALs + a commit log + per-shard snapshots
/// ([`ShardedStorage`]). The group-commit machinery above is shared —
/// a sharded GSN is the LSN-equivalent watermark.
#[derive(Debug)]
enum Store {
    Single(Storage),
    Sharded(ShardedStorage),
}

impl Store {
    fn config(&self) -> DurabilityConfig {
        match self {
            Store::Single(s) => s.config(),
            Store::Sharded(s) => s.config(),
        }
    }

    /// Highest LSN/GSN known durable.
    fn synced(&self) -> u64 {
        match self {
            Store::Single(s) => s.synced_lsn(),
            Store::Sharded(s) => s.durable_gsn(),
        }
    }

    fn group_sync(&self) -> Result<u64, StorageError> {
        match self {
            Store::Single(s) => s.group_sync(),
            Store::Sharded(s) => s.group_sync(),
        }
    }

    fn poisoned(&self) -> bool {
        match self {
            Store::Single(s) => s.poisoned(),
            Store::Sharded(s) => s.poisoned(),
        }
    }

    fn checkpoint_due(&self) -> bool {
        match self {
            Store::Single(s) => s.checkpoint_due(),
            Store::Sharded(s) => s.checkpoint_due(),
        }
    }

    fn checkpoint(&self, head: &Catalog) -> Result<u64, StorageError> {
        match self {
            Store::Single(s) => s.checkpoint(&head.images()),
            Store::Sharded(s) => s.checkpoint(&head.shard_images()),
        }
    }

    /// Log one committed transaction's records; returns its LSN/GSN.
    fn log(&self, tx: &mut Tx) -> Result<u64, StorageError> {
        match self {
            Store::Single(s) => s.log_batch(std::mem::take(&mut tx.recs)),
            Store::Sharded(s) => {
                let shard_rows: Vec<(usize, Vec<WalRecord>)> = std::mem::take(&mut tx.shard_recs)
                    .into_iter()
                    .enumerate()
                    .filter(|(_, recs)| !recs.is_empty())
                    .collect();
                s.log_commit(std::mem::take(&mut tx.recs), shard_rows)
            }
        }
    }
}

/// Writer-side state guarded by the commit mutex: the newest committed
/// catalog version. Under group commit this can run *ahead* of the
/// published version while its LSN awaits the batch fsync.
#[derive(Debug)]
struct Committer {
    head: Arc<Catalog>,
}

/// Group-commit state: the durable watermark, the fsync-leader slot, and
/// the committed-but-unpublished versions awaiting their LSN.
#[derive(Debug, Default)]
struct GroupCommit {
    /// Highest LSN known durable (matches `Storage::synced_lsn`).
    durable_lsn: u64,
    /// Is a leader's fsync (or a checkpoint) in flight? At most one
    /// thread syncs at a time; everyone else waits on the condvar.
    syncing: bool,
    /// Set when a group fsync failed: the WAL is poisoned, every pending
    /// commit was nacked, and all further durable commits fail until the
    /// database is reopened.
    poisoned: Option<String>,
    /// `(lsn, version)` of committed transactions not yet published,
    /// oldest first. Publishing pops every entry the fsync covered and
    /// installs the newest.
    pending: VecDeque<(u64, Arc<Catalog>)>,
}

/// The in-memory database acting as the coprocessor.
///
/// `execute` is the client/server boundary: each call is **one query**
/// dispatched to the database, counted in [`QueryStats`] and charged
/// `dispatch_cost` of fixed latency (default zero; set it to model a
/// networked DBMS round-trip).
///
/// All methods take `&self` — share a `Database` behind a plain `Arc`.
/// Reads go through [`Database::snapshot`]; writes through
/// [`Database::transact`] (or the `create_table`/`insert` conveniences,
/// which are single-operation transactions). See the module docs for the
/// locking model. Lock order, for the auditor: `commit` ≺ `gc` ≺
/// `current`; none is ever held across a query, and only `gc` waiters
/// block on an fsync.
#[derive(Debug)]
pub struct Database {
    /// The published catalog version readers pin. Held only for the
    /// nanoseconds an `Arc` clone or store takes.
    current: RwLock<Arc<Catalog>>,
    /// Writer serialisation + the commit head.
    commit: Mutex<Committer>,
    /// Group-commit queue; `gc_cv` signals durability advances and
    /// leader-slot hand-offs.
    gc: Mutex<GroupCommit>,
    gc_cv: Condvar,
    /// Fixed per-query dispatch latency in nanoseconds.
    dispatch_cost_ns: AtomicU64,
    /// Morsel/wavefront parallelism knobs used by every dispatch.
    par: Mutex<ParConfig>,
    /// The observability hub: config, metrics registry, trace ring.
    /// Per-instance (no process globals), so concurrent databases and
    /// tests never see each other's numbers.
    telemetry: Arc<Telemetry>,
    /// Cached counter handles into `telemetry`'s registry — the hot path
    /// bumps atomics without touching the registry lock.
    metrics: EngineMetrics,
    /// Per-node profiles of the most recent dispatches.
    profiles: Mutex<ProfileRing>,
    /// Dispatch id allocator (`QueryProfile::query_id`; monotone, 1-based).
    next_query_id: AtomicU64,
    /// The durability substrate, when this database was opened with
    /// [`Database::open`] / [`Database::open_sharded`]. `None` =
    /// in-memory only (the default). Every transaction is appended to
    /// its WAL(s) **before** being applied in memory (log-before-ack).
    storage: Option<Store>,
    /// Shard count of a hash-partitioned database (`0` = unsharded).
    /// Set by `new_sharded` / `open_sharded*`, immutable afterwards.
    shards: u32,
    /// What recovery found and did, for databases opened durably.
    recovery: Option<RecoveryReport>,
    /// The sharded sibling of `recovery` (databases opened with
    /// [`Database::open_sharded`]).
    shard_recovery: Option<ShardRecoveryReport>,
    /// The most recent *auto*-checkpoint failure. Mutations do not surface
    /// these (see [`Database::maybe_checkpoint`]); callers that care poll
    /// here or watch the `storage.checkpoint_failures` counter.
    last_checkpoint_error: Mutex<Option<String>>,
    /// Bounded ring of captured slow dispatches, oldest first (see
    /// [`sys::SlowQueryRecord`]; scanned as `ferry.slow_queries`).
    slow: Mutex<VecDeque<SlowQueryRecord>>,
    /// Extrinsic system tables registered by upper layers (e.g. the
    /// runtime's `ferry.plan_cache`), keyed by full `ferry.*` name.
    sys_tables: Mutex<HashMap<String, SysTableDef>>,
    /// Per-table `wal_bytes` marks taken at the last successful
    /// checkpoint; `ferry.tables` reports WAL bytes *since* then.
    ckpt_marks: Mutex<HashMap<String, u64>>,
}

/// The engine's named metrics, resolved once per database. Counter names
/// are the public contract (`DESIGN.md` lists them); `Database::stats()`
/// reads these same handles back into a [`QueryStats`] view.
#[derive(Debug)]
struct EngineMetrics {
    queries: Arc<Counter>,
    rows_out: Arc<Counter>,
    nodes_evaluated: Arc<Counter>,
    rows_produced: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    morsel_tasks: Arc<Counter>,
    par_nodes: Arc<Counter>,
    par_waves: Arc<Counter>,
    vec_nodes: Arc<Counter>,
    kernel_batches: Arc<Counter>,
    fused_pipelines: Arc<Counter>,
    fused_nodes: Arc<Counter>,
    shard_rows: Arc<Counter>,
    shard_pruned: Arc<Counter>,
    checkpoint_failures: Arc<Counter>,
    query_latency_ns: Arc<Histogram>,
    /// The published catalog epoch (gauge, monotone under one process).
    epoch: Arc<Gauge>,
    /// Transactions made durable per group-commit fsync (batch size).
    commit_batch: Arc<Histogram>,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> EngineMetrics {
        // these names are code-controlled, so a kind conflict cannot
        // happen from within the workspace; if a foreign registrant ever
        // claims one as a different kind, fall back to a detached handle
        // (the numbers are lost, the engine keeps running)
        let counter = |name: &str| registry.counter(name).unwrap_or_default();
        EngineMetrics {
            queries: counter(names::ENGINE_QUERIES),
            rows_out: counter(names::ENGINE_ROWS_OUT),
            nodes_evaluated: counter(names::ENGINE_NODES_EVALUATED),
            rows_produced: counter(names::ENGINE_ROWS_PRODUCED),
            cache_hits: counter(names::RUNTIME_CACHE_HITS),
            cache_misses: counter(names::RUNTIME_CACHE_MISSES),
            morsel_tasks: counter(names::ENGINE_MORSEL_TASKS),
            par_nodes: counter(names::ENGINE_PAR_NODES),
            par_waves: counter(names::ENGINE_PAR_WAVES),
            vec_nodes: counter(names::ENGINE_VEC_NODES),
            kernel_batches: counter(names::ENGINE_KERNEL_BATCHES),
            fused_pipelines: counter(names::ENGINE_FUSED_PIPELINES),
            fused_nodes: counter(names::ENGINE_FUSED_NODES),
            shard_rows: counter(names::ENGINE_SHARD_ROWS),
            shard_pruned: counter(names::ENGINE_SHARD_PRUNED),
            checkpoint_failures: counter(names::STORAGE_CHECKPOINT_FAILURES),
            query_latency_ns: registry
                .histogram(names::ENGINE_QUERY_LATENCY_NS)
                .unwrap_or_default(),
            epoch: registry.gauge(names::ENGINE_EPOCH).unwrap_or_default(),
            commit_batch: registry
                .histogram(names::STORAGE_COMMIT_BATCH_RECORDS)
                .unwrap_or_default(),
        }
    }
}

impl Default for Database {
    fn default() -> Database {
        Database::with_telemetry(Arc::new(Telemetry::default()))
    }
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Build a database reporting into an existing telemetry hub (e.g.
    /// one shared with other databases of a process).
    pub fn with_telemetry(telemetry: Arc<Telemetry>) -> Database {
        let metrics = EngineMetrics::new(telemetry.registry());
        Database {
            current: RwLock::new(Arc::new(Catalog::default())),
            commit: Mutex::new(Committer {
                head: Arc::new(Catalog::default()),
            }),
            gc: Mutex::new(GroupCommit::default()),
            gc_cv: Condvar::new(),
            dispatch_cost_ns: AtomicU64::new(0),
            par: Mutex::new(ParConfig::default()),
            telemetry,
            metrics,
            profiles: Mutex::new(ProfileRing::default()),
            next_query_id: AtomicU64::new(0),
            storage: None,
            shards: 0,
            recovery: None,
            shard_recovery: None,
            last_checkpoint_error: Mutex::new(None),
            slow: Mutex::new(VecDeque::new()),
            sys_tables: Mutex::new(HashMap::new()),
            ckpt_marks: Mutex::new(HashMap::new()),
        }
    }

    /// An in-memory database whose base tables are hash-partitioned
    /// across `shards` logical shards: every table routes its rows by
    /// the stable [`crate::shard::shard_hash`], the planner prunes
    /// shard-key equality scans and runs shard-local aggregations. Use
    /// [`Database::open_sharded`] for the durable variant (one WAL +
    /// snapshot per shard).
    pub fn new_sharded(shards: usize) -> Result<Database, EngineError> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(EngineError::Storage(StorageError::Corrupt(format!(
                "shard count {shards} out of range (1..={MAX_SHARDS})"
            ))));
        }
        let mut db = Database::new();
        db.shards = shards as u32;
        Ok(db)
    }

    /// Open (or create) a **durable** database rooted at `path`: recover
    /// the catalog from its snapshot + WAL, then log every subsequent
    /// mutation there before acknowledging it.
    pub fn open(path: impl AsRef<Path>, config: DurabilityConfig) -> Result<Database, EngineError> {
        let vfs: Arc<dyn Vfs> = Arc::new(StdFs::new(path.as_ref())?);
        Database::open_with_vfs(vfs, config)
    }

    /// [`Database::open`] over an explicit VFS — the entry point the
    /// fault-injection harness uses with a `ferry_storage::FaultFs`.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        config: DurabilityConfig,
    ) -> Result<Database, EngineError> {
        let mut db = Database::new();
        let recovered = Storage::open(vfs, config, db.telemetry.registry())?;
        // recovered tables are installed directly (they were validated
        // when first logged); each install bumps `schema_version`, so
        // any plan cache keyed on a fresh database misses as it must
        let mut cat = Catalog::default();
        for img in recovered.tables {
            let bytes: u64 = img.rows.iter().map(sys::row_bytes).sum();
            cat.stats.insert(
                img.name.clone(),
                TableStats {
                    bytes,
                    wal_bytes: 0,
                },
            );
            cat.tables.insert(
                img.name,
                BaseTable {
                    schema: img.schema,
                    keys: img.keys,
                    rows: Arc::new(RowBuf::new(img.rows)),
                    shard: None,
                },
            );
            cat.schema_version += 1;
            cat.epoch += 1;
        }
        db.metrics.epoch.set(cat.epoch as i64);
        let cat = Arc::new(cat);
        db.current = RwLock::new(cat.clone());
        db.commit = Mutex::new(Committer { head: cat });
        db.gc = Mutex::new(GroupCommit {
            durable_lsn: recovered.storage.synced_lsn(),
            ..GroupCommit::default()
        });
        db.storage = Some(Store::Single(recovered.storage));
        db.recovery = Some(recovered.report);
        Ok(db)
    }

    /// Open (or create) a durable **hash-partitioned** database rooted
    /// at `path`: S shard WALs + per-shard snapshots + one commit log,
    /// recovered in parallel to the epoch-consistent cut (see
    /// `ferry_storage::ShardedStorage`). `shards` must match the
    /// on-disk shard count of an existing directory.
    pub fn open_sharded(
        path: impl AsRef<Path>,
        shards: usize,
        config: DurabilityConfig,
    ) -> Result<Database, EngineError> {
        let vfs: Arc<dyn Vfs> = Arc::new(StdFs::new(path.as_ref())?);
        Database::open_sharded_with_vfs(vfs, shards, config)
    }

    /// [`Database::open_sharded`] over an explicit VFS (fault-injection
    /// entry point).
    pub fn open_sharded_with_vfs(
        vfs: Arc<dyn Vfs>,
        shards: usize,
        config: DurabilityConfig,
    ) -> Result<Database, EngineError> {
        let mut db = Database::new_sharded(shards)?;
        let recovered = ShardedStorage::open(vfs, shards, config, db.telemetry.registry())?;
        let mut cat = Catalog::default();
        for img in recovered.tables {
            // the in-memory shard assignment is **re-derived** from the
            // versioned hash rather than trusted from disk: ShardHash is
            // stable across processes, so this reproduces the pre-crash
            // assignment exactly (property-tested), and it also routes
            // commit-log-resident rows (`NO_SHARD` from InstallTable
            // payloads) onto real shards for the next checkpoint
            let bytes: u64 = img.rows.iter().map(sys::row_bytes).sum();
            cat.stats.insert(
                img.def.name.clone(),
                TableStats {
                    bytes,
                    wal_bytes: 0,
                },
            );
            let table = BaseTable {
                schema: img.def.schema,
                keys: img.def.keys,
                rows: Arc::new(RowBuf::new(img.rows)),
                shard: None,
            }
            .resharded(&img.def.name, img.def.shard_key.as_deref(), shards)?;
            cat.tables.insert(img.def.name, table);
            cat.schema_version += 1;
            cat.epoch += 1;
        }
        db.metrics.epoch.set(cat.epoch as i64);
        let cat = Arc::new(cat);
        db.current = RwLock::new(cat.clone());
        db.commit = Mutex::new(Committer { head: cat });
        db.gc = Mutex::new(GroupCommit {
            durable_lsn: recovered.storage.durable_gsn(),
            ..GroupCommit::default()
        });
        db.storage = Some(Store::Sharded(recovered.storage));
        db.shard_recovery = Some(recovered.report);
        Ok(db)
    }

    /// Shard count of a hash-partitioned database (`0` = unsharded).
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    // ------------------------------------------------------------ reads

    /// Pin the published catalog version: one `RwLock` read to clone an
    /// `Arc`, then every table lookup and query in this snapshot is
    /// lock-free and immune to concurrent commits. This is *the* read
    /// path — queries, compilation and bundle execution all see exactly
    /// one epoch.
    pub fn snapshot(&self) -> Snapshot<'_> {
        Snapshot {
            db: self,
            cat: self.current.read().unwrap().clone(),
        }
    }

    /// The published catalog epoch (bumped by every committed
    /// transaction).
    pub fn epoch(&self) -> u64 {
        self.current.read().unwrap().epoch
    }

    /// The current schema version (see the [`Catalog`] field docs).
    pub fn schema_version(&self) -> u64 {
        self.current.read().unwrap().schema_version
    }

    /// A point-in-time copy of one table's catalog entry (schema and keys
    /// cloned, rows shared). Prefer [`Database::snapshot`] when reading
    /// more than one thing — each `table` call pins its own version.
    pub fn table(&self, name: &str) -> Option<BaseTable> {
        self.current.read().unwrap().tables.get(name).cloned()
    }

    /// Names of every table in the published version, unordered.
    pub fn table_names(&self) -> Vec<String> {
        self.current
            .read()
            .unwrap()
            .tables
            .keys()
            .cloned()
            .collect()
    }

    // ----------------------------------------------------------- writes

    /// Run `f` as one atomic transaction. The closure mutates a private
    /// working version forked off the commit head (read-your-own-writes
    /// within the transaction); if it succeeds and changed anything, the
    /// whole transaction is WAL-logged as **one record** (multi-operation
    /// transactions as an atomic [`WalRecord::Batch`]) and the new
    /// catalog version is installed for readers — after its LSN is
    /// group-commit durable under [`FsyncPolicy::Always`], immediately
    /// under the ack-before-durable policies. An `Err` from the closure
    /// (or from logging) commits nothing: readers never saw the working
    /// version, and the head is unchanged.
    pub fn transact<T>(
        &self,
        f: impl FnOnce(&mut Tx) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        let mut commit = self.commit.lock().unwrap();
        let head = commit.head.clone();
        let mut tx = Tx {
            work: Catalog {
                tables: head.tables.clone(),
                stats: head.stats.clone(),
                schema_version: head.schema_version,
                epoch: head.epoch + 1,
            },
            recs: Vec::new(),
            shard_recs: vec![Vec::new(); self.shards as usize],
            durable: self.storage.is_some(),
            shards: self.shards,
            dirty: false,
        };
        let out = f(&mut tx)?;
        if !tx.dirty {
            return Ok(out); // read-only: nothing to log or install
        }
        if let Some(storage) = &self.storage {
            // log-before-ack: the WAL sees the transaction before memory
            let lsn = storage.log(&mut tx)?;
            let version = Arc::new(tx.work);
            commit.head = version.clone();
            if matches!(storage.config().fsync, FsyncPolicy::Always) {
                // enqueue for the batch fsync while still ordered by the
                // commit lock; publish happens when a leader covers us
                let mut gc = self.gc.lock().unwrap();
                if let Some(msg) = gc.poisoned.clone() {
                    // a leader's fsync failed between our log_batch and
                    // this enqueue: our record sits in the truncated
                    // tail and the pending queue was already cleared —
                    // fail the commit rather than enqueue into a
                    // poisoned database. Restore the head we forked
                    // from (the poisoning leader re-anchors it on
                    // `current` once we release the commit lock anyway)
                    drop(gc);
                    commit.head = head;
                    return Err(EngineError::Storage(StorageError::Io(msg)));
                }
                gc.pending.push_back((lsn, version));
                drop(gc);
                drop(commit);
                self.wait_durable(lsn)?;
            } else {
                // EveryN/Os ack before durability by contract
                self.install(version);
                drop(commit);
            }
        } else {
            let version = Arc::new(tx.work);
            commit.head = version.clone();
            self.install(version);
            drop(commit);
        }
        self.maybe_checkpoint();
        Ok(out)
    }

    /// Create (or replace) a **hash-partitioned** base table whose rows
    /// route to shards by the value of `shard_key` — a single-operation
    /// [`Database::transact`]. Only valid on a sharded database.
    pub fn create_table_sharded(
        &self,
        name: impl Into<String>,
        schema: Schema,
        keys: Vec<&str>,
        shard_key: &str,
    ) -> Result<(), EngineError> {
        let name = name.into();
        self.transact(|tx| tx.create_table_sharded(name, schema, keys, shard_key))
    }

    /// Create (or replace) a base table — a single-operation
    /// [`Database::transact`].
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        keys: Vec<&str>,
    ) -> Result<(), EngineError> {
        let name = name.into();
        self.transact(|tx| tx.create_table(name, schema, keys))
    }

    /// Append rows to a base table (types are checked) — a
    /// single-operation [`Database::transact`].
    pub fn insert(&self, name: &str, rows: Vec<Row>) -> Result<(), EngineError> {
        self.transact(|tx| tx.insert(name, rows))
    }

    /// Install a table **without** the `create_table` validation — the
    /// restore-from-snapshot escape hatch. The caller is responsible for
    /// the invariants (`keys ⊆ schema`, row cells typed per schema);
    /// consumers such as `Connection::interpreter_tables` must therefore
    /// report violations as errors rather than assume them impossible.
    /// On a durable database the full table (rows included) is WAL-logged
    /// before installation, which is why this can fail.
    pub fn install_table(
        &self,
        name: impl Into<String>,
        table: BaseTable,
    ) -> Result<(), EngineError> {
        let name = name.into();
        self.transact(|tx| tx.install_table(name, table))
    }

    /// Publish `version` to readers and export its epoch.
    fn install(&self, version: Arc<Catalog>) {
        self.metrics.epoch.set(version.epoch as i64);
        *self.current.write().unwrap() = version;
    }

    // ----------------------------------------------- group-commit core

    /// Block until `lsn` is durable (or the WAL is poisoned). The first
    /// waiter to find the fsync slot free becomes the **leader**: it runs
    /// one fsync covering every appended record — crucially *without*
    /// holding the WAL mutex, so concurrent committers keep enqueuing —
    /// publishes the newest covered catalog version, records the batch
    /// size, and wakes everyone. Other waiters sleep on the condvar.
    fn wait_durable(&self, lsn: u64) -> Result<(), EngineError> {
        let storage = self.storage.as_ref().expect("durable commit path");
        let mut gc = self.gc.lock().unwrap();
        loop {
            if gc.durable_lsn >= lsn {
                // A leader's fsync can cover our LSN before our entry
                // reached the queue (transact enqueues after log_batch
                // returns, and the leader holds neither the WAL nor the
                // commit lock while syncing). That leader could not see
                // our version, so drain everything the watermark covers
                // here — publish-before-ack must hold on this path too.
                let durable = gc.durable_lsn;
                self.publish_durable(&mut gc, durable);
                return Ok(());
            }
            if let Some(msg) = gc.poisoned.clone() {
                return Err(EngineError::Storage(StorageError::Io(msg)));
            }
            if gc.syncing {
                gc = self.gc_cv.wait(gc).unwrap();
                continue;
            }
            // leader election: claim the slot, sync without any lock
            gc.syncing = true;
            drop(gc);
            // group-commit window: let committers that just missed the
            // previous batch append before this fsync's target is
            // captured — without it, batches alternate full/size-1 and
            // the fsync sharing halves (the `commit_delay` of real DBs)
            std::thread::yield_now();
            let mut span = ferry_telemetry::span("wal.group_commit", "storage");
            match storage.group_sync() {
                Ok(synced) => {
                    let mut held = self.gc.lock().unwrap();
                    held.syncing = false;
                    let batch = held
                        .pending
                        .iter()
                        .take_while(|(l, _)| *l <= synced)
                        .count();
                    span.attr("synced_lsn", synced).attr("batch", batch);
                    self.publish_durable(&mut held, synced);
                    if batch > 0 {
                        self.metrics.commit_batch.record(batch as u64);
                    }
                    drop(held);
                    self.gc_cv.notify_all();
                    gc = self.gc.lock().unwrap();
                    // loop re-checks: our lsn is covered unless we raced
                    // a concurrent appender's newer target — then we wait
                    // or lead again
                }
                Err(e) => {
                    // the WAL truncated the nacked tail and poisoned
                    // itself (PR-5 contract). Fail every waiter first —
                    // *then* roll the head back; the gap is safe because
                    // any transact landing in it fails at log_batch on
                    // the poisoned WAL without touching the head.
                    {
                        let mut held = self.gc.lock().unwrap();
                        held.syncing = false;
                        held.pending.clear();
                        held.poisoned = Some(e.to_string());
                    }
                    self.gc_cv.notify_all();
                    let mut commit = self.commit.lock().unwrap();
                    commit.head = self.current.read().unwrap().clone();
                    drop(commit);
                    return Err(EngineError::Storage(e));
                }
            }
        }
    }

    /// Advance the durable watermark to `synced` and publish the newest
    /// pending version it covers. Caller holds the `gc` lock.
    fn publish_durable(&self, gc: &mut GroupCommit, synced: u64) {
        gc.durable_lsn = gc.durable_lsn.max(synced);
        let mut newest = None;
        while gc.pending.front().is_some_and(|(l, _)| *l <= synced) {
            newest = Some(gc.pending.pop_front().expect("front checked").1);
        }
        if let Some(v) = newest {
            self.install(v);
        }
    }

    /// Claim the exclusive fsync slot (waits out an in-flight leader).
    /// Caller must hold the commit lock, so no new transaction can
    /// enqueue while the slot is claimed.
    fn begin_sync_slot(&self) -> Result<(), EngineError> {
        let mut gc = self.gc.lock().unwrap();
        while gc.syncing {
            gc = self.gc_cv.wait(gc).unwrap();
        }
        if let Some(msg) = gc.poisoned.clone() {
            return Err(EngineError::Storage(StorageError::Io(msg)));
        }
        gc.syncing = true;
        Ok(())
    }

    // ------------------------------------------------------ durability

    /// Is this database backed by durable storage?
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// The recovery timeline of a durable database (what the snapshot
    /// provided, how many WAL records were replayed, torn-tail repair).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The recovery timeline of a durable **sharded** database: per-shard
    /// snapshot loads, parallel WAL replay, the epoch-consistent cut.
    pub fn shard_recovery_report(&self) -> Option<&ShardRecoveryReport> {
        self.shard_recovery.as_ref()
    }

    /// Write a snapshot of the current catalog and compact the WAL.
    /// No-op returning 0 for in-memory databases. Serialises with
    /// committers (commit lock) and with any in-flight group fsync
    /// (sync slot), so the snapshot provably covers every logged record.
    pub fn checkpoint(&self) -> Result<u64, EngineError> {
        let Some(storage) = &self.storage else {
            return Ok(0);
        };
        let mut commit = self.commit.lock().unwrap();
        self.begin_sync_slot()?;
        let result = storage.checkpoint(&commit.head);
        let mut gc = self.gc.lock().unwrap();
        gc.syncing = false;
        let out = match result {
            Ok(lsn) => {
                self.publish_durable(&mut gc, lsn);
                // the snapshot covers every logged byte: re-mark each
                // table's WAL contribution so `ferry.tables` reports
                // bytes *since* this checkpoint
                let mut marks = self.ckpt_marks.lock().unwrap();
                for (name, st) in &commit.head.stats {
                    marks.insert(name.clone(), st.wal_bytes);
                }
                drop(marks);
                Ok(lsn)
            }
            Err(e) => {
                if storage.poisoned() {
                    // the barrier fsync failed: nacked tail truncated,
                    // WAL poisoned — mirror that here and re-anchor the
                    // head on what readers (and the log) actually have
                    gc.pending.clear();
                    gc.poisoned = Some(e.to_string());
                    commit.head = self.current.read().unwrap().clone();
                } else {
                    // fsync succeeded, the snapshot write itself failed:
                    // everything synced is durable and publishable; the
                    // WAL just keeps growing until a later checkpoint
                    self.publish_durable(&mut gc, storage.synced());
                }
                Err(EngineError::Storage(e))
            }
        };
        drop(gc);
        drop(commit);
        self.gc_cv.notify_all();
        out
    }

    /// Force-fsync the WAL regardless of the configured policy (shutdown
    /// barrier). No-op for in-memory databases.
    pub fn sync(&self) -> Result<(), EngineError> {
        let Some(storage) = &self.storage else {
            return Ok(());
        };
        let mut commit = self.commit.lock().unwrap();
        self.begin_sync_slot()?;
        let result = storage.group_sync();
        let mut gc = self.gc.lock().unwrap();
        gc.syncing = false;
        let out = match result {
            Ok(synced) => {
                self.publish_durable(&mut gc, synced);
                Ok(())
            }
            Err(e) => {
                gc.pending.clear();
                gc.poisoned = Some(e.to_string());
                commit.head = self.current.read().unwrap().clone();
                Err(EngineError::Storage(e))
            }
        };
        drop(gc);
        drop(commit);
        self.gc_cv.notify_all();
        out
    }

    /// Run the auto-checkpoint if `checkpoint_every` says the WAL budget
    /// is spent. Called **after** the transaction committed, so the
    /// snapshot covers it. Failures are recorded, never returned: the
    /// mutation itself is already WAL-durable and applied, so an error
    /// from `insert`/`create_table` here would read as "mutation failed"
    /// and invite a double-applying retry. The WAL keeps growing and the
    /// next mutation retries the compaction.
    fn maybe_checkpoint(&self) {
        if self.storage.as_ref().is_some_and(Store::checkpoint_due) {
            match self.checkpoint() {
                Ok(_) => *self.last_checkpoint_error.lock().unwrap() = None,
                Err(e) => {
                    self.metrics.checkpoint_failures.inc();
                    *self.last_checkpoint_error.lock().unwrap() = Some(e.to_string());
                }
            }
        }
    }

    /// The most recent auto-checkpoint failure, if any (cleared by the
    /// next successful one). See [`Database::maybe_checkpoint`] for why
    /// mutations swallow these.
    pub fn last_checkpoint_error(&self) -> Option<String> {
        self.last_checkpoint_error.lock().unwrap().clone()
    }

    // ----------------------------------------------------- observability

    /// This database's telemetry hub (registry, trace ring, config).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Set how much the telemetry layer records for subsequent dispatches.
    pub fn set_telemetry_config(&self, config: TelemetryConfig) {
        self.telemetry.set_config(config);
    }

    /// The id of the most recently dispatched query (0 before the first).
    pub fn last_query_id(&self) -> u64 {
        self.next_query_id.load(AtOrd::Relaxed)
    }

    /// The id of the most recent dispatch executed under telemetry trace
    /// `trace_id`, if its profile is still in the ring.
    pub fn query_id_for_trace(&self, trace_id: u64) -> Option<u64> {
        if trace_id == 0 {
            return None;
        }
        let profiles = self.profiles.lock().unwrap();
        let qid = profiles
            .iter()
            .rev()
            .find(|p| p.trace_id == trace_id)
            .map(|p| p.query_id);
        qid
    }

    /// Per-node profiles of the most recent dispatches, oldest first —
    /// a clone of the profile ring (also the `ferry.queries` source).
    pub fn profiles(&self) -> Vec<QueryProfile> {
        self.profiles.lock().unwrap().iter().cloned().collect()
    }

    /// Set (or with `None`, disable) the slow-query threshold: dispatches
    /// whose wall time meets it are captured — plan pretty-print,
    /// optimizer report, per-node profile — into a bounded ring of
    /// [`SlowQueryRecord`]s, queryable as `ferry.slow_queries`. Capture
    /// is threshold-gated, not config-gated: it works under
    /// [`TelemetryConfig::Off`] too (crossing the threshold is the
    /// opt-in), though traces additionally need `Full`.
    pub fn set_slow_query_threshold(&self, t: Option<Duration>) {
        self.telemetry.set_slow_query_threshold(t);
    }

    /// The captured slow dispatches, oldest first (bounded ring of
    /// [`SLOW_RING_CAP`]).
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.slow.lock().unwrap().iter().cloned().collect()
    }

    /// The captured record of dispatch `query_id`, if still retained.
    pub fn slow_query(&self, query_id: u64) -> Option<SlowQueryRecord> {
        self.slow
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|r| r.query_id == query_id)
            .cloned()
    }

    /// Drop every retained slow-query record.
    pub fn clear_slow_queries(&self) {
        self.slow.lock().unwrap().clear();
    }

    /// Register (or replace) an **extrinsic** system table: `name` must
    /// live under the reserved `ferry.` namespace, `provider` snapshots
    /// the live source into rows (typed per `schema`, key order) at every
    /// scan. The runtime registers `ferry.plan_cache` this way; intrinsic
    /// tables ([`sys::INTRINSIC`]) cannot be replaced.
    pub fn register_system_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        keys: Vec<String>,
        provider: Arc<dyn Fn() -> Vec<Row> + Send + Sync>,
    ) -> Result<(), EngineError> {
        let name = name.into();
        if !sys::is_system(&name) {
            return Err(EngineError::TableMismatch {
                table: name.clone(),
                detail: format!("system tables must live under `{}`", sys::SYS_PREFIX),
            });
        }
        if sys::schema_of(&name).is_some() {
            return Err(EngineError::TableMismatch {
                table: name.clone(),
                detail: "intrinsic system table cannot be replaced".into(),
            });
        }
        for k in &keys {
            if !schema.contains(k) {
                return Err(EngineError::TableMismatch {
                    table: name.clone(),
                    detail: format!("key column {k} not in schema {schema}"),
                });
            }
        }
        self.sys_tables.lock().unwrap().insert(
            name,
            SysTableDef {
                schema,
                keys,
                provider,
            },
        );
        Ok(())
    }

    /// Schema and key columns of system table `name` (intrinsic or
    /// registered), for compile-time resolution. Base tables shadow
    /// system tables — callers should consult the catalog first.
    pub fn system_table_info(&self, name: &str) -> Option<(Schema, Vec<String>)> {
        if let Some(info) = sys::schema_of(name) {
            return Some(info);
        }
        self.sys_tables
            .lock()
            .unwrap()
            .get(name)
            .map(|d| (d.schema.clone(), d.keys.clone()))
    }

    /// `ferry.storage` property rows (`name`, `value`), sorted by name.
    fn storage_props(&self, cat: &Catalog) -> Vec<Row> {
        let gc = self.gc.lock().unwrap();
        let (durable, synced, poisoned) = match &self.storage {
            Some(s) => (1, s.synced() as i64, s.poisoned() as i64),
            None => (0, 0, 0),
        };
        let pending = gc.pending.len() as i64;
        drop(gc);
        let props: [(&str, i64); 8] = [
            ("durable", durable),
            ("epoch", cat.epoch as i64),
            ("pending_commits", pending),
            ("poisoned", poisoned),
            ("schema_version", cat.schema_version as i64),
            ("shards", self.shards as i64),
            ("synced_lsn", synced),
            ("tables", cat.tables.len() as i64),
        ];
        props
            .iter()
            .map(|(n, v)| vec![Value::str(*n), Value::Int(*v)])
            .collect()
    }

    /// Capture one over-threshold dispatch into the slow ring.
    fn record_slow(
        &self,
        plan: &Plan,
        roots: &[NodeId],
        profile: &QueryProfile,
        ctx: DispatchCtx<'_>,
        threshold_ns: u64,
    ) {
        let plan_text = roots
            .iter()
            .map(|&r| ferry_algebra::pretty::render(plan, r))
            .collect::<Vec<_>>()
            .join("\n");
        let rec = SlowQueryRecord {
            query_id: profile.query_id,
            trace_id: profile.trace_id,
            plan_hash: ctx.plan_hash,
            roots: profile.roots,
            elapsed: profile.elapsed,
            threshold: Duration::from_nanos(threshold_ns),
            plan: plan_text,
            opt_report: ctx.opt.map(|r| r.render()),
            profile: profile.clone(),
        };
        let mut ring = self.slow.lock().unwrap();
        if ring.len() >= SLOW_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Record a plan-cache outcome in this database's [`QueryStats`].
    /// The cache itself lives in the runtime (`ferry::Connection`); the
    /// counters live here so one `stats()` call tells the whole story of
    /// a workload (queries dispatched *and* compilations amortised).
    pub fn record_cache(&self, hit: bool) {
        if !self.telemetry.counters_on() {
            return;
        }
        if hit {
            self.metrics.cache_hits.inc();
        } else {
            self.metrics.cache_misses.inc();
        }
    }

    /// Fixed latency charged per dispatched query (models network
    /// round-trip and parse/plan overhead of a real client/server DBMS).
    pub fn set_dispatch_cost(&self, cost: Duration) {
        self.dispatch_cost_ns
            .store(cost.as_nanos() as u64, AtOrd::Relaxed);
    }

    /// Set the parallelism configuration used by subsequent dispatches.
    pub fn set_par_config(&self, cfg: ParConfig) {
        *self.par.lock().unwrap() = cfg;
    }

    pub fn par_config(&self) -> ParConfig {
        *self.par.lock().unwrap()
    }

    /// A point-in-time [`QueryStats`] view assembled from the telemetry
    /// registry and the profile ring.
    pub fn stats(&self) -> QueryStats {
        let m = &self.metrics;
        QueryStats {
            queries: m.queries.get(),
            rows_out: m.rows_out.get(),
            nodes_evaluated: m.nodes_evaluated.get(),
            rows_produced: m.rows_produced.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            morsel_tasks: m.morsel_tasks.get(),
            par_nodes: m.par_nodes.get(),
            par_waves: m.par_waves.get(),
            vec_nodes: m.vec_nodes.get(),
            kernel_batches: m.kernel_batches.get(),
            fused_pipelines: m.fused_pipelines.get(),
            fused_nodes: m.fused_nodes.get(),
            shard_rows: m.shard_rows.get(),
            shard_pruned: m.shard_pruned.get(),
            profiles: self.profiles.lock().unwrap().clone(),
        }
    }

    /// Zero every registry metric (latency histograms included) and drop
    /// the retained profiles. Traces in the telemetry ring are untouched.
    pub fn reset_stats(&self) {
        self.telemetry.registry().reset();
        self.profiles.lock().unwrap().clear();
    }

    // --------------------------------------------------------- dispatch

    /// Dispatch **one query** against a freshly pinned snapshot.
    pub fn execute(&self, plan: &Plan, root: NodeId) -> Result<Rel, EngineError> {
        self.snapshot().execute(plan, root)
    }

    /// Dispatch a bundle against a freshly pinned snapshot: every member
    /// sees the same catalog version. Pin a [`Database::snapshot`]
    /// yourself to span several calls with one version.
    pub fn execute_bundle(&self, plan: &Plan, roots: &[NodeId]) -> Result<Vec<Rel>, EngineError> {
        self.snapshot().execute_bundle(plan, roots)
    }
}

/// A pinned, immutable view of one catalog version. Cheap to create
/// (one `Arc` clone) and entirely lock-free to read: concurrent commits
/// install new versions without disturbing it. Everything executed
/// through one snapshot — every member of a bundle, every table lookup —
/// sees the same epoch.
#[derive(Debug, Clone)]
pub struct Snapshot<'db> {
    db: &'db Database,
    cat: Arc<Catalog>,
}

impl<'db> Snapshot<'db> {
    /// The database this snapshot was pinned from (for stats, telemetry
    /// and mutation APIs — none of which affect this snapshot).
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// This version's epoch (bumped by every committed transaction).
    pub fn epoch(&self) -> u64 {
        self.cat.epoch
    }

    /// This version's schema version (bumped by DDL only).
    pub fn schema_version(&self) -> u64 {
        self.cat.schema_version
    }

    pub fn table(&self, name: &str) -> Option<&BaseTable> {
        self.cat.tables.get(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.cat.tables.keys().map(|s| s.as_str())
    }

    /// This version's [`TableStats`] for base table `name`.
    pub fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.cat.stats.get(name).copied()
    }

    /// Materialise system table `name` — a live snapshot of its source
    /// (metrics registry, profile ring, catalog, storage state, …) as a
    /// throwaway [`BaseTable`], or `None` if `name` is no system table.
    /// Catalog-resident state (`ferry.tables`, `ferry.shards`) reads
    /// **this snapshot's** pinned version; telemetry-resident state reads
    /// the live hub (not transactional — see [`crate::sys`] docs). The
    /// executor calls this only after the pinned catalog missed, so base
    /// tables shadow system tables.
    pub fn system_table(&self, name: &str) -> Option<BaseTable> {
        let db = self.db;
        let rows = match name {
            "ferry.metrics" => sys::metrics_rows(db.telemetry.registry()),
            "ferry.histograms" => sys::histograms_rows(db.telemetry.registry()),
            "ferry.queries" => {
                let profiles = db.profiles.lock().unwrap();
                sys::queries_rows(profiles.iter())
            }
            "ferry.slow_queries" => {
                let mut slow = db.slow.lock().unwrap();
                sys::slow_rows(slow.make_contiguous(), &db.telemetry)
            }
            "ferry.storage" => db.storage_props(&self.cat),
            "ferry.tables" => {
                let marks = db.ckpt_marks.lock().unwrap();
                let mut names: Vec<&String> = self.cat.tables.keys().collect();
                names.sort_unstable();
                names
                    .into_iter()
                    .map(|n| {
                        let t = &self.cat.tables[n];
                        let st = self.cat.stats.get(n).copied().unwrap_or_default();
                        let since_ckpt = st
                            .wal_bytes
                            .saturating_sub(marks.get(n).copied().unwrap_or(0));
                        let (shard_key, shards) = match &t.shard {
                            Some(sh) => (sh.key.clone().unwrap_or_default(), sh.sels.len() as i64),
                            None => (String::new(), 0),
                        };
                        vec![
                            Value::Int(st.bytes as i64),
                            Value::str(n.clone()),
                            Value::Int(t.rows.len() as i64),
                            Value::str(shard_key),
                            Value::Int(shards),
                            Value::Int(since_ckpt as i64),
                        ]
                    })
                    .collect()
            }
            "ferry.shards" => {
                let mut names: Vec<&String> = self.cat.tables.keys().collect();
                names.sort_unstable();
                let mut rows = Vec::new();
                for n in names {
                    let Some(sh) = &self.cat.tables[n].shard else {
                        continue;
                    };
                    for (k, sel) in sh.sels.iter().enumerate() {
                        rows.push(vec![
                            Value::Bool(sh.dense_resident(k)),
                            Value::Int(sel.len() as i64),
                            Value::Int(k as i64),
                            Value::str(n.clone()),
                        ]);
                    }
                }
                rows
            }
            _ => {
                let def = db.sys_tables.lock().unwrap().get(name).cloned()?;
                let rows = (def.provider)();
                return Some(BaseTable {
                    schema: def.schema,
                    keys: def.keys,
                    rows: Arc::new(RowBuf::new(rows)),
                    shard: None,
                });
            }
        };
        let (schema, keys) = sys::schema_of(name).expect("matched intrinsic name");
        Some(BaseTable {
            schema,
            keys,
            rows: Arc::new(RowBuf::new(rows)),
            shard: None,
        })
    }

    /// The parallelism knobs dispatches through this snapshot use.
    pub fn par_config(&self) -> ParConfig {
        self.db.par_config()
    }

    /// Dispatch **one query** — validate the plan, evaluate the DAG bottom-
    /// up (shared nodes once), return the root relation.
    pub fn execute(&self, plan: &Plan, root: NodeId) -> Result<Rel, EngineError> {
        Ok(self
            .execute_bundle(plan, &[root])?
            .pop()
            .expect("one root in, one relation out"))
    }

    /// Dispatch a bundle of queries and collect the results in order.
    ///
    /// The whole bundle is evaluated in **one pass** over the shared plan
    /// DAG: sub-plans common to several members run once, and independent
    /// members overlap on the wavefront scheduler. Accounting is
    /// unchanged from dispatching each member separately — every root
    /// still counts as one query and is charged `dispatch_cost`, so the
    /// Table 1 avalanche numbers measure the same client/server protocol.
    pub fn execute_bundle(&self, plan: &Plan, roots: &[NodeId]) -> Result<Vec<Rel>, EngineError> {
        self.execute_bundle_ctx(plan, roots, DispatchCtx::default())
    }

    /// [`Snapshot::execute_bundle`] with dispatch context: the runtime
    /// passes the compiled bundle's expression hash and optimizer report
    /// so slow-query capture and `ferry.queries` can attribute the
    /// dispatch to its source program.
    pub fn execute_bundle_ctx(
        &self,
        plan: &Plan,
        roots: &[NodeId],
        ctx: DispatchCtx<'_>,
    ) -> Result<Vec<Rel>, EngineError> {
        if roots.is_empty() {
            return Ok(Vec::new());
        }
        let db = self.db;
        let qid = db.next_query_id.fetch_add(1, AtOrd::Relaxed) + 1;
        let trace_id = ferry_telemetry::current_ctx().trace;
        let threads = self.par_config().threads;
        let mut dispatch = ferry_telemetry::span("dispatch", "engine");
        dispatch
            .attr("query_id", qid)
            .attr("queries", roots.len())
            .attr("threads", threads)
            .attr("epoch", self.cat.epoch);
        let start_ns = ferry_telemetry::now_ns();
        let dispatch_cost = Duration::from_nanos(db.dispatch_cost_ns.load(AtOrd::Relaxed));
        if !dispatch_cost.is_zero() {
            for _ in roots {
                spin_for(dispatch_cost);
            }
        }
        let schemas = infer_schema(plan)?;
        let mut local = QueryStats::default();
        let mut prof = Vec::new();
        let results = exec::run_many(self, plan, roots, &schemas, &mut local, &mut prof)?;
        let elapsed_ns = ferry_telemetry::now_ns().saturating_sub(start_ns);
        drop(dispatch);
        let profile = QueryProfile {
            query_id: qid,
            trace_id,
            plan_hash: ctx.plan_hash,
            roots: roots.len() as u32,
            elapsed: Duration::from_nanos(elapsed_ns),
            nodes: prof,
        };
        // the slow-query log is threshold-gated, not config-gated: with
        // the threshold unset (the idle default) this is one relaxed load
        let threshold_ns = db.telemetry.slow_query_threshold_ns();
        if threshold_ns != 0 && elapsed_ns >= threshold_ns {
            db.record_slow(plan, roots, &profile, ctx, threshold_ns);
        }
        if db.telemetry.counters_on() {
            let m = &db.metrics;
            m.queries.add(roots.len() as u64);
            m.rows_out.add(results.iter().map(|r| r.len() as u64).sum());
            m.nodes_evaluated.add(local.nodes_evaluated);
            m.rows_produced.add(local.rows_produced);
            m.morsel_tasks.add(local.morsel_tasks);
            m.par_nodes.add(local.par_nodes);
            m.par_waves.add(local.par_waves);
            m.vec_nodes.add(local.vec_nodes);
            m.kernel_batches.add(local.kernel_batches);
            m.fused_pipelines.add(local.fused_pipelines);
            m.fused_nodes.add(local.fused_nodes);
            m.shard_rows.add(local.shard_rows);
            m.shard_pruned.add(local.shard_pruned);
            m.query_latency_ns.record(elapsed_ns);
            db.profiles.lock().unwrap().push(profile);
        }
        Ok(results)
    }
}

/// The working state of one open transaction: a private catalog version
/// forked off the commit head, plus the WAL records that will log it.
/// Handed to the closure of [`Database::transact`]; mutations validate
/// against — and are immediately visible in — the working version
/// (read-your-own-writes), but nothing escapes until commit.
#[derive(Debug)]
pub struct Tx {
    work: Catalog,
    recs: Vec<WalRecord>,
    /// Sharded databases: per-shard [`WalRecord::ShardRows`] appends of
    /// this transaction (index = shard; empty for unsharded databases).
    shard_recs: Vec<Vec<WalRecord>>,
    /// Building WAL records costs a clone of inserted rows; in-memory
    /// databases skip it.
    durable: bool,
    /// The database's shard count (`0` = unsharded).
    shards: u32,
    dirty: bool,
}

impl Tx {
    /// Create (or replace) a base table. In a sharded database the table
    /// is *unsharded*: all its rows live on one home shard.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        keys: Vec<&str>,
    ) -> Result<(), EngineError> {
        self.create_table_impl(name.into(), schema, keys, None)
    }

    /// Create (or replace) a **hash-partitioned** base table: every row
    /// routes to `shard_hash(row[shard_key]) mod S`. Errors on an
    /// unsharded database or when `shard_key` is not in the schema.
    pub fn create_table_sharded(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        keys: Vec<&str>,
        shard_key: &str,
    ) -> Result<(), EngineError> {
        let name = name.into();
        if self.shards == 0 {
            return Err(EngineError::TableMismatch {
                table: name,
                detail: "sharded table on an unsharded database".into(),
            });
        }
        self.create_table_impl(name, schema, keys, Some(shard_key.to_string()))
    }

    fn create_table_impl(
        &mut self,
        name: String,
        schema: Schema,
        keys: Vec<&str>,
        shard_key: Option<String>,
    ) -> Result<(), EngineError> {
        for k in &keys {
            if !schema.contains(k) {
                return Err(EngineError::TableMismatch {
                    table: name,
                    detail: format!("key column {k} not in schema {schema}"),
                });
            }
        }
        if let Some(sk) = &shard_key {
            if !schema.contains(sk) {
                return Err(EngineError::TableMismatch {
                    table: name,
                    detail: format!("shard key column {sk} not in schema {schema}"),
                });
            }
        }
        let keys: Vec<String> = keys.into_iter().map(String::from).collect();
        if self.durable {
            self.recs.push(match &shard_key {
                Some(sk) => WalRecord::CreateTableSharded {
                    name: name.clone(),
                    schema: schema.clone(),
                    keys: keys.clone(),
                    shard_key: sk.clone(),
                },
                None => WalRecord::CreateTable {
                    name: name.clone(),
                    schema: schema.clone(),
                    keys: keys.clone(),
                },
            });
        }
        let shard = (self.shards > 0).then(|| {
            Arc::new(TableShards::new(
                shard_key,
                table_home(&name, self.shards as usize),
                self.shards as usize,
            ))
        });
        // create-or-replace: size stats restart with the empty table
        self.work.stats.insert(name.clone(), TableStats::default());
        self.work.tables.insert(
            name,
            BaseTable {
                schema,
                keys,
                rows: Arc::new(RowBuf::default()),
                shard,
            },
        );
        self.work.schema_version += 1;
        self.dirty = true;
        Ok(())
    }

    /// Append rows to a base table (types are checked against the
    /// transaction's working version, so a `create_table` earlier in the
    /// same transaction is a valid target).
    pub fn insert(&mut self, name: &str, rows: Vec<Row>) -> Result<(), EngineError> {
        let table = self
            .work
            .tables
            .get(name)
            .ok_or_else(|| EngineError::NoSuchTable(name.to_string()))?;
        for row in &rows {
            if row.len() != table.schema.len() {
                return Err(EngineError::TableMismatch {
                    table: name.to_string(),
                    detail: format!(
                        "row width {} != schema width {}",
                        row.len(),
                        table.schema.len()
                    ),
                });
            }
            for (v, (c, t)) in row.iter().zip(table.schema.cols()) {
                if v.ty() != *t {
                    return Err(EngineError::TableMismatch {
                        table: name.to_string(),
                        detail: format!("column {c}: value {v} is not {t}"),
                    });
                }
            }
        }
        if self.shards > 0 {
            return self.insert_sharded(name, rows);
        }
        self.bump_stats(name, rows.iter().map(sys::row_bytes).sum());
        if self.durable {
            self.recs.push(WalRecord::Insert {
                table: name.to_string(),
                rows: rows.clone(),
            });
        }
        let table = self.work.tables.get_mut(name).expect("validated above");
        // copy-on-write: the first insert into a table this transaction
        // copies its shared buffer once; later inserts mutate in place.
        // extend_rows also invalidates the buffer's columnar chunk cache.
        Arc::make_mut(&mut table.rows).extend_rows(rows);
        self.dirty = true;
        Ok(())
    }

    /// The sharded-database half of [`Tx::insert`]: route every row to
    /// its shard (hash of the shard-key cell, or the table's home shard),
    /// record the assignment in the working catalog, and stage one
    /// positioned [`WalRecord::ShardRows`] per touched shard. Positions
    /// are **absolute** in the table's global insert order, which is what
    /// makes recovery's re-application idempotent over snapshot state.
    fn insert_sharded(&mut self, name: &str, rows: Vec<Row>) -> Result<(), EngineError> {
        self.bump_stats(name, rows.iter().map(sys::row_bytes).sum());
        let table = self.work.tables.get_mut(name).expect("validated by insert");
        let shard = table.shard.as_ref().expect("sharded database table");
        let key_idx = shard
            .key
            .as_deref()
            .map(|k| table.schema.index_of(k).expect("validated at create"));
        let base = table.rows.len() as u64;
        let sh = Arc::make_mut(table.shard.as_mut().expect("present above"));
        // per-shard positioned slices of this insert, in shard order
        let mut slices: HashMap<u32, (Vec<u64>, Vec<Row>)> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            let pos = base + i as u64;
            let k = sh.push(pos as u32, key_idx.map(|c| &row[c]));
            if self.durable {
                let slot = slices.entry(k).or_default();
                slot.0.push(pos);
                slot.1.push(row.clone());
            }
        }
        if self.durable {
            let mut touched: Vec<u32> = slices.keys().copied().collect();
            touched.sort_unstable();
            for k in touched {
                let (idx, rows) = slices.remove(&k).expect("key listed");
                self.shard_recs[k as usize].push(WalRecord::ShardRows {
                    gsn: 0, // assigned by log_commit
                    table: name.to_string(),
                    idx,
                    rows,
                });
            }
        }
        Arc::make_mut(&mut table.rows).extend_rows(rows);
        self.dirty = true;
        Ok(())
    }

    /// Install a table without validation (see
    /// [`Database::install_table`]).
    pub fn install_table(
        &mut self,
        name: impl Into<String>,
        table: BaseTable,
    ) -> Result<(), EngineError> {
        let name = name.into();
        // sharded database: an installed table is always *unsharded*
        // (home-routed) — its WAL record carries no shard key, so a
        // recovered database would route future inserts differently if
        // a declared key survived only in memory. Hash-partitioned
        // tables must come from `create_table_sharded` + `insert`.
        let table = if self.shards > 0 {
            table.resharded(&name, None, self.shards as usize)?
        } else {
            BaseTable {
                shard: None,
                ..table
            }
        };
        if self.durable {
            self.recs.push(WalRecord::InstallTable {
                name: name.clone(),
                schema: table.schema.clone(),
                keys: table.keys.clone(),
                rows: table.rows.rows().to_vec(),
            });
        }
        // install replaces wholesale: restart bytes at the new contents
        // (the whole table just hit the WAL when durable)
        let bytes: u64 = table.rows.rows().iter().map(sys::row_bytes).sum();
        let prev_wal = self
            .work
            .stats
            .get(&name)
            .map_or(0, |s: &TableStats| s.wal_bytes);
        self.work.stats.insert(
            name.clone(),
            TableStats {
                bytes,
                wal_bytes: prev_wal + if self.durable { bytes } else { 0 },
            },
        );
        self.work.tables.insert(name, table);
        self.work.schema_version += 1;
        self.dirty = true;
        Ok(())
    }

    /// Add `delta` bytes to `name`'s size stats (and its WAL share on a
    /// durable database).
    fn bump_stats(&mut self, name: &str, delta: u64) {
        let entry = self.work.stats.entry(name.to_string()).or_default();
        entry.bytes += delta;
        if self.durable {
            entry.wal_bytes += delta;
        }
    }

    /// Read a table as this transaction sees it (own writes included).
    pub fn table(&self, name: &str) -> Option<&BaseTable> {
        self.work.tables.get(name)
    }

    /// The schema version as this transaction sees it.
    pub fn schema_version(&self) -> u64 {
        self.work.schema_version
    }
}

/// Busy-wait for `d`. `thread::sleep` has millisecond-class granularity on
/// some platforms; the dispatch costs we model are tens of microseconds.
fn spin_for(d: Duration) {
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferry_algebra::{Ty, Value};

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::of(&[("a", Ty::Int), ("b", Ty::Str)]),
            vec!["a"],
        )
        .unwrap();
        db.insert(
            "t",
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_lookup() {
        let db = db();
        let t = db.table("t").unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.keys, vec!["a"]);
        assert!(db.table("nope").is_none());
    }

    #[test]
    fn insert_type_checked() {
        let db = db();
        let bad = db.insert("t", vec![vec![Value::str("no"), Value::str("x")]]);
        assert!(matches!(bad, Err(EngineError::TableMismatch { .. })));
        let bad_width = db.insert("t", vec![vec![Value::Int(1)]]);
        assert!(bad_width.is_err());
        let no_table = db.insert("zzz", vec![]);
        assert!(matches!(no_table, Err(EngineError::NoSuchTable(_))));
    }

    #[test]
    fn key_must_be_in_schema() {
        let db = Database::new();
        let r = db.create_table("t", Schema::of(&[("a", Ty::Int)]), vec!["zzz"]);
        assert!(r.is_err());
    }

    #[test]
    fn execute_counts_queries() {
        let db = db();
        let mut plan = Plan::new();
        let l = plan.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![Value::Int(5)]]);
        db.execute(&plan, l).unwrap();
        db.execute(&plan, l).unwrap();
        let stats = db.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rows_out, 2);
        db.reset_stats();
        assert_eq!(db.stats().queries, 0);
    }

    #[test]
    fn snapshots_pin_a_version_and_commits_bump_the_epoch() {
        let db = db();
        let before = db.snapshot();
        assert_eq!(before.epoch(), 2); // create + insert
        db.insert("t", vec![vec![Value::Int(3), Value::str("z")]])
            .unwrap();
        // the pinned snapshot still sees the old version…
        assert_eq!(before.table("t").unwrap().rows.len(), 2);
        assert_eq!(before.epoch(), 2);
        // …while a fresh pin sees the commit
        let after = db.snapshot();
        assert_eq!(after.table("t").unwrap().rows.len(), 3);
        assert_eq!(after.epoch(), 3);
        assert_eq!(db.epoch(), 3);
        // inserts bump the epoch but not the schema version
        assert_eq!(before.schema_version(), after.schema_version());
    }

    #[test]
    fn transact_is_atomic_and_reads_its_own_writes() {
        let db = db();
        let epoch = db.epoch();
        db.transact(|tx| {
            tx.create_table("u", Schema::of(&[("k", Ty::Int)]), vec!["k"])?;
            // read-your-own-writes: the table created above is insertable
            tx.insert("u", vec![vec![Value::Int(1)]])?;
            assert_eq!(tx.table("u").unwrap().rows.len(), 1);
            tx.insert("t", vec![vec![Value::Int(9), Value::str("w")]])
        })
        .unwrap();
        // the whole transaction landed as ONE version bump
        assert_eq!(db.epoch(), epoch + 1);
        assert_eq!(db.table("u").unwrap().rows.len(), 1);
        assert_eq!(db.table("t").unwrap().rows.len(), 3);
    }

    #[test]
    fn failed_transact_commits_nothing() {
        let db = db();
        let epoch = db.epoch();
        let err = db.transact(|tx| {
            tx.insert("t", vec![vec![Value::Int(7), Value::str("q")]])?;
            tx.insert("t", vec![vec![Value::str("wrong type")]])
        });
        assert!(err.is_err());
        assert_eq!(db.epoch(), epoch, "no version installed");
        assert_eq!(db.table("t").unwrap().rows.len(), 2, "insert rolled back");
    }

    #[test]
    fn read_only_transact_installs_no_version() {
        let db = db();
        let epoch = db.epoch();
        let n = db
            .transact(|tx| Ok(tx.table("t").unwrap().rows.len()))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.epoch(), epoch);
    }
}

//! Engine error type.

use ferry_algebra::InferError;
use std::fmt;

/// Anything that can go wrong while executing a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The plan failed schema validation.
    Schema(InferError),
    /// A referenced base table does not exist in the catalog.
    NoSuchTable(String),
    /// A `TableRef` disagrees with the catalog (arity or column types).
    TableMismatch { table: String, detail: String },
    /// An operator references a column its input does not provide — a
    /// malformed plan that slipped past (or around) schema inference.
    NoSuchColumn { col: String, schema: String },
    /// A runtime evaluation error (division by zero, numeric overflow, …).
    Eval(String),
    /// The durability layer failed (WAL append, fsync, recovery). The
    /// in-memory catalog is unchanged when a mutation reports this —
    /// mutations log before they apply.
    Storage(ferry_storage::StorageError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Schema(e) => write!(f, "schema error: {e}"),
            EngineError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            EngineError::TableMismatch { table, detail } => {
                write!(f, "table {table} mismatch: {detail}")
            }
            EngineError::NoSuchColumn { col, schema } => {
                write!(f, "no such column {col} in schema {schema}")
            }
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<InferError> for EngineError {
    fn from(e: InferError) -> Self {
        EngineError::Schema(e)
    }
}

impl From<ferry_storage::StorageError> for EngineError {
    fn from(e: ferry_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

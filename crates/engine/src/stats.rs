//! Query accounting.
//!
//! Table 1 of the paper reports the *number of SQL queries emitted* next to
//! wall-clock time: the avalanche effect is first and foremost a query-count
//! effect. The engine therefore counts every dispatched query (and some
//! volume metrics) so experiments can assert counts exactly rather than
//! inferring them from timings.

/// Counters accumulated by a [`crate::Database`] across `execute` calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of queries dispatched (one per `execute` call).
    pub queries: u64,
    /// Total rows returned to the client across all queries.
    pub rows_out: u64,
    /// Total operator (node) evaluations.
    pub nodes_evaluated: u64,
    /// Total rows produced by intermediate operators (a rough work metric).
    pub rows_produced: u64,
    /// Prepared-plan cache hits recorded by the runtime (`Connection`):
    /// a `prepare`/`from_q` served an existing `CompiledBundle` without
    /// recompiling.
    pub cache_hits: u64,
    /// … and misses: compilations that went through the full
    /// loop-lifting + optimisation pipeline.
    pub cache_misses: u64,
}

impl QueryStats {
    pub fn reset(&mut self) {
        *self = QueryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_everything() {
        let mut s = QueryStats {
            queries: 3,
            rows_out: 10,
            nodes_evaluated: 5,
            rows_produced: 100,
            cache_hits: 2,
            cache_misses: 1,
        };
        s.reset();
        assert_eq!(s, QueryStats::default());
    }
}

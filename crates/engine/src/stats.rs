//! Query accounting.
//!
//! Table 1 of the paper reports the *number of SQL queries emitted* next to
//! wall-clock time: the avalanche effect is first and foremost a query-count
//! effect. The engine therefore counts every dispatched query (and some
//! volume metrics) so experiments can assert counts exactly rather than
//! inferring them from timings.
//!
//! Beyond the aggregate counters, the engine records a **per-node profile**
//! of the most recent dispatch: one [`NodeProfile`] per evaluated plan node
//! with its wall-clock time, output rows and morsel count. `Connection::
//! explain_analyze` renders it.

use std::fmt;
use std::time::Duration;

/// Which execution path an operator took for one evaluation. Operators
/// with a vectorized implementation pick per input (kernel compiled,
/// chunk types usable, input large enough — see `ParConfig::vectorize`);
/// everything else is scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// Row-at-a-time `Bound` interpretation — the fallback and the
    /// differential oracle.
    #[default]
    Scalar,
    /// Typed-chunk kernels (`vec_eval`) / columnar operator plans.
    Vectorized,
}

impl fmt::Display for ExecPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecPath::Scalar => write!(f, "scalar"),
            ExecPath::Vectorized => write!(f, "vec"),
        }
    }
}

/// Wall-time and work record for one evaluated plan node (most recent
/// query only — see [`QueryStats::profile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProfile {
    /// Arena index of the node in its plan.
    pub node: u32,
    /// Operator mnemonic (`Node::label`).
    pub label: &'static str,
    /// Rows the node produced.
    pub rows: u64,
    /// Wall-clock evaluation time for this node.
    pub elapsed: Duration,
    /// Morsels the node's bulk work was split into (`0` for operators
    /// without a morsel path, `1` for a serial run).
    pub morsels: u32,
    /// Execution path the node took.
    pub path: ExecPath,
    /// Kernel batches executed (`0` on the scalar path).
    pub batches: u32,
}

/// Counters accumulated by a [`crate::Database`] across `execute` calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of queries dispatched (one per `execute` call).
    pub queries: u64,
    /// Total rows returned to the client across all queries.
    pub rows_out: u64,
    /// Total operator (node) evaluations.
    pub nodes_evaluated: u64,
    /// Total rows produced by intermediate operators (a rough work metric).
    pub rows_produced: u64,
    /// Prepared-plan cache hits recorded by the runtime (`Connection`):
    /// a `prepare`/`from_q` served an existing `CompiledBundle` without
    /// recompiling.
    pub cache_hits: u64,
    /// … and misses: compilations that went through the full
    /// loop-lifting + optimisation pipeline.
    pub cache_misses: u64,
    /// Total morsel tasks executed by bulk operators (one per contiguous
    /// row range handed to a worker; serial runs count one morsel).
    pub morsel_tasks: u64,
    /// Nodes whose bulk work actually ran on more than one morsel.
    pub par_nodes: u64,
    /// DAG scheduling wavefronts that evaluated two or more nodes
    /// concurrently.
    pub par_waves: u64,
    /// Node evaluations that took the vectorized path.
    pub vec_nodes: u64,
    /// Total kernel batches executed by vectorized nodes.
    pub kernel_batches: u64,
    /// Per-node profile of the **most recent** dispatch (replaced on every
    /// `execute` / `execute_bundle`, not accumulated — the aggregate
    /// counters above are the cross-query view).
    pub profile: Vec<NodeProfile>,
}

impl QueryStats {
    pub fn reset(&mut self) {
        *self = QueryStats::default();
    }

    /// Fold another stats record's aggregate counters into this one.
    /// `profile` is *replaced* (it describes a single dispatch).
    pub fn absorb(&mut self, other: QueryStats) {
        self.queries += other.queries;
        self.rows_out += other.rows_out;
        self.nodes_evaluated += other.nodes_evaluated;
        self.rows_produced += other.rows_produced;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.morsel_tasks += other.morsel_tasks;
        self.par_nodes += other.par_nodes;
        self.par_waves += other.par_waves;
        self.vec_nodes += other.vec_nodes;
        self.kernel_batches += other.kernel_batches;
        if !other.profile.is_empty() {
            self.profile = other.profile;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_everything() {
        let mut s = QueryStats {
            queries: 3,
            rows_out: 10,
            nodes_evaluated: 5,
            rows_produced: 100,
            cache_hits: 2,
            cache_misses: 1,
            morsel_tasks: 7,
            par_nodes: 2,
            par_waves: 1,
            vec_nodes: 3,
            kernel_batches: 9,
            profile: vec![NodeProfile {
                node: 0,
                label: "lit",
                rows: 1,
                elapsed: Duration::from_micros(3),
                morsels: 1,
                path: ExecPath::Vectorized,
                batches: 4,
            }],
        };
        s.reset();
        assert_eq!(s, QueryStats::default());
    }

    #[test]
    fn absorb_sums_counters_and_replaces_profile() {
        let mut a = QueryStats {
            queries: 1,
            morsel_tasks: 2,
            vec_nodes: 1,
            kernel_batches: 4,
            profile: vec![NodeProfile {
                node: 0,
                label: "lit",
                rows: 1,
                elapsed: Duration::ZERO,
                morsels: 1,
                path: ExecPath::Scalar,
                batches: 0,
            }],
            ..QueryStats::default()
        };
        let b = QueryStats {
            queries: 2,
            morsel_tasks: 3,
            vec_nodes: 2,
            kernel_batches: 6,
            profile: vec![NodeProfile {
                node: 1,
                label: "select",
                rows: 5,
                elapsed: Duration::ZERO,
                morsels: 2,
                path: ExecPath::Vectorized,
                batches: 2,
            }],
            ..QueryStats::default()
        };
        a.absorb(b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.morsel_tasks, 5);
        assert_eq!(a.vec_nodes, 3);
        assert_eq!(a.kernel_batches, 10);
        assert_eq!(a.profile.len(), 1);
        assert_eq!(a.profile[0].node, 1);
        assert_eq!(a.profile[0].path, ExecPath::Vectorized);
    }
}

//! Query accounting.
//!
//! Table 1 of the paper reports the *number of SQL queries emitted* next to
//! wall-clock time: the avalanche effect is first and foremost a query-count
//! effect. The engine therefore counts every dispatched query (and some
//! volume metrics) so experiments can assert counts exactly rather than
//! inferring them from timings.
//!
//! The aggregate counters live in the database's `ferry-telemetry`
//! [`Registry`](ferry_telemetry::Registry) (named `engine.*` /
//! `runtime.*`); [`QueryStats`] is the *view* `Database::stats()`
//! assembles from it. Beyond the counters, the engine records a
//! **per-node profile** of each dispatch — one [`NodeProfile`] per
//! evaluated plan node with its wall-clock time, output rows and morsel
//! count — retained for the last [`PROFILE_RING_CAP`] dispatches in a
//! [`ProfileRing`] keyed by query id. `Connection::explain_analyze`
//! renders the latest entry.

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// Which execution path an operator took for one evaluation. Operators
/// with a vectorized implementation pick per input (kernel compiled,
/// chunk types usable, input large enough — see `ParConfig::vectorize`);
/// everything else is scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// Row-at-a-time `Bound` interpretation — the fallback and the
    /// differential oracle.
    #[default]
    Scalar,
    /// Typed-chunk kernels (`vec_eval`) / columnar operator plans.
    Vectorized,
    /// A fused pipeline: this node is the tail of a scan→…→sink chain
    /// that streamed batches through all member operators in one loop.
    Fused,
}

impl fmt::Display for ExecPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecPath::Scalar => write!(f, "scalar"),
            ExecPath::Vectorized => write!(f, "vec"),
            ExecPath::Fused => write!(f, "fused"),
        }
    }
}

/// Wall-time and work record for one evaluated plan node of one dispatch
/// (see [`QueryProfile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProfile {
    /// Arena index of the node in its plan.
    pub node: u32,
    /// Operator mnemonic (`Node::label`).
    pub label: &'static str,
    /// Rows the node produced.
    pub rows: u64,
    /// Wall-clock evaluation time for this node.
    pub elapsed: Duration,
    /// Morsels the node's bulk work was split into (`0` for operators
    /// without a morsel path, `1` for a serial run).
    pub morsels: u32,
    /// Execution path the node took.
    pub path: ExecPath,
    /// Kernel batches executed (`0` on the scalar path).
    pub batches: u32,
    /// When this node is the tail of a pipeline group: the member
    /// operators' labels in scan→sink order (empty for plain nodes).
    /// Present whether the group actually fused or fell back — `path`
    /// says which happened.
    pub fused: Vec<&'static str>,
    /// Shards the node's scan actually read (sharded base tables only;
    /// `0/0` everywhere else — `shards_total > 0` flags a sharded scan).
    pub shards_scanned: u32,
    /// The scanned table's shard count (`0` off sharded tables).
    pub shards_total: u32,
}

/// The per-node profile of **one** dispatch (`execute` / `execute_bundle`
/// call), keyed by the database-assigned query id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// Database-monotone dispatch id (1-based; id order is dispatch order).
    pub query_id: u64,
    /// Telemetry trace id active during the dispatch (0 when untraced).
    pub trace_id: u64,
    /// Stable hash of the source expression the runtime compiled this
    /// dispatch from (0 below the runtime). Joins `ferry.queries`
    /// against `ferry.plan_cache`.
    pub plan_hash: u64,
    /// Bundle members executed in this dispatch (1 for plain `execute`).
    pub roots: u32,
    /// Wall-clock time of the whole dispatch.
    pub elapsed: Duration,
    /// One entry per evaluated plan node, in evaluation (wave) order.
    pub nodes: Vec<NodeProfile>,
}

/// How many recent dispatch profiles a [`ProfileRing`] retains.
pub const PROFILE_RING_CAP: usize = 16;

/// Bounded ring of the most recent [`QueryProfile`]s, oldest first.
/// Replaces the old single-slot `QueryStats::profile`: a workload can
/// look back across its last [`PROFILE_RING_CAP`] dispatches instead of
/// only the final one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRing {
    cap: usize,
    ring: VecDeque<QueryProfile>,
}

impl Default for ProfileRing {
    fn default() -> ProfileRing {
        ProfileRing::new(PROFILE_RING_CAP)
    }
}

impl ProfileRing {
    pub fn new(cap: usize) -> ProfileRing {
        ProfileRing {
            cap: cap.max(1),
            ring: VecDeque::new(),
        }
    }

    /// Append a dispatch profile, evicting the oldest when full.
    pub fn push(&mut self, profile: QueryProfile) {
        if self.ring.len() >= self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(profile);
    }

    /// The most recent dispatch's profile.
    pub fn latest(&self) -> Option<&QueryProfile> {
        self.ring.back()
    }

    /// The retained profile of query `query_id`, if not yet evicted.
    pub fn get(&self, query_id: u64) -> Option<&QueryProfile> {
        self.ring.iter().rev().find(|p| p.query_id == query_id)
    }

    /// Retained profiles, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &QueryProfile> {
        self.ring.iter()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Merge another ring into this one **by recency**: query ids are
    /// database-monotone, so the merged ring is the newest `cap` profiles
    /// of the union, oldest first.
    pub fn merge(&mut self, other: ProfileRing) {
        if other.ring.is_empty() {
            return;
        }
        let mut all: Vec<QueryProfile> = self.ring.drain(..).chain(other.ring).collect();
        all.sort_by_key(|p| p.query_id);
        let skip = all.len().saturating_sub(self.cap);
        self.ring.extend(all.into_iter().skip(skip));
    }
}

/// Counters accumulated by a [`crate::Database`] across `execute` calls —
/// a point-in-time view assembled by `Database::stats()` from the
/// telemetry registry plus the profile ring. With
/// `TelemetryConfig::Off` nothing is accounted and the view stays zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of queries dispatched (one per `execute` call).
    pub queries: u64,
    /// Total rows returned to the client across all queries.
    pub rows_out: u64,
    /// Total operator (node) evaluations.
    pub nodes_evaluated: u64,
    /// Total rows produced by intermediate operators (a rough work metric).
    pub rows_produced: u64,
    /// Prepared-plan cache hits recorded by the runtime (`Connection`):
    /// a `prepare`/`from_q` served an existing `CompiledBundle` without
    /// recompiling.
    pub cache_hits: u64,
    /// … and misses: compilations that went through the full
    /// loop-lifting + optimisation pipeline.
    pub cache_misses: u64,
    /// Total morsel tasks executed by bulk operators (one per contiguous
    /// row range handed to a worker; serial runs count one morsel).
    pub morsel_tasks: u64,
    /// Nodes whose bulk work actually ran on more than one morsel.
    pub par_nodes: u64,
    /// DAG scheduling wavefronts that evaluated two or more nodes
    /// concurrently.
    pub par_waves: u64,
    /// Node evaluations that took the vectorized path.
    pub vec_nodes: u64,
    /// Total kernel batches executed by vectorized nodes.
    pub kernel_batches: u64,
    /// Pipeline groups that executed fused (one batch loop from scan to
    /// sink, no intermediate relations).
    pub fused_pipelines: u64,
    /// Plan nodes absorbed into fused pipelines (members of every fused
    /// group, tails included).
    pub fused_nodes: u64,
    /// Rows read from sharded base-table scans (post-pruning).
    pub shard_rows: u64,
    /// Rows partition pruning skipped without reading (their shards were
    /// excluded by shard-key predicates).
    pub shard_pruned: u64,
    /// Per-node profiles of the most recent dispatches (ring of
    /// [`PROFILE_RING_CAP`], oldest first).
    pub profiles: ProfileRing,
}

impl QueryStats {
    pub fn reset(&mut self) {
        *self = QueryStats::default();
    }

    /// The most recent dispatch's per-node profile (what the old
    /// single-slot `profile` field held).
    pub fn latest_profile(&self) -> Option<&QueryProfile> {
        self.profiles.latest()
    }

    /// Fold another stats record into this one: aggregate counters sum,
    /// profile rings merge by recency.
    pub fn absorb(&mut self, other: QueryStats) {
        self.queries += other.queries;
        self.rows_out += other.rows_out;
        self.nodes_evaluated += other.nodes_evaluated;
        self.rows_produced += other.rows_produced;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.morsel_tasks += other.morsel_tasks;
        self.par_nodes += other.par_nodes;
        self.par_waves += other.par_waves;
        self.vec_nodes += other.vec_nodes;
        self.kernel_batches += other.kernel_batches;
        self.fused_pipelines += other.fused_pipelines;
        self.fused_nodes += other.fused_nodes;
        self.shard_rows += other.shard_rows;
        self.shard_pruned += other.shard_pruned;
        self.profiles.merge(other.profiles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u32) -> NodeProfile {
        NodeProfile {
            node: n,
            label: "lit",
            rows: 1,
            elapsed: Duration::from_micros(3),
            morsels: 1,
            path: ExecPath::Scalar,
            batches: 0,
            fused: Vec::new(),
            shards_scanned: 0,
            shards_total: 0,
        }
    }

    fn profile(query_id: u64) -> QueryProfile {
        QueryProfile {
            query_id,
            trace_id: 0,
            plan_hash: 0,
            roots: 1,
            elapsed: Duration::from_micros(9),
            nodes: vec![node(0)],
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = QueryStats {
            queries: 3,
            rows_out: 10,
            nodes_evaluated: 5,
            rows_produced: 100,
            cache_hits: 2,
            cache_misses: 1,
            morsel_tasks: 7,
            par_nodes: 2,
            par_waves: 1,
            vec_nodes: 3,
            kernel_batches: 9,
            fused_pipelines: 1,
            fused_nodes: 3,
            shard_rows: 8,
            shard_pruned: 24,
            ..QueryStats::default()
        };
        s.profiles.push(profile(1));
        s.reset();
        assert_eq!(s, QueryStats::default());
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let mut ring = ProfileRing::default();
        for q in 1..=20 {
            ring.push(profile(q));
        }
        assert_eq!(ring.len(), PROFILE_RING_CAP);
        let ids: Vec<u64> = ring.iter().map(|p| p.query_id).collect();
        assert_eq!(ids, (5..=20).collect::<Vec<u64>>());
        assert_eq!(ring.latest().unwrap().query_id, 20);
        assert_eq!(ring.get(7).unwrap().query_id, 7);
        assert!(ring.get(4).is_none(), "evicted profile is gone");
    }

    #[test]
    fn ring_merge_is_by_recency() {
        let mut a = ProfileRing::new(4);
        for q in [1, 3, 8] {
            a.push(profile(q));
        }
        let mut b = ProfileRing::new(4);
        for q in [2, 9, 10] {
            b.push(profile(q));
        }
        a.merge(b);
        let ids: Vec<u64> = a.iter().map(|p| p.query_id).collect();
        // newest 4 of {1,3,8} ∪ {2,9,10}, oldest first
        assert_eq!(ids, vec![3, 8, 9, 10]);
    }

    #[test]
    fn absorb_sums_counters_and_merges_profiles() {
        let mut a = QueryStats {
            queries: 1,
            morsel_tasks: 2,
            vec_nodes: 1,
            kernel_batches: 4,
            ..QueryStats::default()
        };
        a.profiles.push(profile(1));
        let mut b = QueryStats {
            queries: 2,
            morsel_tasks: 3,
            vec_nodes: 2,
            kernel_batches: 6,
            ..QueryStats::default()
        };
        b.profiles.push(profile(2));
        b.profiles.push(profile(3));
        a.absorb(b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.morsel_tasks, 5);
        assert_eq!(a.vec_nodes, 3);
        assert_eq!(a.kernel_batches, 10);
        assert_eq!(a.profiles.len(), 3);
        assert_eq!(a.latest_profile().unwrap().query_id, 3);
    }
}

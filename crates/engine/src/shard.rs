//! Stable row→shard routing and predicate-driven shard pruning.
//!
//! [`shard_hash`] is the **versioned** hash behind hash partitioning:
//! its output for a given `Value` is pinned forever (property-tested
//! against golden vectors), so a row's shard assignment survives
//! recovery, process restarts, and engine upgrades. The byte encoding
//! deliberately mirrors `Value`'s `Eq`/`Hash` semantics — `Dbl` hashes
//! its exact bit pattern (total order: `-0.0 ≠ 0.0`, NaNs compare by
//! payload) — so two values the engine's `=` treats as equal always land
//! in the same shard, which is what makes equality-predicate pruning
//! sound.
//!
//! [`shards_for_pred`] folds a scan predicate into a shard bitmask:
//! `key = c` pins one shard, `OR` unions (covering `IN`-style chains),
//! `AND` intersects, anything else is "no constraint". The planner
//! scans only the surviving shards.

use ferry_algebra::{BinOp, Expr, Value};

/// Version of the row→shard hash. Bump ONLY with a migration story:
/// existing sharded directories route by the version they were written
/// with.
pub const SHARD_HASH_VERSION: u32 = 1;

/// Hard shard-count ceiling (pruning masks and storage participant
/// masks are a `u64`).
pub const MAX_SHARDS: usize = ferry_storage::MAX_SHARDS;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The stable 64-bit hash of one shard-key value (FNV-1a over a
/// version-prefixed canonical encoding: a type tag byte, then the
/// payload little-endian — `Dbl` as its exact `to_bits`).
pub fn shard_hash(v: &Value) -> u64 {
    let h = fnv(FNV_OFFSET, &SHARD_HASH_VERSION.to_le_bytes());
    match v {
        Value::Unit => fnv(h, &[0]),
        Value::Bool(b) => fnv(fnv(h, &[1]), &[*b as u8]),
        Value::Int(i) => fnv(fnv(h, &[2]), &i.to_le_bytes()),
        Value::Dbl(d) => fnv(fnv(h, &[3]), &d.to_bits().to_le_bytes()),
        Value::Str(s) => fnv(fnv(h, &[4]), s.as_bytes()),
        Value::Nat(n) => fnv(fnv(h, &[5]), &n.to_le_bytes()),
    }
}

/// The shard owning a row whose shard-key column holds `v`.
pub fn shard_of(v: &Value, shards: usize) -> u32 {
    debug_assert!((1..=MAX_SHARDS).contains(&shards));
    (shard_hash(v) % shards.max(1) as u64) as u32
}

/// The home shard of an *unsharded* table: all its rows (and their WAL
/// frames) live on one shard, picked stably from the table name.
pub fn table_home(name: &str, shards: usize) -> u32 {
    let h = fnv(FNV_OFFSET, &SHARD_HASH_VERSION.to_le_bytes());
    (fnv(h, name.as_bytes()) % shards.max(1) as u64) as u32
}

/// A bitmask with the low `shards` bits set — "scan everything".
pub fn all_shards_mask(shards: usize) -> u64 {
    if shards >= 64 {
        u64::MAX
    } else {
        (1u64 << shards) - 1
    }
}

/// Fold `pred` into the set of shards that can hold a satisfying row of
/// a table sharded `shards` ways on column `key`. `None` = the
/// predicate does not constrain the shard (scan them all).
///
/// Soundness: only *equality* on the shard-key column prunes (the hash
/// preserves equality, nothing else); `AND` intersects because both
/// conjuncts must hold; `OR` unions because either may. Everything
/// else — ranges, inequalities, expressions over the key — is
/// conservatively unconstrained.
pub fn shards_for_pred(pred: &Expr, key: &str, shards: usize) -> Option<u64> {
    match pred {
        Expr::Bin(BinOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Col(c), Expr::Const(v)) | (Expr::Const(v), Expr::Col(c))
                if c.as_ref() == key =>
            {
                Some(1u64 << shard_of(v, shards))
            }
            _ => None,
        },
        Expr::Bin(BinOp::And, l, r) => {
            match (
                shards_for_pred(l, key, shards),
                shards_for_pred(r, key, shards),
            ) {
                (Some(a), Some(b)) => Some(a & b),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            }
        }
        Expr::Bin(BinOp::Or, l, r) => {
            let a = shards_for_pred(l, key, shards)?;
            let b = shards_for_pred(r, key, shards)?;
            Some(a | b)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_share_a_shard_and_total_order_is_respected() {
        for s in [1usize, 2, 4, 7, 64] {
            assert_eq!(
                shard_of(&Value::Int(42), s),
                shard_of(&Value::Int(42), s),
                "S={s}"
            );
            assert!((shard_of(&Value::str("x"), s) as usize) < s);
        }
        // Dbl hashes exact bits: -0.0 and 0.0 are DIFFERENT keys under
        // the engine's total order, and may shard differently
        assert_ne!(
            shard_hash(&Value::Dbl(-0.0)),
            shard_hash(&Value::Dbl(0.0)),
            "total order distinguishes signed zero"
        );
        // same-typed distinct payloads almost surely split somewhere
        let spread: std::collections::HashSet<u32> =
            (0..64).map(|i| shard_of(&Value::Int(i), 4)).collect();
        assert!(spread.len() > 1, "hash must actually spread keys");
    }

    #[test]
    fn cross_type_tags_keep_domains_apart() {
        assert_ne!(shard_hash(&Value::Int(1)), shard_hash(&Value::Nat(1)));
        assert_ne!(shard_hash(&Value::Unit), shard_hash(&Value::Bool(false)));
    }

    #[test]
    fn pruning_rules() {
        let key = "k";
        let s = 4usize;
        let eq = |v: i64| Expr::eq(Expr::col("k"), Expr::lit(Value::Int(v)));
        let m1 = shards_for_pred(&eq(1), key, s).unwrap();
        assert_eq!(m1.count_ones(), 1);
        assert_eq!(m1, 1u64 << shard_of(&Value::Int(1), s));
        // flipped operands prune too
        let flipped = Expr::eq(Expr::lit(Value::Int(1)), Expr::col("k"));
        assert_eq!(shards_for_pred(&flipped, key, s), Some(m1));
        // OR unions (IN-style), AND intersects, AND with opaque conjunct
        // keeps the constraint
        let m2 = shards_for_pred(&eq(2), key, s).unwrap();
        let or = Expr::bin(BinOp::Or, eq(1), eq(2));
        assert_eq!(shards_for_pred(&or, key, s), Some(m1 | m2));
        let and = Expr::bin(BinOp::And, eq(1), eq(2));
        assert_eq!(shards_for_pred(&and, key, s), Some(m1 & m2));
        let opaque = Expr::bin(BinOp::Lt, Expr::col("v"), Expr::lit(Value::Int(10)));
        let and_opaque = Expr::bin(BinOp::And, eq(1), opaque.clone());
        assert_eq!(shards_for_pred(&and_opaque, key, s), Some(m1));
        // OR with an opaque arm cannot prune; non-key equality cannot
        // prune; ranges cannot prune
        let or_opaque = Expr::bin(BinOp::Or, eq(1), opaque.clone());
        assert_eq!(shards_for_pred(&or_opaque, key, s), None);
        let other_col = Expr::eq(Expr::col("v"), Expr::lit(Value::Int(1)));
        assert_eq!(shards_for_pred(&other_col, key, s), None);
        assert_eq!(shards_for_pred(&opaque, key, s), None);
    }
}

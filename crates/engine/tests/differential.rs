//! Differential testing of the parallel engine: every operator must
//! produce **cell-for-cell identical** results — including sort and
//! window tie-break order — whether it runs serially or split into
//! morsels across worker threads. Morsel outputs reassemble in morsel
//! order and every sort comparator is a total order, so this is an
//! invariant, not a statistical property; here we check it over random
//! relations and degenerate morsel sizes (1 row per morsel, a prime
//! size, and one larger than most inputs).

use ferry_algebra::{
    plan::{cn, Aggregate},
    AggFun, BinOp, Dir, Expr, JoinCols, Node, NodeId, Plan, Rel, Schema, Ty, Value,
};
use ferry_engine::{Database, ParConfig};
use proptest::prelude::*;

fn schema_abc(prefix: &str) -> Schema {
    Schema::new(vec![
        (format!("{prefix}x").into(), Ty::Int),
        (format!("{prefix}k").into(), Ty::Int),
        (format!("{prefix}s").into(), Ty::Str),
    ])
}

fn row_strategy() -> impl Strategy<Value = (i64, i64, String)> {
    (
        -8i64..8,
        -3i64..3,
        proptest::sample::select(vec!["a", "b", "c"]).prop_map(String::from),
    )
}

fn rel_rows(rows: &[(i64, i64, String)]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|(x, k, s)| vec![Value::Int(*x), Value::Int(*k), Value::str(s.as_str())])
        .collect()
}

/// The configurations under test: serial baseline vs 4 workers with
/// degenerate morsel splits. `min_rows: 1` forces the parallel path even
/// on tiny proptest relations.
fn par_configs() -> Vec<ParConfig> {
    [1usize, 7, 1024]
        .into_iter()
        .map(|morsel_rows| ParConfig {
            threads: 4,
            min_rows: 1,
            morsel_rows,
        })
        .collect()
}

/// One root per operator over left/right relations `l` and `r`.
fn operator_roots(plan: &mut Plan, l: NodeId, r: NodeId, quadratic: bool) -> Vec<NodeId> {
    let gt = Expr::bin(BinOp::Gt, Expr::col("x"), Expr::lit(0i64));
    let mut roots = vec![
        plan.select(l, gt.clone()),
        plan.project(l, vec![(cn("k2"), cn("k")), (cn("k3"), cn("k"))]),
        plan.compute(
            l,
            "y",
            Expr::bin(BinOp::Add, Expr::col("x"), Expr::col("k")),
        ),
        plan.attach(l, "tag", Value::str("t")),
        plan.distinct(l),
        plan.union_all(l, r),
        plan.difference(l, r),
        plan.equi_join(l, r, JoinCols::single("k", "rk")),
        plan.semi_join(l, r, JoinCols::single("k", "rk")),
        plan.anti_join(l, r, JoinCols::single("k", "rk")),
        plan.rownum(
            l,
            "rn",
            vec![cn("k")],
            vec![(cn("x"), Dir::Asc), (cn("s"), Dir::Desc)],
        ),
        plan.add(Node::RowRank {
            input: l,
            col: cn("rr"),
            order: vec![(cn("k"), Dir::Asc)],
        }),
        plan.dense_rank(l, "dr", vec![cn("s")], vec![(cn("k"), Dir::Desc)]),
        plan.group_by(
            l,
            vec![cn("s")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("x")),
                    output: cn("sum_x"),
                },
                Aggregate {
                    fun: AggFun::Min,
                    input: Some(cn("k")),
                    output: cn("min_k"),
                },
                Aggregate {
                    fun: AggFun::Max,
                    input: Some(cn("k")),
                    output: cn("max_k"),
                },
                Aggregate {
                    fun: AggFun::Avg,
                    input: Some(cn("x")),
                    output: cn("avg_x"),
                },
            ],
        ),
        plan.serialize(
            l,
            vec![(cn("k"), Dir::Desc), (cn("s"), Dir::Asc)],
            vec![cn("s"), cn("x")],
        ),
    ];
    // views compose: filter → project → sort without materialising
    let sel = plan.select(l, gt);
    let proj = plan.project_keep(sel, &[cn("x"), cn("s")]);
    roots.push(plan.serialize(proj, vec![(cn("x"), Dir::Asc)], vec![cn("s")]));
    if quadratic {
        roots.push(plan.cross(l, r));
        let ne = Expr::bin(BinOp::Lt, Expr::col("x"), Expr::col("rx"));
        roots.push(plan.theta_join(l, r, ne));
    }
    roots
}

fn db_with(par: ParConfig) -> Database {
    let mut db = Database::new();
    db.set_par_config(par);
    db
}

/// Execute every root under the serial and each parallel configuration
/// and demand identical relations.
fn assert_differential(plan: &Plan, roots: &[NodeId]) {
    let serial = db_with(ParConfig::serial());
    let baseline: Vec<Rel> = roots
        .iter()
        .map(|&r| serial.execute(plan, r).expect("serial execute"))
        .collect();
    for cfg in par_configs() {
        let par = db_with(cfg);
        for (&root, expect) in roots.iter().zip(&baseline) {
            let got = par.execute(plan, root).expect("parallel execute");
            assert_eq!(
                &got, expect,
                "divergence at node {root:?} with {cfg:?}:\nserial:\n{expect}\nparallel:\n{got}"
            );
        }
        // evaluate all roots as one bundle too: exercises the wavefront
        // scheduler with genuinely concurrent siblings
        let bundled = par.execute_bundle(plan, roots).expect("bundle execute");
        for ((got, expect), &root) in bundled.iter().zip(&baseline).zip(roots) {
            assert_eq!(
                got, expect,
                "bundle divergence at node {root:?} with {cfg:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn operators_agree_serial_vs_parallel(
        l in proptest::collection::vec(row_strategy(), 0..40),
        r in proptest::collection::vec(row_strategy(), 0..12),
    ) {
        let mut plan = Plan::new();
        let lx = plan.lit(schema_abc(""), rel_rows(&l));
        let rx = plan.lit(schema_abc("r"), rel_rows(&r));
        let roots = operator_roots(&mut plan, lx, rx, true);
        assert_differential(&plan, &roots);
    }
}

/// A larger deterministic relation (beyond any morsel size under test,
/// with heavy duplication in the sort/partition keys) so the parallel
/// sort's chunk-merge path and multi-morsel probes actually engage.
#[test]
fn operators_agree_on_large_input() {
    let n = 5000i64;
    let l: Vec<(i64, i64, String)> = (0..n)
        .map(|i| {
            let x = (i * 37) % 200 - 100;
            let k = (i * 17) % 13 - 6;
            let s = ["a", "b", "c", "d"][(i % 4) as usize].to_string();
            (x, k, s)
        })
        .collect();
    let r: Vec<(i64, i64, String)> = (0..50i64)
        .map(|i| {
            (
                i % 9 - 4,
                i % 13 - 6,
                ["a", "c", "e"][(i % 3) as usize].to_string(),
            )
        })
        .collect();
    let mut plan = Plan::new();
    let lx = plan.lit(schema_abc(""), rel_rows(&l));
    let rx = plan.lit(schema_abc("r"), rel_rows(&r));
    let roots = operator_roots(&mut plan, lx, rx, false);
    assert_differential(&plan, &roots);
}

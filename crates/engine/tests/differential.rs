//! Differential testing of the parallel + vectorized engine: every
//! operator must produce **cell-for-cell identical** results — including
//! sort and window tie-break order — whether it runs serially or split
//! into morsels across worker threads, and whether it takes the scalar
//! row-at-a-time path or the vectorized typed-chunk path. The serial
//! scalar engine (`VecMode::Off`, one thread) is the oracle; every other
//! configuration in the cross product
//!
//!   {scalar, vectorized} × {1 thread, 4 threads} × morsel sizes {1, 7, 1024}
//!
//! must reproduce it exactly. Morsel outputs reassemble in morsel order,
//! every sort comparator is a total order, and kernels reproduce scalar
//! error semantics, so this is an invariant, not a statistical property;
//! here we check it over random relations and degenerate morsel sizes.

use ferry_algebra::{
    plan::{cn, Aggregate},
    AggFun, BinOp, Dir, Expr, JoinCols, Node, NodeId, Plan, Rel, Schema, Ty, Value,
};
use ferry_engine::{Database, FuseMode, ParConfig, VecMode};
use proptest::prelude::*;

fn schema_abc(prefix: &str) -> Schema {
    Schema::new(vec![
        (format!("{prefix}x").into(), Ty::Int),
        (format!("{prefix}k").into(), Ty::Int),
        (format!("{prefix}s").into(), Ty::Str),
    ])
}

fn row_strategy() -> impl Strategy<Value = (i64, i64, String)> {
    (
        -8i64..8,
        -3i64..3,
        proptest::sample::select(vec!["a", "b", "c"]).prop_map(String::from),
    )
}

fn rel_rows(rows: &[(i64, i64, String)]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|(x, k, s)| vec![Value::Int(*x), Value::Int(*k), Value::str(s.as_str())])
        .collect()
}

/// The oracle configuration: one thread, scalar row-at-a-time evaluation.
fn scalar_oracle() -> ParConfig {
    ParConfig {
        threads: 1,
        vec: VecMode::Off,
        fuse: FuseMode::Off,
        ..ParConfig::default()
    }
}

/// The configurations under test: {scalar, vectorized-forced,
/// fused-forced} × {serial, 4 workers} × degenerate morsel splits.
/// `min_rows: 1` forces the parallel path and `VecMode::Force` /
/// `FuseMode::Force` the vectorized and fused paths even on tiny
/// proptest relations.
fn par_configs() -> Vec<ParConfig> {
    let mut cfgs = Vec::new();
    for (vec, fuse) in [
        (VecMode::Off, FuseMode::Off),
        (VecMode::Force, FuseMode::Off),
        (VecMode::Force, FuseMode::Force),
    ] {
        for threads in [1usize, 4] {
            for morsel_rows in [1usize, 7, 1024] {
                cfgs.push(ParConfig {
                    threads,
                    min_rows: 1,
                    morsel_rows,
                    vec,
                    fuse,
                });
            }
        }
    }
    cfgs
}

/// One root per operator over left/right relations `l` and `r`.
fn operator_roots(plan: &mut Plan, l: NodeId, r: NodeId, quadratic: bool) -> Vec<NodeId> {
    let gt = Expr::bin(BinOp::Gt, Expr::col("x"), Expr::lit(0i64));
    let mut roots = vec![
        plan.select(l, gt.clone()),
        plan.project(l, vec![(cn("k2"), cn("k")), (cn("k3"), cn("k"))]),
        plan.compute(
            l,
            "y",
            Expr::bin(BinOp::Add, Expr::col("x"), Expr::col("k")),
        ),
        plan.attach(l, "tag", Value::str("t")),
        plan.distinct(l),
        plan.union_all(l, r),
        plan.difference(l, r),
        plan.equi_join(l, r, JoinCols::single("k", "rk")),
        plan.semi_join(l, r, JoinCols::single("k", "rk")),
        plan.anti_join(l, r, JoinCols::single("k", "rk")),
        plan.rownum(
            l,
            "rn",
            vec![cn("k")],
            vec![(cn("x"), Dir::Asc), (cn("s"), Dir::Desc)],
        ),
        plan.add(Node::RowRank {
            input: l,
            col: cn("rr"),
            order: vec![(cn("k"), Dir::Asc)],
        }),
        plan.dense_rank(l, "dr", vec![cn("s")], vec![(cn("k"), Dir::Desc)]),
        plan.group_by(
            l,
            vec![cn("s")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("x")),
                    output: cn("sum_x"),
                },
                Aggregate {
                    fun: AggFun::Min,
                    input: Some(cn("k")),
                    output: cn("min_k"),
                },
                Aggregate {
                    fun: AggFun::Max,
                    input: Some(cn("k")),
                    output: cn("max_k"),
                },
                Aggregate {
                    fun: AggFun::Avg,
                    input: Some(cn("x")),
                    output: cn("avg_x"),
                },
            ],
        ),
        plan.serialize(
            l,
            vec![(cn("k"), Dir::Desc), (cn("s"), Dir::Asc)],
            vec![cn("s"), cn("x")],
        ),
    ];
    // views compose: filter → project → sort without materialising
    let sel = plan.select(l, gt);
    let proj = plan.project_keep(sel, &[cn("x"), cn("s")]);
    roots.push(plan.serialize(proj, vec![(cn("x"), Dir::Asc)], vec![cn("s")]));
    if quadratic {
        roots.push(plan.cross(l, r));
        let ne = Expr::bin(BinOp::Lt, Expr::col("x"), Expr::col("rx"));
        roots.push(plan.theta_join(l, r, ne));
    }
    roots
}

fn db_with(par: ParConfig) -> Database {
    let db = Database::new();
    db.set_par_config(par);
    db
}

/// Execute every root under the oracle and each test configuration and
/// demand identical relations.
fn assert_differential(plan: &Plan, roots: &[NodeId]) {
    let serial = db_with(scalar_oracle());
    let baseline: Vec<Rel> = roots
        .iter()
        .map(|&r| serial.execute(plan, r).expect("oracle execute"))
        .collect();
    for cfg in par_configs() {
        let par = db_with(cfg);
        for (&root, expect) in roots.iter().zip(&baseline) {
            let got = par.execute(plan, root).expect("execute under test");
            assert_eq!(
                &got, expect,
                "divergence at node {root:?} with {cfg:?}:\noracle:\n{expect}\nunder test:\n{got}"
            );
        }
        // evaluate all roots as one bundle too: exercises the wavefront
        // scheduler with genuinely concurrent siblings
        let bundled = par.execute_bundle(plan, roots).expect("bundle execute");
        for ((got, expect), &root) in bundled.iter().zip(&baseline).zip(roots) {
            assert_eq!(
                got, expect,
                "bundle divergence at node {root:?} with {cfg:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn operators_agree_serial_vs_parallel(
        l in proptest::collection::vec(row_strategy(), 0..40),
        r in proptest::collection::vec(row_strategy(), 0..12),
    ) {
        let mut plan = Plan::new();
        let lx = plan.lit(schema_abc(""), rel_rows(&l));
        let rx = plan.lit(schema_abc("r"), rel_rows(&r));
        let roots = operator_roots(&mut plan, lx, rx, true);
        assert_differential(&plan, &roots);
    }
}

/// A larger deterministic relation (beyond any morsel size under test,
/// with heavy duplication in the sort/partition keys) so the parallel
/// sort's chunk-merge path and multi-morsel probes actually engage.
#[test]
fn operators_agree_on_large_input() {
    let n = 5000i64;
    let l: Vec<(i64, i64, String)> = (0..n)
        .map(|i| {
            let x = (i * 37) % 200 - 100;
            let k = (i * 17) % 13 - 6;
            let s = ["a", "b", "c", "d"][(i % 4) as usize].to_string();
            (x, k, s)
        })
        .collect();
    let r: Vec<(i64, i64, String)> = (0..50i64)
        .map(|i| {
            (
                i % 9 - 4,
                i % 13 - 6,
                ["a", "c", "e"][(i % 3) as usize].to_string(),
            )
        })
        .collect();
    let mut plan = Plan::new();
    let lx = plan.lit(schema_abc(""), rel_rows(&l));
    let rx = plan.lit(schema_abc("r"), rel_rows(&r));
    let roots = operator_roots(&mut plan, lx, rx, false);
    assert_differential(&plan, &roots);
}

// ---------------------------------------------------------------------
// Mixed-type schemas: Dbl / Bool / Unit columns drive the F64 and Bool
// kernels, the dictionary string paths, and the `Vec<Value>` fallback
// registers (Unit columns transpose to `ColVec::Other`).
// ---------------------------------------------------------------------

fn schema_mixed(prefix: &str) -> Schema {
    Schema::new(vec![
        (format!("{prefix}x").into(), Ty::Int),
        (format!("{prefix}d").into(), Ty::Dbl),
        (format!("{prefix}p").into(), Ty::Bool),
        (format!("{prefix}s").into(), Ty::Str),
        (format!("{prefix}u").into(), Ty::Unit),
    ])
}

/// `-0.0` and `0.0` are distinct under the engine's total order (and
/// distinct eq-codes), so both appear in the pool to pin Dbl group keys.
fn dbl_pool() -> Vec<f64> {
    vec![-1.5, -0.0, 0.0, 0.25, 2.0, 1e300]
}

fn mixed_row_strategy() -> impl Strategy<Value = (i64, f64, bool, String)> {
    (
        -8i64..8,
        proptest::sample::select(dbl_pool()),
        any::<bool>(),
        proptest::sample::select(vec!["a", "b", "c"]).prop_map(String::from),
    )
}

fn mixed_rows(rows: &[(i64, f64, bool, String)]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|(x, d, p, s)| {
            vec![
                Value::Int(*x),
                Value::Dbl(*d),
                Value::Bool(*p),
                Value::str(s.as_str()),
                Value::Unit,
            ]
        })
        .collect()
}

/// Expression-heavy roots over the mixed schema: one per kernel family
/// (integer / float / boolean / string / case / cast), plus the fallback
/// triggers (Unit columns, fallible CASE branches) and the typed
/// group-by / join paths over non-Int key domains.
fn mixed_roots(plan: &mut Plan, l: NodeId, r: NodeId) -> Vec<NodeId> {
    let x = Expr::col("x");
    let d = Expr::col("d");
    let p = Expr::col("p");
    let xp = plan.project_keep(l, &[cn("x"), cn("p")]);
    let mut roots = vec![
        // Bool logic kernel with an infallible comparison RHS
        plan.select(
            l,
            Expr::and(p.clone(), Expr::bin(BinOp::Gt, x.clone(), Expr::lit(0i64))),
        ),
        // F64 comparison kernel (pool includes ±0.0 and a huge value)
        plan.select(l, Expr::bin(BinOp::Lt, d.clone(), Expr::lit(1.5))),
        // NotMask
        plan.select(l, Expr::not(p.clone())),
        // fused integer arithmetic chain (inputs small: never overflows)
        plan.compute(
            l,
            "y",
            Expr::bin(
                BinOp::Mul,
                Expr::bin(BinOp::Add, x.clone(), Expr::lit(1i64)),
                Expr::bin(BinOp::Sub, x.clone(), Expr::lit(2i64)),
            ),
        ),
        // F64 arithmetic kernel
        plan.compute(
            l,
            "z",
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, d.clone(), Expr::lit(2.0)),
                Expr::lit(0.5),
            ),
        ),
        // SelectCase with infallible branches
        plan.compute(l, "c1", Expr::case(p.clone(), x.clone(), Expr::lit(0i64))),
        // CASE with a *fallible* branch: kernel compilation bails, the
        // node must silently take the scalar path
        plan.compute(
            l,
            "c2",
            Expr::case(
                Expr::bin(BinOp::Lt, d.clone(), Expr::lit(0.0)),
                Expr::bin(BinOp::Sub, Expr::lit(0i64), x.clone()),
                x.clone(),
            ),
        ),
        // string concatenation kernel
        plan.compute(
            l,
            "t",
            Expr::bin(BinOp::Concat, Expr::col("s"), Expr::lit(Value::str("!"))),
        ),
        // widening cast kernel
        plan.compute(l, "w", Expr::cast(Ty::Dbl, x.clone())),
        // Unit column: ColVec::Other → Vec<Value> fallback registers
        plan.compute(l, "u2", Expr::col("u")),
        // distinct over the full mixed schema (Unit key ⇒ scalar fallback)
        plan.distinct(l),
        // typed distinct over Int+Bool only
        plan.distinct(xp),
        // typed group-by: Str+Bool keys, aggregates over every domain
        plan.group_by(
            l,
            vec![cn("s"), cn("p")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("x")),
                    output: cn("sum_x"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("d")),
                    output: cn("sum_d"),
                },
                Aggregate {
                    fun: AggFun::Max,
                    input: Some(cn("d")),
                    output: cn("max_d"),
                },
                Aggregate {
                    fun: AggFun::Avg,
                    input: Some(cn("d")),
                    output: cn("avg_d"),
                },
                Aggregate {
                    fun: AggFun::All,
                    input: Some(cn("p")),
                    output: cn("all_p"),
                },
                Aggregate {
                    fun: AggFun::Any,
                    input: Some(cn("p")),
                    output: cn("any_p"),
                },
                // Min over a Unit column: accumulates through ColVec::Other
                Aggregate {
                    fun: AggFun::Min,
                    input: Some(cn("u")),
                    output: cn("min_u"),
                },
            ],
        ),
        // Dbl group keys: ±0.0 are distinct groups, 1e300 collides never
        plan.group_by(
            l,
            vec![cn("d")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Min,
                    input: Some(cn("s")),
                    output: cn("min_s"),
                },
            ],
        ),
        // typed joins on Int and Dbl key domains
        plan.equi_join(l, r, JoinCols::single("x", "rx")),
        plan.semi_join(l, r, JoinCols::single("x", "rx")),
        plan.anti_join(l, r, JoinCols::single("x", "rx")),
        plan.equi_join(l, r, JoinCols::single("d", "rd")),
        plan.union_all(l, r),
        plan.difference(l, r),
        plan.serialize(
            l,
            vec![(cn("d"), Dir::Asc), (cn("x"), Dir::Desc)],
            vec![cn("s"), cn("d"), cn("p")],
        ),
    ];
    // chained views: vectorized select → vectorized compute → group-by
    let sel = plan.select(l, Expr::bin(BinOp::Ge, x.clone(), Expr::lit(-4i64)));
    let cmp = plan.compute(
        sel,
        "xx",
        Expr::bin(BinOp::Mul, Expr::col("x"), Expr::col("x")),
    );
    roots.push(plan.group_by(
        cmp,
        vec![cn("p")],
        vec![Aggregate {
            fun: AggFun::Sum,
            input: Some(cn("xx")),
            output: cn("sum_xx"),
        }],
    ));
    roots
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn mixed_type_operators_agree(
        l in proptest::collection::vec(mixed_row_strategy(), 0..48),
        r in proptest::collection::vec(mixed_row_strategy(), 0..12),
    ) {
        let mut plan = Plan::new();
        let lx = plan.lit(schema_mixed(""), mixed_rows(&l));
        let rx = plan.lit(schema_mixed("r"), mixed_rows(&r));
        let roots = mixed_roots(&mut plan, lx, rx);
        assert_differential(&plan, &roots);
    }
}

#[test]
fn mixed_type_operators_agree_on_large_input() {
    let pool = dbl_pool();
    let l: Vec<(i64, f64, bool, String)> = (0..4000i64)
        .map(|i| {
            (
                (i * 31) % 17 - 8,
                pool[(i % pool.len() as i64) as usize],
                i % 3 == 0,
                ["a", "b", "c"][(i % 3) as usize].to_string(),
            )
        })
        .collect();
    let r: Vec<(i64, f64, bool, String)> = (0..60i64)
        .map(|i| {
            (
                (i * 7) % 17 - 8,
                pool[((i + 2) % pool.len() as i64) as usize],
                i % 2 == 0,
                ["b", "d"][(i % 2) as usize].to_string(),
            )
        })
        .collect();
    let mut plan = Plan::new();
    let lx = plan.lit(schema_mixed(""), mixed_rows(&l));
    let rx = plan.lit(schema_mixed("r"), mixed_rows(&r));
    let roots = mixed_roots(&mut plan, lx, rx);
    assert_differential(&plan, &roots);
}

// ---------------------------------------------------------------------
// Pipeline-shaped roots: multi-operator chains the pipeline compiler
// groups into one fused batch program (scan → Select*/Compute/Project/
// Attach → window / join-probe / serialize / group-by sink). Under
// `FuseMode::Force` in the config matrix these run the fused streaming
// loop; the oracle and the unfused configs evaluate the same nodes
// one at a time — results must be cell-for-cell identical either way.
// ---------------------------------------------------------------------

/// Chains over the mixed schema, one per fusible sink family, each at
/// least three operators deep so the chain compiler has real work.
fn pipeline_roots(plan: &mut Plan, l: NodeId, r: NodeId) -> Vec<NodeId> {
    let x = Expr::col("x");
    let d = Expr::col("d");
    let mut roots = Vec::new();

    // select → compute → rownum: window sink over a computed order key
    let s1 = plan.select(l, Expr::bin(BinOp::Ge, x.clone(), Expr::lit(-5i64)));
    let c1 = plan.compute(
        s1,
        "y",
        Expr::bin(
            BinOp::Mul,
            x.clone(),
            Expr::bin(BinOp::Add, x.clone(), Expr::lit(3i64)),
        ),
    );
    roots.push(plan.rownum(c1, "rn", vec![cn("s")], vec![(cn("y"), Dir::Asc)]));

    // compute → select-on-computed → dense_rank ordered by a Dbl column
    // (±0.0 keys stay distinct through the fused path)
    let c2 = plan.compute(l, "v", Expr::bin(BinOp::Add, d.clone(), Expr::lit(0.0)));
    let s2 = plan.select(c2, Expr::bin(BinOp::Lt, Expr::col("v"), Expr::lit(10.0)));
    roots.push(plan.dense_rank(s2, "dr", vec![cn("p")], vec![(cn("d"), Dir::Desc)]));

    // select → project → attach → serialize: dict-string sort keys
    let s3 = plan.select(l, Expr::bin(BinOp::Gt, x.clone(), Expr::lit(-6i64)));
    let p3 = plan.project_keep(s3, &[cn("s"), cn("d"), cn("x")]);
    let a3 = plan.attach(p3, "tag", Value::str("t"));
    roots.push(plan.serialize(
        a3,
        vec![(cn("s"), Dir::Asc), (cn("d"), Dir::Desc)],
        vec![cn("tag"), cn("s"), cn("x")],
    ));

    // select → compute → equi-join probe (the chain is the build-free
    // left input; the right side stays a pipeline breaker)
    let s4 = plan.select(l, Expr::bin(BinOp::Le, x.clone(), Expr::lit(6i64)));
    let c4 = plan.compute(s4, "xm", Expr::bin(BinOp::Mod, x.clone(), Expr::lit(5i64)));
    roots.push(plan.equi_join(c4, r, JoinCols::single("x", "rx")));
    roots.push(plan.semi_join(c4, r, JoinCols::single("x", "rx")));
    roots.push(plan.anti_join(c4, r, JoinCols::single("x", "rx")));

    // select → compute → group-by sink over string keys
    let s5 = plan.select(l, Expr::not(Expr::col("p")));
    let c5 = plan.compute(s5, "w", Expr::bin(BinOp::Mul, d.clone(), Expr::lit(2.0)));
    roots.push(plan.group_by(
        c5,
        vec![cn("s")],
        vec![
            Aggregate {
                fun: AggFun::CountAll,
                input: None,
                output: cn("n"),
            },
            Aggregate {
                fun: AggFun::Sum,
                input: Some(cn("w")),
                output: cn("sum_w"),
            },
        ],
    ));

    // deep chain: select → compute → select → compute → rowrank
    let s6 = plan.select(l, Expr::bin(BinOp::Gt, x.clone(), Expr::lit(-7i64)));
    let c6 = plan.compute(s6, "a", Expr::bin(BinOp::Add, x.clone(), Expr::lit(1i64)));
    let s7 = plan.select(
        c6,
        Expr::bin(
            BinOp::Ne,
            Expr::bin(BinOp::Mod, Expr::col("a"), Expr::lit(3i64)),
            Expr::lit(0i64),
        ),
    );
    let c7 = plan.compute(
        s7,
        "b",
        Expr::bin(BinOp::Mul, Expr::col("a"), Expr::col("a")),
    );
    roots.push(plan.add(Node::RowRank {
        input: c7,
        col: cn("rr"),
        order: vec![(cn("b"), Dir::Asc)],
    }));

    // chain into a *breaker*: distinct re-derives nothing, the chain
    // below it still fuses and the breaker evaluates node-at-a-time
    let s8 = plan.select(l, Expr::bin(BinOp::Ge, d.clone(), Expr::lit(-2.0)));
    let c8 = plan.compute(
        s8,
        "t",
        Expr::bin(BinOp::Concat, Expr::col("s"), Expr::lit(Value::str("#"))),
    );
    let p8 = plan.project_keep(c8, &[cn("t"), cn("p")]);
    roots.push(plan.distinct(p8));

    roots
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn pipeline_chains_agree(
        l in proptest::collection::vec(mixed_row_strategy(), 0..48),
        r in proptest::collection::vec(mixed_row_strategy(), 0..12),
    ) {
        let mut plan = Plan::new();
        let lx = plan.lit(schema_mixed(""), mixed_rows(&l));
        let rx = plan.lit(schema_mixed("r"), mixed_rows(&r));
        let roots = pipeline_roots(&mut plan, lx, rx);
        assert_differential(&plan, &roots);
    }
}

#[test]
fn pipeline_chains_agree_on_large_input() {
    let pool = dbl_pool();
    let l: Vec<(i64, f64, bool, String)> = (0..4000i64)
        .map(|i| {
            (
                (i * 29) % 15 - 7,
                pool[(i % pool.len() as i64) as usize],
                i % 4 == 0,
                ["a", "b", "c", "d"][(i % 4) as usize].to_string(),
            )
        })
        .collect();
    let r: Vec<(i64, f64, bool, String)> = (0..60i64)
        .map(|i| {
            (
                (i * 11) % 15 - 7,
                pool[((i + 1) % pool.len() as i64) as usize],
                i % 2 == 0,
                ["b", "e"][(i % 2) as usize].to_string(),
            )
        })
        .collect();
    let mut plan = Plan::new();
    let lx = plan.lit(schema_mixed(""), mixed_rows(&l));
    let rx = plan.lit(schema_mixed("r"), mixed_rows(&r));
    let roots = pipeline_roots(&mut plan, lx, rx);
    assert_differential(&plan, &roots);
}

// ---------------------------------------------------------------------
// Error parity: when an expression fails on some row, the scalar and
// vectorized paths must agree on *whether* the query fails and on the
// error message. (Each root below has a single possible error kind, so
// the instruction-major kernel order and the row-major scalar order
// cannot surface different messages.)
// ---------------------------------------------------------------------

#[test]
fn runtime_errors_agree_across_paths() {
    // x cycles through -2..=2, so both roots fail iff the relation is
    // non-empty (division by zero at x == 0), and the overflow root
    // fails via checked i64 addition
    for n in [0usize, 1, 5, 100, 3000] {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Int((i as i64) % 5 - 2)])
            .collect();
        let mut plan = Plan::new();
        let l = plan.lit(Schema::of(&[("x", Ty::Int)]), rows);
        let div = plan.compute(
            l,
            "q",
            Expr::bin(BinOp::Div, Expr::lit(10i64), Expr::col("x")),
        );
        let ovf = plan.compute(
            l,
            "o",
            Expr::bin(BinOp::Add, Expr::col("x"), Expr::lit(i64::MAX)),
        );
        let sel = plan.select(
            l,
            Expr::bin(
                BinOp::Gt,
                Expr::bin(BinOp::Mod, Expr::lit(7i64), Expr::col("x")),
                Expr::lit(0i64),
            ),
        );
        // mid-pipeline error sites: the fallible expression sits inside a
        // fused chain (select upstream, window/serialize sink downstream),
        // so the fused streaming loop must surface the same message —
        // division by zero is each root's only possible error, and
        // lowest-error-row-wins makes the surviving message deterministic
        let keep = plan.select(l, Expr::bin(BinOp::Gt, Expr::col("x"), Expr::lit(-2i64)));
        let mid = plan.compute(
            keep,
            "q",
            Expr::bin(BinOp::Div, Expr::lit(10i64), Expr::col("x")),
        );
        let piped_rn = plan.rownum(mid, "rn", vec![], vec![(cn("q"), Dir::Asc)]);
        let piped_ser = plan.serialize(mid, vec![(cn("q"), Dir::Desc)], vec![cn("x"), cn("q")]);
        let oracle = db_with(scalar_oracle());
        for root in [div, ovf, sel, piped_rn, piped_ser] {
            let expect = oracle.execute(&plan, root).map_err(|e| e.to_string());
            for cfg in par_configs() {
                let got = db_with(cfg).execute(&plan, root).map_err(|e| e.to_string());
                assert_eq!(got, expect, "error divergence at {root:?} with {cfg:?}");
            }
        }
    }
}

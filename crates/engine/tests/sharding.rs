//! Hash-partitioned shards: routing stability, durable round trips,
//! partition pruning, shard-local aggregation, and the sharded-vs-
//! unsharded differential.
//!
//! The sharding layer is an *optimisation*, never an observable: a
//! sharded database must return cell-for-cell the relations (and the
//! errors) of an unsharded one over the same data, while the row→shard
//! assignment itself must be pinned forever — a row's shard survives
//! recovery, process restarts and engine upgrades, which is what makes
//! shard-local WAL replay correct. Golden vectors pin the hash; the
//! crash tests pin the recovery path; the differential pins semantics.

use ferry_algebra::{
    plan::{cn, Aggregate},
    AggFun, BinOp, Dir, Expr, JoinCols, NodeId, Plan, Rel, Row, Schema, Ty, Value,
};
use ferry_engine::{
    shard_hash, shard_of, Database, DurabilityConfig, FsyncPolicy, FuseMode, ParConfig, VecMode,
};
use ferry_storage::{FaultFs, Vfs};
use proptest::prelude::*;
use std::sync::Arc;

const S: usize = 4;

fn config() -> DurabilityConfig {
    DurabilityConfig::with_fsync(FsyncPolicy::Always)
}

fn open_sharded(vfs: &Arc<FaultFs>, shards: usize) -> Database {
    Database::open_sharded_with_vfs(vfs.clone() as Arc<dyn Vfs>, shards, config()).unwrap()
}

fn orders_schema() -> Schema {
    Schema::of(&[("cust", Ty::Int), ("qty", Ty::Int), ("tag", Ty::Str)])
}

fn orders_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            vec![
                Value::Int(i % 23 - 11),
                Value::Int((i * 7) % 50),
                Value::str(["a", "b", "c"][(i % 3) as usize]),
            ]
        })
        .collect()
}

/// Seed one sharded database: `orders` partitioned on `cust`, plus an
/// unsharded (home-routed) side table.
fn seed(db: &Database, n: i64) {
    db.create_table_sharded("orders", orders_schema(), vec!["cust"], "cust")
        .unwrap();
    db.insert("orders", orders_rows(n)).unwrap();
    db.create_table(
        "names",
        Schema::of(&[("id", Ty::Int), ("name", Ty::Str)]),
        vec!["id"],
    )
    .unwrap();
    db.insert(
        "names",
        (-11..12)
            .map(|i| vec![Value::Int(i), Value::str(["x", "y"][(i & 1) as usize])])
            .collect(),
    )
    .unwrap();
}

// ---------------------------------------------------------------------
// Satellite: ShardHash golden vectors + routing determinism
// ---------------------------------------------------------------------

/// The versioned hash is a **forever contract**: these constants were
/// computed once from the spec (FNV-1a 64 over the LE version prefix,
/// the type tag byte, then the LE payload) and must never change — a
/// drift here silently reroutes every existing sharded directory.
#[test]
fn golden_shard_hash_vectors() {
    let golden: &[(Value, u64)] = &[
        (Value::Unit, 0xd80d_6cae_a7dc_7eec),
        (Value::Bool(true), 0xfb51_fdc7_3bae_8c7a),
        (Value::Int(0), 0x1379_67e0_3fa6_8092),
        (Value::Int(1), 0x3274_2ee9_4a95_cab3),
        (Value::Int(42), 0xacb2_f337_df2b_8178),
        (Value::Int(-1), 0xc4e1_74c4_92a4_0d0a),
        (Value::Nat(1), 0x136a_f603_4db0_6812),
        (Value::Dbl(1.5), 0xa98b_6e3d_d682_f060),
        (Value::Dbl(0.0), 0xa6e3_bd3d_d441_76a5),
        (Value::Dbl(-0.0), 0xa6e4_3d3d_d442_5025),
        (Value::str(""), 0xd80d_68ae_a7dc_7820),
        (Value::str("ferry"), 0xaa7b_d056_6e28_59a4),
    ];
    for (v, want) in golden {
        assert_eq!(
            shard_hash(v),
            *want,
            "golden vector drifted for {v:?} — the row→shard hash is a \
             forever contract, fix the code, never the constant"
        );
    }
}

proptest! {
    /// `shard_of` is a pure function of the value and the shard count:
    /// recomputing it (any process, any time) yields the same shard, and
    /// the shard is always in range.
    #[test]
    fn routing_is_deterministic_and_in_range(
        ints in proptest::collection::vec(any::<i64>(), 1..50),
        shards in 1usize..65,
    ) {
        for i in ints {
            let v = Value::Int(i);
            let k = shard_of(&v, shards);
            prop_assert!((k as usize) < shards);
            prop_assert_eq!(k, shard_of(&Value::Int(i), shards));
        }
    }
}

// ---------------------------------------------------------------------
// Tentpole: durable round trips and crash recovery keep the assignment
// ---------------------------------------------------------------------

/// Shard assignment of every row, read from the catalog's partition
/// state, verified internally consistent with the declared key.
fn assignment(db: &Database, table: &str, key_col: usize, shards: usize) -> Vec<u32> {
    let t = db.table(table).unwrap();
    let ts = t.shard.as_ref().expect("sharded database table");
    assert_eq!(ts.shard_of.len(), t.rows.rows().len(), "row-aligned");
    for (i, row) in t.rows.rows().iter().enumerate() {
        assert_eq!(
            ts.shard_of[i],
            shard_of(&row[key_col], shards),
            "row {i} routed off its key hash"
        );
    }
    ts.shard_of.clone()
}

#[test]
fn sharded_roundtrip_restores_tables_and_reports() {
    let vfs = Arc::new(FaultFs::new());
    let before = {
        let db = open_sharded(&vfs, S);
        assert_eq!(db.shards(), S);
        seed(&db, 200);
        assignment(&db, "orders", 0, S)
    };
    let db = open_sharded(&vfs, S);
    let t = db.table("orders").unwrap();
    assert_eq!(t.rows.rows(), &orders_rows(200)[..], "insert order kept");
    assert_eq!(
        assignment(&db, "orders", 0, S),
        before,
        "recovery re-derives the exact pre-restart shard assignment"
    );
    // the unsharded side table recovered too, home-routed on one shard
    let names = db.table("names").unwrap();
    let nts = names.shard.as_ref().unwrap();
    assert!(nts.key.is_none());
    assert!(nts.shard_of.iter().all(|&k| k == nts.home));
    let report = db.shard_recovery_report().expect("sharded recovery ran");
    assert_eq!(report.shards, S);
    assert!(report.render().contains("recovery"));
}

#[test]
fn crash_mid_workload_keeps_every_acked_row_on_its_shard() {
    let vfs = Arc::new(FaultFs::new());
    let before = {
        let db = open_sharded(&vfs, S);
        seed(&db, 64);
        // checkpoint so recovery exercises snapshot + WAL-tail replay,
        // then keep writing past it
        db.checkpoint().unwrap();
        db.insert("orders", orders_rows(64)).unwrap();
        assignment(&db, "orders", 0, S)
    };
    vfs.crash(); // drop everything not durably synced
    let db = open_sharded(&vfs, S);
    let t = db.table("orders").unwrap();
    assert_eq!(t.rows.rows().len(), 128, "fsync Always: all acked rows");
    assert_eq!(
        assignment(&db, "orders", 0, S),
        before,
        "pre-crash rows land on the same shard after replay"
    );
}

// ---------------------------------------------------------------------
// Tentpole: partition pruning and shard-local group-by
// ---------------------------------------------------------------------

fn orders_scan(plan: &mut Plan) -> NodeId {
    plan.table(
        "orders",
        vec![
            (cn("cust"), Ty::Int),
            (cn("qty"), Ty::Int),
            (cn("tag"), Ty::Str),
        ],
        vec![cn("cust")],
    )
}

#[test]
fn shard_key_equality_scan_prunes_and_counts() {
    let db = Database::new_sharded(S).unwrap();
    seed(&db, 400);
    let mut plan = Plan::new();
    let t = orders_scan(&mut plan);
    let root = plan.select(t, Expr::bin(BinOp::Eq, Expr::col("cust"), Expr::lit(3i64)));
    db.reset_stats();
    let got = db.execute(&plan, root).unwrap();
    // semantics: exactly the unsharded answer
    let plain = Database::new();
    plain
        .create_table("orders", orders_schema(), vec!["cust"])
        .unwrap();
    plain.insert("orders", orders_rows(400)).unwrap();
    let want = plain.execute(&plan, root).unwrap();
    assert_eq!(got, want);
    // accounting: one shard scanned, the rest pruned without a read
    let st = db.stats();
    let total = 400u64;
    assert!(st.shard_pruned > 0, "equality predicate must prune");
    assert_eq!(st.shard_rows + st.shard_pruned, total);
    let prof = st.latest_profile().unwrap();
    let scan = prof
        .nodes
        .iter()
        .find(|p| p.shards_total > 0)
        .expect("sharded scan profiled");
    assert_eq!(scan.shards_total, S as u32);
    assert_eq!(scan.shards_scanned, 1, "cust = 3 pins one shard");
    assert!(st.shard_rows < total, "only one shard's rows were read");
}

#[test]
fn multi_consumer_scans_are_never_pruned() {
    let db = Database::new_sharded(S).unwrap();
    seed(&db, 100);
    let mut plan = Plan::new();
    let t = orders_scan(&mut plan);
    let eq = plan.select(t, Expr::bin(BinOp::Eq, Expr::col("cust"), Expr::lit(3i64)));
    // second consumer of the same scan: a global count that must see
    // every shard even though its sibling's predicate pins one
    let count = plan.group_by(
        t,
        vec![],
        vec![Aggregate {
            fun: AggFun::CountAll,
            input: None,
            output: cn("n"),
        }],
    );
    db.reset_stats();
    let out = db.execute_bundle(&plan, &[eq, count]).unwrap();
    assert_eq!(out[1].cell(0, 0), &Value::Int(100), "count sees all rows");
    assert_eq!(db.stats().shard_pruned, 0, "shared scan cannot prune");
}

#[test]
fn in_style_or_chain_prunes_to_the_union_of_shards() {
    let db = Database::new_sharded(S).unwrap();
    seed(&db, 300);
    let mut plan = Plan::new();
    let t = orders_scan(&mut plan);
    let eq = |v: i64| Expr::bin(BinOp::Eq, Expr::col("cust"), Expr::lit(v));
    let root = plan.select(t, Expr::bin(BinOp::Or, eq(1), eq(5)));
    db.reset_stats();
    let got = db.execute(&plan, root).unwrap();
    let plain = Database::new();
    plain
        .create_table("orders", orders_schema(), vec!["cust"])
        .unwrap();
    plain.insert("orders", orders_rows(300)).unwrap();
    assert_eq!(got, plain.execute(&plan, root).unwrap());
    let st = db.stats();
    let prof = st.latest_profile().unwrap();
    let scan = prof.nodes.iter().find(|p| p.shards_total > 0).unwrap();
    let k1 = shard_of(&Value::Int(1), S);
    let k5 = shard_of(&Value::Int(5), S);
    let want = if k1 == k5 { 1 } else { 2 };
    assert_eq!(scan.shards_scanned, want, "OR unions the pinned shards");
}

#[test]
fn group_by_on_shard_key_is_exact_including_order() {
    let db = Database::new_sharded(S).unwrap();
    seed(&db, 500);
    let plain = Database::new();
    plain
        .create_table("orders", orders_schema(), vec!["cust"])
        .unwrap();
    plain.insert("orders", orders_rows(500)).unwrap();
    let mut plan = Plan::new();
    let t = orders_scan(&mut plan);
    let aggs = vec![
        Aggregate {
            fun: AggFun::CountAll,
            input: None,
            output: cn("n"),
        },
        Aggregate {
            fun: AggFun::Sum,
            input: Some(cn("qty")),
            output: cn("total"),
        },
        Aggregate {
            fun: AggFun::Min,
            input: Some(cn("tag")),
            output: cn("min_tag"),
        },
    ];
    // directly on the key; through a filter; and through a rename
    let direct = plan.group_by(t, vec![cn("cust")], aggs.clone());
    let sel = plan.select(t, Expr::bin(BinOp::Gt, Expr::col("qty"), Expr::lit(10i64)));
    let filtered = plan.group_by(sel, vec![cn("cust")], aggs.clone());
    let renamed_in = plan.project(t, vec![(cn("c2"), cn("cust")), (cn("qty"), cn("qty"))]);
    let renamed = plan.group_by(
        renamed_in,
        vec![cn("c2")],
        vec![Aggregate {
            fun: AggFun::Sum,
            input: Some(cn("qty")),
            output: cn("total"),
        }],
    );
    for cfg in [
        ParConfig {
            threads: 1,
            vec: VecMode::Off,
            fuse: FuseMode::Off,
            ..ParConfig::default()
        },
        ParConfig {
            threads: 4,
            min_rows: 1,
            ..ParConfig::default()
        },
    ] {
        db.set_par_config(cfg);
        plain.set_par_config(cfg);
        for root in [direct, filtered, renamed] {
            let got = db.execute(&plan, root).unwrap();
            let want = plain.execute(&plan, root).unwrap();
            assert_eq!(
                got, want,
                "shard-local group-by diverged at {root:?} under {cfg:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: sharded (S ∈ {1, 4}) vs unsharded differential — scans,
// filters, group-bys on non-shard keys, and joins that force the
// repartition (full-scan merge) path, across the whole config matrix.
// ---------------------------------------------------------------------

fn diff_roots(plan: &mut Plan) -> Vec<NodeId> {
    let t = orders_scan(plan);
    let names = plan.table(
        "names",
        vec![(cn("id"), Ty::Int), (cn("name"), Ty::Str)],
        vec![cn("id")],
    );
    let eq3 = Expr::bin(BinOp::Eq, Expr::col("cust"), Expr::lit(3i64));
    let mut roots = vec![
        // pruned scan (sole-consumer select on the shard key)
        plan.select(t, eq3.clone()),
        // range predicate: unprunable, full scan
        plan.select(t, Expr::bin(BinOp::Lt, Expr::col("cust"), Expr::lit(0i64))),
        // group-by on the shard key: shard-local path
        plan.group_by(
            t,
            vec![cn("cust")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Sum,
                    input: Some(cn("qty")),
                    output: cn("total"),
                },
            ],
        ),
        // group-by on a NON-shard key: needs the global (repartition)
        // path — groups span shards
        plan.group_by(
            t,
            vec![cn("tag")],
            vec![
                Aggregate {
                    fun: AggFun::CountAll,
                    input: None,
                    output: cn("n"),
                },
                Aggregate {
                    fun: AggFun::Avg,
                    input: Some(cn("qty")),
                    output: cn("avg_q"),
                },
            ],
        ),
        // join on the shard key against an unsharded build side
        plan.equi_join(t, names, JoinCols::single("cust", "id")),
        // join on a non-shard key: both sides repartition (full scans)
        plan.equi_join(t, names, JoinCols::single("qty", "id")),
        plan.semi_join(t, names, JoinCols::single("cust", "id")),
        plan.serialize(
            t,
            vec![(cn("qty"), Dir::Desc), (cn("cust"), Dir::Asc)],
            vec![cn("cust"), cn("qty"), cn("tag")],
        ),
    ];
    // pruned scan feeding a shard-local group-by through a chain
    let sel = plan.select(
        t,
        Expr::bin(
            BinOp::Or,
            eq3,
            Expr::bin(BinOp::Eq, Expr::col("cust"), Expr::lit(-7i64)),
        ),
    );
    roots.push(plan.group_by(
        sel,
        vec![cn("cust")],
        vec![Aggregate {
            fun: AggFun::Max,
            input: Some(cn("qty")),
            output: cn("max_q"),
        }],
    ));
    roots
}

fn matrix() -> Vec<ParConfig> {
    let mut cfgs = Vec::new();
    for (vec, fuse) in [
        (VecMode::Off, FuseMode::Off),
        (VecMode::Force, FuseMode::Off),
        (VecMode::Force, FuseMode::Force),
    ] {
        for threads in [1usize, 4] {
            cfgs.push(ParConfig {
                threads,
                min_rows: 1,
                morsel_rows: 64,
                vec,
                fuse,
            });
        }
    }
    cfgs
}

fn seeded_dbs(n: i64) -> Vec<(String, Database)> {
    let mut dbs = vec![("unsharded".to_string(), Database::new())];
    for s in [1usize, 4] {
        dbs.push((format!("S={s}"), Database::new_sharded(s).unwrap()));
    }
    for (label, db) in &dbs {
        if label == "unsharded" {
            db.create_table("orders", orders_schema(), vec!["cust"])
                .unwrap();
            db.insert("orders", orders_rows(n)).unwrap();
            db.create_table(
                "names",
                Schema::of(&[("id", Ty::Int), ("name", Ty::Str)]),
                vec!["id"],
            )
            .unwrap();
            db.insert(
                "names",
                (-11..12)
                    .map(|i| vec![Value::Int(i), Value::str(["x", "y"][(i & 1) as usize])])
                    .collect(),
            )
            .unwrap();
        } else {
            seed(db, n);
        }
    }
    dbs
}

#[test]
fn sharded_and_unsharded_agree_cell_for_cell() {
    for n in [0i64, 1, 37, 600] {
        let dbs = seeded_dbs(n);
        let mut plan = Plan::new();
        let roots = diff_roots(&mut plan);
        for cfg in matrix() {
            let baseline: Vec<Rel> = {
                let (_, oracle) = &dbs[0];
                oracle.set_par_config(ParConfig {
                    threads: 1,
                    vec: VecMode::Off,
                    fuse: FuseMode::Off,
                    ..ParConfig::default()
                });
                roots
                    .iter()
                    .map(|&r| oracle.execute(&plan, r).unwrap())
                    .collect()
            };
            for (label, db) in &dbs {
                db.set_par_config(cfg);
                for (&root, want) in roots.iter().zip(&baseline) {
                    let got = db.execute(&plan, root).unwrap();
                    assert_eq!(
                        &got, want,
                        "{label} diverged at node {root:?} (n={n}) under {cfg:?}"
                    );
                }
                let bundled = db.execute_bundle(&plan, &roots).unwrap();
                for (got, want) in bundled.iter().zip(&baseline) {
                    assert_eq!(got, want, "{label} bundle divergence (n={n}, {cfg:?})");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random row sets: the sharded engines must reproduce the unsharded
    /// oracle over arbitrary data, not just the deterministic seeds.
    #[test]
    fn sharded_differential_over_random_rows(
        rows in proptest::collection::vec((-11i64..12, 0i64..50, 0usize..3), 0..80),
    ) {
        let to_rows = |rows: &[(i64, i64, usize)]| -> Vec<Row> {
            rows.iter()
                .map(|(c, q, s)| {
                    vec![Value::Int(*c), Value::Int(*q), Value::str(["a", "b", "c"][*s])]
                })
                .collect()
        };
        let oracle = Database::new();
        oracle.create_table("orders", orders_schema(), vec!["cust"]).unwrap();
        oracle.insert("orders", to_rows(&rows)).unwrap();
        let sharded = Database::new_sharded(4).unwrap();
        sharded
            .create_table_sharded("orders", orders_schema(), vec!["cust"], "cust")
            .unwrap();
        sharded.insert("orders", to_rows(&rows)).unwrap();
        let mut plan = Plan::new();
        let t = orders_scan(&mut plan);
        let roots = [
            plan.select(t, Expr::bin(BinOp::Eq, Expr::col("cust"), Expr::lit(3i64))),
            plan.group_by(
                t,
                vec![cn("cust")],
                vec![Aggregate { fun: AggFun::Sum, input: Some(cn("qty")), output: cn("s") }],
            ),
            plan.group_by(
                t,
                vec![cn("tag")],
                vec![Aggregate { fun: AggFun::CountAll, input: None, output: cn("n") }],
            ),
        ];
        for cfg in [
            ParConfig { threads: 1, vec: VecMode::Off, fuse: FuseMode::Off, ..ParConfig::default() },
            ParConfig { threads: 4, min_rows: 1, vec: VecMode::Force, fuse: FuseMode::Force, ..ParConfig::default() },
        ] {
            oracle.set_par_config(cfg);
            sharded.set_par_config(cfg);
            for root in roots {
                prop_assert_eq!(
                    sharded.execute(&plan, root).unwrap(),
                    oracle.execute(&plan, root).unwrap(),
                    "divergence at {:?} under {:?}", root, cfg
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Error parity: sharded execution reports the exact error of the
// unsharded run (shard-local parts that fail fall back to the global
// path, which owns lowest-error-row-wins semantics).
// ---------------------------------------------------------------------

#[test]
fn errors_match_the_unsharded_run_exactly() {
    let schema = Schema::of(&[("k", Ty::Int), ("v", Ty::Int)]);
    let rows: Vec<Row> = (0..40)
        .map(|i| {
            // one group (k = 7) overflows its SUM; division by x-3 fails
            // on some rows of several shards
            let v = if i % 23 == 7 { i64::MAX } else { i64::from(i) };
            vec![Value::Int(i64::from(i) % 23 - 11), Value::Int(v)]
        })
        .collect();
    let oracle = Database::new();
    oracle.create_table("t", schema.clone(), vec!["k"]).unwrap();
    oracle.insert("t", rows.clone()).unwrap();
    let sharded = Database::new_sharded(S).unwrap();
    sharded
        .create_table_sharded("t", schema, vec!["k"], "k")
        .unwrap();
    sharded.insert("t", rows).unwrap();
    let mut plan = Plan::new();
    let t = plan.table(
        "t",
        vec![(cn("k"), Ty::Int), (cn("v"), Ty::Int)],
        vec![cn("k")],
    );
    // SUM overflow inside a shard-local group-by
    let ovf = plan.group_by(
        t,
        vec![cn("k")],
        vec![Aggregate {
            fun: AggFun::Sum,
            input: Some(cn("v")),
            output: cn("s"),
        }],
    );
    // row-level eval error under a pruned-scan select
    let div = plan.compute(
        t,
        "q",
        Expr::bin(
            BinOp::Div,
            Expr::lit(1i64),
            Expr::bin(BinOp::Sub, Expr::col("k"), Expr::lit(3i64)),
        ),
    );
    for cfg in matrix() {
        oracle.set_par_config(cfg);
        sharded.set_par_config(cfg);
        for root in [ovf, div] {
            let want = oracle.execute(&plan, root).map_err(|e| e.to_string());
            let got = sharded.execute(&plan, root).map_err(|e| e.to_string());
            assert!(want.is_err(), "roots are constructed to fail");
            assert_eq!(got, want, "error divergence at {root:?} under {cfg:?}");
        }
    }
}

//! Engine-level durability: `Database::open` / `open_with_vfs` round
//! trips, crash recovery of acked mutations, and WAL compaction — the
//! wiring above `ferry-storage` that the storage crate's own fault suite
//! cannot see.

use ferry_algebra::{Row, RowBuf, Schema, Ty, Value};
use ferry_engine::{BaseTable, Database, DurabilityConfig, EngineError, FsyncPolicy};
use ferry_storage::{Fault, FaultFs, Vfs, WAL_FILE};
use std::sync::Arc;

fn v(i: i64) -> Value {
    Value::Int(i)
}

fn s(x: &str) -> Value {
    Value::str(x)
}

fn config() -> DurabilityConfig {
    DurabilityConfig::with_fsync(FsyncPolicy::Always)
}

fn open(vfs: &Arc<FaultFs>, config: DurabilityConfig) -> Result<Database, EngineError> {
    Database::open_with_vfs(vfs.clone() as Arc<dyn Vfs>, config)
}

fn seed_rows() -> Vec<Row> {
    vec![
        vec![v(1), s("ada")],
        vec![v(2), s("bob")],
        vec![v(3), s("cy")],
    ]
}

fn create_people(db: &Database) {
    db.create_table(
        "people",
        Schema::of(&[("id", Ty::Int), ("name", Ty::Str)]),
        vec!["id"],
    )
    .unwrap();
    db.insert("people", seed_rows()).unwrap();
}

#[test]
fn durable_roundtrip_restores_tables_and_bumps_schema_version() {
    let vfs = Arc::new(FaultFs::new());
    {
        let db = open(&vfs, config()).unwrap();
        assert!(db.is_durable());
        assert_eq!(db.schema_version(), 0, "fresh store recovered nothing");
        create_people(&db);
        db.create_table("empty", Schema::of(&[("x", Ty::Int)]), vec!["x"])
            .unwrap();
    }
    let db = open(&vfs, config()).unwrap();
    assert_eq!(db.table("people").unwrap().rows.rows(), &seed_rows()[..]);
    assert_eq!(db.table("people").unwrap().keys, vec!["id".to_string()]);
    assert!(db.table("empty").unwrap().rows.rows().is_empty());
    // one bump per recovered table, so plan caches keyed on a fresh
    // database cannot serve stale plans
    assert_eq!(db.schema_version(), 2);
    let report = db.recovery_report().unwrap();
    assert_eq!(report.wal_records_applied, 3);
    assert!(report.render().contains("recovery"));
}

#[test]
fn acked_mutations_survive_a_torn_write_crash() {
    let vfs = Arc::new(FaultFs::new());
    let db = open(&vfs, config()).unwrap();
    create_people(&db);
    // tear the log mid-way through some future insert
    let at = vfs.written_len(WAL_FILE) + 40;
    vfs.inject(Fault::TornAppend {
        path: WAL_FILE.into(),
        at,
    });
    let mut acked = 3usize;
    let crashed = loop {
        match db.insert("people", vec![vec![v(acked as i64 + 1), s("extra")]]) {
            Ok(()) => acked += 1,
            Err(EngineError::Storage(_)) => break true,
            Err(e) => panic!("unexpected error: {e}"),
        }
        if acked > 100 {
            break false;
        }
    };
    assert!(crashed, "torn-write fault never fired");
    drop(db);
    vfs.crash();
    let db = open(&vfs, config()).unwrap();
    // fsync policy Always: every acked insert is durable, the torn one
    // is truncated away at recovery
    assert_eq!(db.table("people").unwrap().rows.rows().len(), acked);
    assert!(db
        .recovery_report()
        .unwrap()
        .torn_tail_repaired_at
        .is_some());
}

#[test]
fn checkpoint_compacts_the_wal_and_recovery_uses_the_snapshot() {
    let vfs = Arc::new(FaultFs::new());
    let db = open(&vfs, config()).unwrap();
    create_people(&db);
    let before = vfs.written_len(WAL_FILE);
    let covered_lsn = db.checkpoint().unwrap();
    assert_eq!(covered_lsn, 2, "create + insert were logged");
    assert!(
        vfs.written_len(WAL_FILE) < before,
        "checkpoint must truncate the log"
    );
    // a post-checkpoint mutation lands in the WAL tail
    db.insert("people", vec![vec![v(4), s("dan")]]).unwrap();
    drop(db);
    let db = open(&vfs, config()).unwrap();
    assert_eq!(db.table("people").unwrap().rows.rows().len(), 4);
    let report = db.recovery_report().unwrap();
    assert_eq!(report.snapshot_tables, 1);
    assert_eq!(report.wal_records_applied, 1, "only the tail is replayed");
}

#[test]
fn automatic_checkpoint_fires_on_the_configured_budget() {
    let vfs = Arc::new(FaultFs::new());
    let db = open(
        &vfs,
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: Some(3),
        },
    )
    .unwrap();
    create_people(&db); // 2 records: create + insert
    db.insert("people", vec![vec![v(4), s("dan")]]).unwrap(); // 3rd: budget spent
    assert_eq!(
        vfs.written_len(WAL_FILE),
        8,
        "log compacted back to its magic"
    );
    drop(db);
    let db = open(&vfs, config()).unwrap();
    assert_eq!(db.table("people").unwrap().rows.rows().len(), 4);
    assert_eq!(db.recovery_report().unwrap().wal_records_applied, 0);
}

#[test]
fn auto_checkpoint_failure_does_not_fail_the_applied_mutation() {
    let vfs = Arc::new(FaultFs::new());
    let db = open(
        &vfs,
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: Some(3),
        },
    )
    .unwrap();
    // create_people logs 2 records, below the budget; the 3rd triggers
    // the auto-checkpoint — crash its snapshot write. The insert was
    // already WAL-durable and applied, so it must ack: surfacing the
    // compaction failure would invite a retry that double-applies rows.
    create_people(&db);
    vfs.inject(Fault::TornAppend {
        path: "snapshot".into(),
        at: 0,
    });
    db.insert("people", vec![vec![v(4), s("dan")]]).unwrap();
    assert_eq!(db.table("people").unwrap().rows.rows().len(), 4);
    assert!(db.last_checkpoint_error().is_some());
    let metrics = db.telemetry().registry().render();
    assert!(
        metrics.contains("storage.checkpoint_failures 1"),
        "{metrics}"
    );
    drop(db);
    // the injected fault halted the "machine"; power-cycle and recover
    vfs.crash();
    let db = open(&vfs, config()).unwrap();
    assert_eq!(
        db.table("people").unwrap().rows.rows().len(),
        4,
        "the acked mutation survives the failed compaction"
    );
    assert!(db.last_checkpoint_error().is_none());
}

#[test]
fn install_table_is_logged_with_its_rows() {
    let vfs = Arc::new(FaultFs::new());
    {
        let db = open(&vfs, config()).unwrap();
        db.install_table(
            "imported",
            BaseTable {
                schema: Schema::of(&[("n", Ty::Int)]),
                keys: vec!["n".into()],
                rows: Arc::new(RowBuf::new(vec![vec![v(7)], vec![v(8)]])),
                shard: None,
            },
        )
        .unwrap();
    }
    let db = open(&vfs, config()).unwrap();
    assert_eq!(
        db.table("imported").unwrap().rows.rows(),
        &[vec![v(7)], vec![v(8)]]
    );
}

#[test]
fn in_memory_database_is_unaffected_by_the_durability_layer() {
    let db = Database::new();
    assert!(!db.is_durable());
    assert!(db.recovery_report().is_none());
    create_people(&db);
    assert_eq!(db.checkpoint().unwrap(), 0, "checkpoint is a no-op");
    db.sync().unwrap();
}

#[test]
fn std_fs_directory_roundtrip() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("engine_durability_rt");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, config()).unwrap();
        create_people(&db);
    }
    {
        let db = Database::open(&dir, config()).unwrap();
        assert_eq!(db.table("people").unwrap().rows.rows(), &seed_rows()[..]);
        db.checkpoint().unwrap();
        db.insert("people", vec![vec![v(4), s("dan")]]).unwrap();
    }
    let db = Database::open(&dir, config()).unwrap();
    assert_eq!(db.table("people").unwrap().rows.rows().len(), 4);
    assert_eq!(db.recovery_report().unwrap().snapshot_tables, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

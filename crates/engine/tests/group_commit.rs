//! Group commit under concurrency and faults: N writers share fsyncs,
//! acked ⇒ durable is preserved, a failed batch fsync nacks every waiter,
//! and nothing nacked is ever published or recovered.
//!
//! The FaultFs simulates device latency (`set_sync_delay`), which opens
//! the batching window a real disk provides: while the leader's fsync is
//! in flight, concurrent committers append and enqueue, and the next
//! leader covers them all with one fsync.

use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::{Database, DurabilityConfig, EngineError, FsyncPolicy};
use ferry_storage::{Fault, FaultFs, Vfs, WAL_FILE};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const WRITERS: usize = 8;
const COMMITS_PER_WRITER: usize = 25;

fn open(vfs: &Arc<FaultFs>) -> Database {
    Database::open_with_vfs(
        vfs.clone() as Arc<dyn Vfs>,
        DurabilityConfig::with_fsync(FsyncPolicy::Always),
    )
    .unwrap()
}

fn create_ledger(db: &Database) {
    db.create_table(
        "ledger",
        Schema::of(&[("writer", Ty::Int), ("seq", Ty::Int)]),
        vec!["writer", "seq"],
    )
    .unwrap();
}

/// The headline number: 8 concurrent writers under `FsyncPolicy::Always`
/// must share fsyncs at least 4× (200 commits, ≤ 50 fsyncs) — and every
/// acked commit must still survive a crash.
#[test]
fn concurrent_writers_share_fsyncs_at_least_4x_and_stay_durable() {
    let vfs = Arc::new(FaultFs::new());
    let db = Arc::new(open(&vfs));
    create_ledger(&db);
    // ~a consumer-SSD fsync: long enough that concurrent commits pile
    // up behind the leader, short enough to keep the test fast
    vfs.set_sync_delay(Duration::from_millis(1));
    let base_syncs = vfs.syncs();

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                for seq in 0..COMMITS_PER_WRITER {
                    db.insert(
                        "ledger",
                        vec![vec![Value::Int(w as i64), Value::Int(seq as i64)]],
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    vfs.set_sync_delay(Duration::ZERO);

    let commits = (WRITERS * COMMITS_PER_WRITER) as u64;
    let syncs = vfs.syncs() - base_syncs;
    assert!(syncs >= 1, "durable commits without any fsync");
    assert!(
        syncs * 4 <= commits,
        "group commit shared too few fsyncs: {syncs} fsyncs for {commits} commits (< 4x batching)"
    );
    // every commit was acked durable: all rows survive a hard crash
    assert_eq!(db.table("ledger").unwrap().rows.len(), commits as usize);
    assert_eq!(db.epoch(), 1 + commits, "one version per transaction");
    drop(db);
    vfs.crash();
    let db = open(&vfs);
    let rows = db.table("ledger").unwrap().rows.rows().to_vec();
    assert_eq!(rows.len(), commits as usize, "an acked commit was lost");
    for w in 0..WRITERS {
        for seq in 0..COMMITS_PER_WRITER {
            let want = vec![Value::Int(w as i64), Value::Int(seq as i64)];
            assert!(rows.contains(&want), "missing commit {w}/{seq}");
        }
    }
    // the batch-size histogram saw the sharing (handle outlives the run)
    let batches = db
        .telemetry()
        .registry()
        .histogram("storage.commit_batch_records")
        .unwrap();
    drop(db); // recovery registers a fresh registry; reuse is fine
    assert_eq!(batches.count(), 0, "fresh database starts at zero");
}

/// Publish-before-ack under racing leaders: the moment `insert` returns,
/// the committed row must be visible to a fresh snapshot. This targets
/// the window where a leader's fsync covers a committer's LSN *before*
/// that committer enqueued its version — the leader cannot publish what
/// it never saw, so the committer must drain the queue itself instead of
/// acking straight off the durable watermark.
#[test]
fn acked_commit_is_immediately_visible_to_readers() {
    // no sync delay: leader cycles are fast enough to complete inside a
    // committer's append→enqueue window (the racy schedule), and the
    // in-memory fsyncs keep thousands of commits cheap
    const COMMITS: usize = 400;
    let vfs = Arc::new(FaultFs::new());
    let db = Arc::new(open(&vfs));
    create_ledger(&db);

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                for seq in 0..COMMITS {
                    let row = vec![Value::Int(w as i64), Value::Int(seq as i64)];
                    db.insert("ledger", vec![row.clone()]).unwrap();
                    assert!(
                        db.table("ledger").unwrap().rows.rows().contains(&row),
                        "acked commit {w}/{seq} is invisible to readers"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // nothing may be stuck in the pending queue once every ack returned
    let commits = (WRITERS * COMMITS) as u64;
    assert_eq!(
        db.epoch(),
        1 + commits,
        "a committed version never published"
    );
    assert_eq!(db.table("ledger").unwrap().rows.len(), commits as usize);
}

/// A failed batch fsync must fail **every** waiter it covered, poison
/// the database, keep the nacked versions unpublished, and leave nothing
/// nacked behind after crash recovery — the PR 5 contract, batched.
#[test]
fn failed_group_fsync_nacks_every_waiter_and_publishes_nothing() {
    let vfs = Arc::new(FaultFs::new());
    let db = Arc::new(open(&vfs));
    create_ledger(&db);
    let epoch_before = db.epoch();
    vfs.set_sync_delay(Duration::from_micros(500));
    vfs.inject(Fault::FailFsync {
        path: WAL_FILE.into(),
    });

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                db.insert("ledger", vec![vec![Value::Int(w as i64), Value::Int(0)]])
            })
        })
        .collect();
    let results: Vec<Result<(), EngineError>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    vfs.set_sync_delay(Duration::ZERO);

    // the one-shot fault fails the first leader's fsync; every commit in
    // that batch is nacked, and later commits die on the poisoned WAL
    assert!(
        results.iter().all(Result::is_err),
        "a commit was acked through a failed fsync: {results:?}"
    );
    // publish-before-ack: no nacked version ever became visible
    assert_eq!(db.epoch(), epoch_before, "nacked version was published");
    assert!(db.table("ledger").unwrap().rows.rows().is_empty());
    // the database stays poisoned until reopened
    let again = db.insert("ledger", vec![vec![Value::Int(9), Value::Int(9)]]);
    assert!(again.is_err(), "poisoned database accepted a commit");

    // recovery: the acked prefix (the empty table) and nothing more
    drop(db);
    vfs.crash();
    let db = open(&vfs);
    assert!(
        db.table("ledger").unwrap().rows.rows().is_empty(),
        "a nacked commit surfaced after recovery"
    );
    // the reopened database accepts commits again
    db.insert("ledger", vec![vec![Value::Int(1), Value::Int(1)]])
        .unwrap();
}

/// `checkpoint` and `sync` serialise with in-flight group fsyncs: run
/// them concurrently with committers and verify the snapshot + tail
/// recover the complete ledger.
#[test]
fn checkpoint_races_group_committers_without_losing_acked_commits() {
    let vfs = Arc::new(FaultFs::new());
    let db = Arc::new(open(&vfs));
    create_ledger(&db);
    vfs.set_sync_delay(Duration::from_micros(200));

    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                for seq in 0..10 {
                    db.insert("ledger", vec![vec![Value::Int(w), Value::Int(seq)]])
                        .unwrap();
                }
            })
        })
        .collect();
    let checkpointer = {
        let db = db.clone();
        thread::spawn(move || {
            for _ in 0..5 {
                db.checkpoint().unwrap();
                thread::yield_now();
            }
        })
    };
    for h in writers {
        h.join().unwrap();
    }
    checkpointer.join().unwrap();
    vfs.set_sync_delay(Duration::ZERO);

    assert_eq!(db.table("ledger").unwrap().rows.len(), 40);
    drop(db);
    vfs.crash();
    let db = open(&vfs);
    assert_eq!(
        db.table("ledger").unwrap().rows.len(),
        40,
        "checkpoint raced a commit out of existence"
    );
}

/// `FsyncPolicy::EveryN` keeps its ack-before-durable contract under the
/// new commit path: commits install immediately, and at most the configured
/// window of trailing records may be lost on a crash — never a torn batch.
#[test]
fn every_n_still_acks_before_durability_and_loses_at_most_the_window() {
    let vfs = Arc::new(FaultFs::new());
    let db = Database::open_with_vfs(
        vfs.clone() as Arc<dyn Vfs>,
        DurabilityConfig {
            fsync: FsyncPolicy::EveryN(4),
            ..DurabilityConfig::default()
        },
    )
    .unwrap();
    create_ledger(&db);
    for seq in 0..10 {
        db.insert("ledger", vec![vec![Value::Int(0), Value::Int(seq)]])
            .unwrap();
    }
    assert_eq!(db.table("ledger").unwrap().rows.len(), 10);
    drop(db);
    vfs.crash();
    let db = Database::open_with_vfs(
        vfs.clone() as Arc<dyn Vfs>,
        DurabilityConfig::with_fsync(FsyncPolicy::EveryN(4)),
    )
    .unwrap();
    let recovered = db.table("ledger").unwrap().rows.len();
    // 11 records (create + 10 inserts), synced every 4th: at least 8
    // records are durable, and recovery replays a clean prefix
    assert!(
        recovered >= 5,
        "EveryN(4) lost more than its window: {recovered} rows"
    );
    for (i, row) in db.table("ledger").unwrap().rows.rows().iter().enumerate() {
        assert_eq!(row[1], Value::Int(i as i64), "non-prefix recovery");
    }
}

//! Regression tests for the copy-free execution paths: scans must share
//! the catalog's row buffer (`Arc::ptr_eq`, not just equal contents), and
//! pass-through operators must keep sharing it. Also locks in that
//! malformed plans reaching the executor surface `NoSuchColumn` errors
//! instead of panicking.

use ferry_algebra::{infer_schema, plan::cn, Dir, Expr, Plan, Schema, Ty, Value};
use ferry_engine::{Database, EngineError, QueryStats};
use std::sync::Arc;

fn db() -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        Schema::of(&[("a", Ty::Int), ("b", Ty::Str)]),
        vec!["a"],
    )
    .unwrap();
    db.insert(
        "t",
        (0..100)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "x" } else { "y" }),
                ]
            })
            .collect(),
    )
    .unwrap();
    db
}

fn scan(plan: &mut Plan) -> ferry_algebra::NodeId {
    plan.table(
        "t",
        vec![(cn("a"), Ty::Int), (cn("b"), Ty::Str)],
        vec![cn("a")],
    )
}

#[test]
fn table_scan_shares_catalog_buffer() {
    let db = db();
    let mut plan = Plan::new();
    let t = scan(&mut plan);
    let rel = db.execute(&plan, t).unwrap();
    // the scan result *is* the base table's buffer — no row was copied
    assert!(Arc::ptr_eq(rel.buffer(), &db.table("t").unwrap().rows));
    assert_eq!(rel.len(), 100);
}

#[test]
fn filter_and_sort_stay_on_the_shared_buffer() {
    let db = db();
    let mut plan = Plan::new();
    let t = scan(&mut plan);
    let sel = plan.select(
        t,
        Expr::bin(ferry_algebra::BinOp::Gt, Expr::col("a"), Expr::lit(49i64)),
    );
    let ser = plan.serialize(sel, vec![(cn("a"), Dir::Desc)], vec![cn("b"), cn("a")]);
    let rel = db.execute(&plan, ser).unwrap();
    // select emitted a selection vector and serialize a sorted one plus a
    // column remap — all still views over the catalog's buffer
    assert!(Arc::ptr_eq(rel.buffer(), &db.table("t").unwrap().rows));
    assert_eq!(rel.len(), 50);
    assert_eq!(rel.rows()[0], vec![Value::str("y"), Value::Int(99)]);
}

#[test]
fn literal_executions_share_one_buffer() {
    let db = Database::new();
    let mut plan = Plan::new();
    let l = plan.lit(
        Schema::of(&[("x", Ty::Int)]),
        (0..10).map(|i| vec![Value::Int(i)]).collect(),
    );
    let r1 = db.execute(&plan, l).unwrap();
    let r2 = db.execute(&plan, l).unwrap();
    // both executions and the plan itself share one Arc'd buffer
    assert!(Arc::ptr_eq(r1.buffer(), r2.buffer()));
}

#[test]
fn insert_after_scan_leaves_snapshot_intact() {
    let db = db();
    let mut plan = Plan::new();
    let t = scan(&mut plan);
    let before = db.execute(&plan, t).unwrap();
    // copy-on-write: the insert must not mutate the outstanding result
    db.insert("t", vec![vec![Value::Int(1000), Value::str("z")]])
        .unwrap();
    assert_eq!(before.len(), 100);
    let after = db.execute(&plan, t).unwrap();
    assert_eq!(after.len(), 101);
    assert!(!Arc::ptr_eq(before.buffer(), after.buffer()));
}

/// Drive the executor with hand-forged schemas (bypassing `infer_schema`,
/// which would reject these plans) and check every resolver reports the
/// missing column as an error instead of panicking.
#[test]
fn malformed_plans_report_no_such_column() {
    let db = db();
    let schema = Schema::of(&[("a", Ty::Int), ("b", Ty::Str)]);

    // serialize ordering on a column the input does not have
    let mut plan = Plan::new();
    let t = scan(&mut plan);
    let bad = plan.serialize(t, vec![(cn("zzz"), Dir::Asc)], vec![cn("a")]);
    let schemas = vec![schema.clone(); plan.len()];
    let err = ferry_engine::exec::run(
        &db.snapshot(),
        &plan,
        bad,
        &schemas,
        &mut QueryStats::default(),
        &mut Vec::new(),
    )
    .unwrap_err();
    assert!(
        matches!(&err, EngineError::NoSuchColumn { col, .. } if col == "zzz"),
        "unexpected error: {err}"
    );

    // window partition column missing
    let mut plan = Plan::new();
    let t = scan(&mut plan);
    let bad = plan.rownum(t, "rn", vec![cn("ghost")], vec![(cn("a"), Dir::Asc)]);
    let schemas = vec![schema.clone(); plan.len()];
    let err = ferry_engine::exec::run(
        &db.snapshot(),
        &plan,
        bad,
        &schemas,
        &mut QueryStats::default(),
        &mut Vec::new(),
    )
    .unwrap_err();
    assert!(matches!(&err, EngineError::NoSuchColumn { col, .. } if col == "ghost"));

    // projection from a column that is not there
    let mut plan = Plan::new();
    let t = scan(&mut plan);
    let bad = plan.project(t, vec![(cn("out"), cn("nope"))]);
    let schemas = vec![schema.clone(); plan.len()];
    let err = ferry_engine::exec::run(
        &db.snapshot(),
        &plan,
        bad,
        &schemas,
        &mut QueryStats::default(),
        &mut Vec::new(),
    )
    .unwrap_err();
    assert!(matches!(&err, EngineError::NoSuchColumn { col, .. } if col == "nope"));

    // well-formed plans still pass schema inference and execute
    let mut plan = Plan::new();
    let t = scan(&mut plan);
    let ok = plan.serialize(t, vec![(cn("a"), Dir::Asc)], vec![cn("b")]);
    assert!(infer_schema(&plan).is_ok());
    assert!(db.execute(&plan, ok).is_ok());
}

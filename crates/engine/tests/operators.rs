//! Operator-level tests: each physical operator of the table algebra is
//! exercised against hand-computed expectations.

use ferry_algebra::{
    plan::{cn, Aggregate},
    AggFun, BinOp, Dir, Expr, JoinCols, Plan, Rel, Schema, Ty, Value,
};
use ferry_engine::Database;

fn v(i: i64) -> Value {
    Value::Int(i)
}

fn s(x: &str) -> Value {
    Value::str(x)
}

fn db() -> Database {
    let db = Database::new();
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![s("eng"), s("ada"), v(90)],
            vec![s("eng"), s("bob"), v(70)],
            vec![s("ops"), s("cy"), v(50)],
            vec![s("eng"), s("dan"), v(70)],
        ],
    )
    .unwrap();
    db
}

fn exec(db: &Database, plan: &Plan, root: ferry_algebra::NodeId) -> Rel {
    db.execute(plan, root).unwrap()
}

fn emp_ref(p: &mut Plan) -> ferry_algebra::NodeId {
    p.table(
        "emp",
        vec![
            (cn("dept"), Ty::Str),
            (cn("name"), Ty::Str),
            (cn("sal"), Ty::Int),
        ],
        vec![cn("name")],
    )
}

#[test]
fn table_ref_reads_catalog() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let r = exec(&db, &p, t);
    assert_eq!(r.len(), 4);
    assert_eq!(r.schema.names().count(), 3);
}

#[test]
fn table_ref_type_mismatch_is_reported() {
    let db = db();
    let mut p = Plan::new();
    let t = p.table("emp", vec![(cn("a"), Ty::Int)], vec![]);
    assert!(db.execute(&p, t).is_err());
}

#[test]
fn missing_table_is_reported() {
    let db = db();
    let mut p = Plan::new();
    let t = p.table("ghost", vec![(cn("a"), Ty::Int)], vec![]);
    assert!(matches!(
        db.execute(&p, t),
        Err(ferry_engine::EngineError::NoSuchTable(_))
    ));
}

#[test]
fn select_compute_project() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let hi = p.select(t, Expr::bin(BinOp::Ge, Expr::col("sal"), Expr::lit(70i64)));
    let bonus = p.compute(
        hi,
        "bonus",
        Expr::bin(BinOp::Div, Expr::col("sal"), Expr::lit(10i64)),
    );
    let proj = p.project(
        bonus,
        vec![(cn("who"), cn("name")), (cn("bonus"), cn("bonus"))],
    );
    let r = exec(&db, &p, proj);
    assert_eq!(
        r.schema,
        Schema::of(&[("who", Ty::Str), ("bonus", Ty::Int)])
    );
    assert_eq!(r.len(), 3);
    let bonuses: Vec<i64> = r
        .column("bonus")
        .unwrap()
        .map(|x| x.as_int().unwrap())
        .collect();
    assert_eq!(bonuses, vec![9, 7, 7]);
}

#[test]
fn attach_appends_constant() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let a = p.attach(t, "one", Value::Nat(1));
    let r = exec(&db, &p, a);
    assert!(r.column("one").unwrap().all(|x| *x == Value::Nat(1)));
}

#[test]
fn distinct_keeps_first_occurrence() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let d0 = p.project(t, vec![(cn("dept"), cn("dept"))]);
    let d = p.distinct(d0);
    let r = exec(&db, &p, d);
    let depts: Vec<&str> = r
        .column("dept")
        .unwrap()
        .map(|x| x.as_str().unwrap())
        .collect();
    assert_eq!(depts, vec!["eng", "ops"]);
}

#[test]
fn union_all_is_a_bag() {
    let db = db();
    let mut p = Plan::new();
    let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![v(1)], vec![v(2)]]);
    let b = p.lit(Schema::of(&[("y", Ty::Int)]), vec![vec![v(2)]]);
    let u = p.union_all(a, b);
    let r = exec(&db, &p, u);
    assert_eq!(r.len(), 3);
    assert_eq!(r.schema.index_of("x"), Some(0)); // left names win
}

#[test]
fn difference_is_set_semantics() {
    let db = db();
    let mut p = Plan::new();
    let a = p.lit(
        Schema::of(&[("x", Ty::Int)]),
        vec![vec![v(1)], vec![v(1)], vec![v(2)], vec![v(3)]],
    );
    let b = p.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![v(2)]]);
    let d = p.difference(a, b);
    let r = exec(&db, &p, d);
    let xs: Vec<i64> = r
        .column("x")
        .unwrap()
        .map(|x| x.as_int().unwrap())
        .collect();
    assert_eq!(xs, vec![1, 3]); // distinct, 2 removed
}

#[test]
fn cross_join_product() {
    let db = db();
    let mut p = Plan::new();
    let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![v(1)], vec![v(2)]]);
    let b = p.lit(
        Schema::of(&[("y", Ty::Str)]),
        vec![vec![s("a")], vec![s("b")]],
    );
    let c = p.cross(a, b);
    let r = exec(&db, &p, c);
    assert_eq!(r.len(), 4);
}

#[test]
fn equi_join_matches_pairs() {
    let db = db();
    let mut p = Plan::new();
    let a = p.lit(
        Schema::of(&[("x", Ty::Int), ("lx", Ty::Str)]),
        vec![vec![v(1), s("a")], vec![v(2), s("b")], vec![v(3), s("c")]],
    );
    let b = p.lit(
        Schema::of(&[("y", Ty::Int), ("ly", Ty::Str)]),
        vec![vec![v(2), s("B")], vec![v(2), s("B2")], vec![v(3), s("C")]],
    );
    let j = p.equi_join(a, b, JoinCols::single("x", "y"));
    let r = exec(&db, &p, j);
    assert_eq!(r.len(), 3); // 2 matches twice, 3 once
    assert_eq!(r.schema.len(), 4);
}

#[test]
fn semi_and_anti_join() {
    let db = db();
    let mut p = Plan::new();
    let a = p.lit(
        Schema::of(&[("x", Ty::Int)]),
        vec![vec![v(1)], vec![v(2)], vec![v(3)]],
    );
    let b = p.lit(Schema::of(&[("y", Ty::Int)]), vec![vec![v(2)], vec![v(2)]]);
    let sj = p.semi_join(a, b, JoinCols::single("x", "y"));
    let aj = p.anti_join(a, b, JoinCols::single("x", "y"));
    let rs = exec(&db, &p, sj);
    let ra = exec(&db, &p, aj);
    let xs: Vec<i64> = rs
        .column("x")
        .unwrap()
        .map(|x| x.as_int().unwrap())
        .collect();
    assert_eq!(xs, vec![2]); // no duplication from the two matches
    let ys: Vec<i64> = ra
        .column("x")
        .unwrap()
        .map(|x| x.as_int().unwrap())
        .collect();
    assert_eq!(ys, vec![1, 3]);
}

#[test]
fn theta_join_general_predicate() {
    let db = db();
    let mut p = Plan::new();
    let a = p.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![v(1)], vec![v(5)]]);
    let b = p.lit(Schema::of(&[("y", Ty::Int)]), vec![vec![v(3)]]);
    let j = p.theta_join(a, b, Expr::bin(BinOp::Lt, Expr::col("x"), Expr::col("y")));
    let r = exec(&db, &p, j);
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows()[0], vec![v(1), v(3)]);
}

#[test]
fn rownum_partitions_and_orders() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let rn = p.rownum(
        t,
        "pos",
        vec![cn("dept")],
        vec![(cn("sal"), Dir::Desc), (cn("name"), Dir::Asc)],
    );
    let ser = p.serialize(
        rn,
        vec![(cn("dept"), Dir::Asc), (cn("pos"), Dir::Asc)],
        vec![cn("dept"), cn("name"), cn("pos")],
    );
    let r = exec(&db, &p, ser);
    let rows: Vec<(String, u64)> = r
        .rows()
        .iter()
        .map(|row| {
            (
                row[1].as_str().unwrap().to_string(),
                row[2].as_nat().unwrap(),
            )
        })
        .collect();
    assert_eq!(
        rows,
        vec![
            ("ada".into(), 1),
            ("bob".into(), 2),
            ("dan".into(), 3),
            ("cy".into(), 1),
        ]
    );
}

#[test]
fn dense_rank_assigns_surrogates() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let dr = p.dense_rank(t, "grp", vec![], vec![(cn("dept"), Dir::Asc)]);
    let ser = p.serialize(
        dr,
        vec![(cn("name"), Dir::Asc)],
        vec![cn("name"), cn("grp")],
    );
    let r = exec(&db, &p, ser);
    let grp: Vec<u64> = r
        .column("grp")
        .unwrap()
        .map(|x| x.as_nat().unwrap())
        .collect();
    // ada,bob,dan in eng (group 1), cy in ops (group 2)
    assert_eq!(grp, vec![1, 1, 2, 1]);
}

#[test]
fn rank_has_gaps_dense_rank_does_not() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let rk = p.add(ferry_algebra::Node::RowRank {
        input: t,
        col: cn("rk"),
        order: vec![(cn("sal"), Dir::Desc)],
    });
    let dr = p.dense_rank(rk, "dr", vec![], vec![(cn("sal"), Dir::Desc)]);
    let ser = p.serialize(
        dr,
        vec![(cn("sal"), Dir::Desc), (cn("name"), Dir::Asc)],
        vec![cn("name"), cn("rk"), cn("dr")],
    );
    let r = exec(&db, &p, ser);
    let pairs: Vec<(u64, u64)> = r
        .rows()
        .iter()
        .map(|row| (row[1].as_nat().unwrap(), row[2].as_nat().unwrap()))
        .collect();
    // sal: 90 (rank 1), 70, 70 (rank 2), 50 (rank 4 with gaps, dense 3)
    assert_eq!(pairs, vec![(1, 1), (2, 2), (2, 2), (4, 3)]);
}

#[test]
fn group_by_aggregates() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let g = p.group_by(
        t,
        vec![cn("dept")],
        vec![
            Aggregate {
                fun: AggFun::CountAll,
                input: None,
                output: cn("n"),
            },
            Aggregate {
                fun: AggFun::Sum,
                input: Some(cn("sal")),
                output: cn("total"),
            },
            Aggregate {
                fun: AggFun::Min,
                input: Some(cn("name")),
                output: cn("first"),
            },
            Aggregate {
                fun: AggFun::Max,
                input: Some(cn("sal")),
                output: cn("top"),
            },
            Aggregate {
                fun: AggFun::Avg,
                input: Some(cn("sal")),
                output: cn("avg"),
            },
        ],
    );
    let ser = p.serialize(
        g,
        vec![(cn("dept"), Dir::Asc)],
        vec![
            cn("dept"),
            cn("n"),
            cn("total"),
            cn("first"),
            cn("top"),
            cn("avg"),
        ],
    );
    let r = exec(&db, &p, ser);
    assert_eq!(
        r.rows()[0],
        vec![
            s("eng"),
            v(3),
            v(230),
            s("ada"),
            v(90),
            Value::Dbl(230.0 / 3.0)
        ]
    );
    assert_eq!(
        r.rows()[1],
        vec![s("ops"), v(1), v(50), s("cy"), v(50), Value::Dbl(50.0)]
    );
}

#[test]
fn group_by_bool_aggregates() {
    let db = db();
    let mut p = Plan::new();
    let t = p.lit(
        Schema::of(&[("k", Ty::Int), ("b", Ty::Bool)]),
        vec![
            vec![v(1), Value::Bool(true)],
            vec![v(1), Value::Bool(false)],
            vec![v(2), Value::Bool(true)],
        ],
    );
    let g = p.group_by(
        t,
        vec![cn("k")],
        vec![
            Aggregate {
                fun: AggFun::All,
                input: Some(cn("b")),
                output: cn("all"),
            },
            Aggregate {
                fun: AggFun::Any,
                input: Some(cn("b")),
                output: cn("any"),
            },
        ],
    );
    let ser = p.serialize(
        g,
        vec![(cn("k"), Dir::Asc)],
        vec![cn("k"), cn("all"), cn("any")],
    );
    let r = exec(&db, &p, ser);
    assert_eq!(
        r.rows()[0],
        vec![v(1), Value::Bool(false), Value::Bool(true)]
    );
    assert_eq!(
        r.rows()[1],
        vec![v(2), Value::Bool(true), Value::Bool(true)]
    );
}

#[test]
fn group_by_empty_input_yields_no_groups() {
    let db = db();
    let mut p = Plan::new();
    let t = p.lit(Schema::of(&[("k", Ty::Int)]), vec![]);
    let g = p.group_by(
        t,
        vec![cn("k")],
        vec![Aggregate {
            fun: AggFun::CountAll,
            input: None,
            output: cn("n"),
        }],
    );
    let r = exec(&db, &p, g);
    assert!(r.is_empty());
}

#[test]
fn serialize_orders_and_projects() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let ser = p.serialize(
        t,
        vec![(cn("sal"), Dir::Desc), (cn("name"), Dir::Asc)],
        vec![cn("name")],
    );
    let r = exec(&db, &p, ser);
    let names: Vec<&str> = r
        .column("name")
        .unwrap()
        .map(|x| x.as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["ada", "bob", "dan", "cy"]);
}

#[test]
fn dag_sharing_evaluates_shared_node_once() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    let d0 = p.project(t, vec![(cn("dept"), cn("dept"))]);
    let d = p.distinct(d0);
    // self-join of the shared distinct node (renamed on one side)
    let renamed = p.project(d, vec![(cn("dept2"), cn("dept"))]);
    let j = p.equi_join(d, renamed, JoinCols::single("dept", "dept2"));
    db.reset_stats();
    let r = exec(&db, &p, j);
    assert_eq!(r.len(), 2);
    // nodes: table, project, distinct, project(rename), join = 5
    assert_eq!(db.stats().nodes_evaluated, 5);
}

#[test]
fn stats_track_rows() {
    let db = db();
    let mut p = Plan::new();
    let t = emp_ref(&mut p);
    db.reset_stats();
    let _ = exec(&db, &p, t);
    let st = db.stats();
    assert_eq!(st.queries, 1);
    assert_eq!(st.rows_out, 4);
}

#[test]
fn dispatch_cost_is_charged_per_query() {
    let db = db();
    db.set_dispatch_cost(std::time::Duration::from_micros(200));
    let mut p = Plan::new();
    let t = p.lit(Schema::of(&[("x", Ty::Int)]), vec![]);
    let start = std::time::Instant::now();
    for _ in 0..10 {
        db.execute(&p, t).unwrap();
    }
    assert!(start.elapsed() >= std::time::Duration::from_micros(2000));
}

#[test]
fn runtime_error_surfaces() {
    let db = db();
    let mut p = Plan::new();
    let t = p.lit(Schema::of(&[("x", Ty::Int)]), vec![vec![v(1)], vec![v(0)]]);
    let c = p.compute(
        t,
        "y",
        Expr::bin(BinOp::Div, Expr::lit(10i64), Expr::col("x")),
    );
    assert!(matches!(
        db.execute(&p, c),
        Err(ferry_engine::EngineError::Eval(_))
    ));
}

//! System tables: differential tests of every `ferry.*` scan against its
//! live source, base-table shadowing, extrinsic registration, the
//! slow-query log's threshold gate, and the profile ring under
//! concurrent dispatch.

use ferry_algebra::{ColName, Plan, Schema, Ty, Value};
use ferry_engine::{Database, TelemetryConfig, PROFILE_RING_CAP, SLOW_RING_CAP, SYS_PREFIX};
use ferry_telemetry::Metric;
use std::sync::Arc;
use std::time::Duration;

fn cn(s: &str) -> ColName {
    Arc::from(s)
}

/// Scan table `name` (base or system) through the executor, exactly as a
/// compiled `table "name"` reference would, returning the raw rows.
fn scan(db: &Database, name: &str) -> Vec<Vec<Value>> {
    // base tables shadow system tables — same order the executor uses
    let (schema, keys) = db
        .table(name)
        .map(|t| (t.schema.clone(), t.keys.clone()))
        .or_else(|| db.system_table_info(name))
        .unwrap_or_else(|| panic!("no such table {name}"));
    let mut plan = Plan::new();
    let cols: Vec<(ColName, Ty)> = schema.cols().to_vec();
    let root = plan.table(name, cols, keys.iter().map(|k| cn(k)).collect());
    db.snapshot()
        .execute(&plan, root)
        .unwrap_or_else(|e| panic!("scan {name}: {e}"))
        .rows()
        .to_vec()
}

fn seeded() -> Database {
    let db = Database::new();
    db.set_telemetry_config(TelemetryConfig::Counters);
    db.create_table(
        "emp",
        Schema::of(&[("dept", Ty::Str), ("name", Ty::Str), ("sal", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "emp",
        vec![
            vec![Value::str("eng"), Value::str("ada"), Value::Int(90)],
            vec![Value::str("ops"), Value::str("bob"), Value::Int(50)],
        ],
    )
    .unwrap();
    db
}

/// Run one trivial dispatch so the profile ring and counters are warm.
fn dispatch_once(db: &Database) {
    let mut plan = Plan::new();
    let root = plan.table(
        "emp",
        vec![
            (cn("dept"), Ty::Str),
            (cn("name"), Ty::Str),
            (cn("sal"), Ty::Int),
        ],
        vec![cn("name")],
    );
    db.snapshot().execute(&plan, root).unwrap();
}

#[test]
fn ferry_metrics_matches_the_registry() {
    let db = seeded();
    dispatch_once(&db);
    // freeze the counters so the ferry.metrics scan (itself a dispatch)
    // does not move the values between the scan and the comparison
    db.set_telemetry_config(TelemetryConfig::Off);
    let rows = scan(&db, "ferry.metrics");
    // one row per counter/gauge, (kind, name, value), name order
    let expected: Vec<(String, String, i64)> = db
        .telemetry()
        .registry()
        .metrics()
        .into_iter()
        .filter_map(|(name, m)| match m {
            Metric::Counter(c) => Some(("counter".into(), name, c.get() as i64)),
            Metric::Gauge(g) => Some(("gauge".into(), name, g.get())),
            Metric::Histogram(_) => None,
        })
        .collect();
    assert!(!expected.is_empty(), "engine metrics are registered");
    assert_eq!(rows.len(), expected.len());
    for (row, (kind, name, value)) in rows.iter().zip(&expected) {
        assert_eq!(row[0], Value::str(kind.as_str()));
        assert_eq!(row[1], Value::str(name.as_str()));
        assert_eq!(row[2], Value::Int(*value), "metric {name}");
    }
    // the dispatch above was counted
    let queries = expected
        .iter()
        .find(|(_, n, _)| n == ferry_telemetry::names::ENGINE_QUERIES)
        .map(|(_, _, v)| *v);
    assert!(queries.unwrap_or(0) >= 1);
}

#[test]
fn ferry_histograms_snapshots_are_consistent() {
    let db = seeded();
    dispatch_once(&db);
    let rows = scan(&db, "ferry.histograms");
    let histos: Vec<String> = db
        .telemetry()
        .registry()
        .metrics()
        .into_iter()
        .filter_map(|(name, m)| matches!(m, Metric::Histogram(_)).then_some(name))
        .collect();
    assert_eq!(rows.len(), histos.len());
    // (count, mean, name, p50, p95, p99, sum): non-negative, internally sane
    for row in &rows {
        let Value::Int(count) = row[0] else { panic!() };
        let Value::Int(sum) = row[6] else { panic!() };
        assert!(count >= 0 && sum >= 0);
        if count == 0 {
            assert_eq!(sum, 0);
        }
    }
}

#[test]
fn ferry_queries_matches_the_profile_ring() {
    let db = seeded();
    for _ in 0..3 {
        dispatch_once(&db);
    }
    // scanning ferry.queries is itself a dispatch: the ring the scan
    // snapshots is the state *before* the scan's own profile lands
    let rows = scan(&db, "ferry.queries");
    let profiles = db.profiles();
    // the scan added one dispatch after materialising the rows
    assert_eq!(rows.len() + 1, profiles.len());
    for (row, p) in rows.iter().zip(&profiles) {
        assert_eq!(row[0], Value::Int(p.elapsed.as_micros() as i64));
        assert_eq!(row[1], Value::Int(p.nodes.len() as i64));
        assert_eq!(row[2], Value::Int(p.plan_hash as i64));
        assert_eq!(row[3], Value::Int(p.query_id as i64));
        assert_eq!(row[4], Value::Int(p.roots as i64));
        assert_eq!(row[5], Value::Int(p.trace_id as i64));
    }
}

#[test]
fn ferry_tables_and_shards_match_the_catalog() {
    let db = seeded();
    let rows = scan(&db, "ferry.tables");
    // (bytes, name, rows, shard_key, shards, wal_bytes)
    assert_eq!(rows.len(), 1);
    let emp_bytes = db
        .table("emp")
        .unwrap()
        .rows
        .rows()
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Str(s) => 8 + s.len() as u64,
                    _ => 8,
                })
                .sum::<u64>()
        })
        .sum::<u64>();
    assert_eq!(rows[0][0], Value::Int(emp_bytes as i64));
    assert_eq!(rows[0][1], Value::str("emp"));
    assert_eq!(rows[0][2], Value::Int(2));
    assert_eq!(rows[0][3], Value::str("")); // unsharded
    assert_eq!(rows[0][4], Value::Int(0));
    assert_eq!(rows[0][5], Value::Int(0)); // in-memory: no WAL
    assert!(scan(&db, "ferry.shards").is_empty(), "no sharded tables");

    // incrementally maintained: an insert moves rows and bytes
    db.insert(
        "emp",
        vec![vec![Value::str("hr"), Value::str("cy"), Value::Int(40)]],
    )
    .unwrap();
    let rows = scan(&db, "ferry.tables");
    assert_eq!(rows[0][2], Value::Int(3));
    let Value::Int(b) = rows[0][0] else { panic!() };
    assert!(b as u64 > emp_bytes, "bytes grew with the insert");
}

#[test]
fn ferry_shards_reports_per_shard_placement() {
    let db = Database::new_sharded(4).unwrap();
    db.create_table_sharded(
        "kv",
        Schema::of(&[("k", Ty::Int), ("v", Ty::Int)]),
        vec!["k"],
        "k",
    )
    .unwrap();
    db.insert(
        "kv",
        (0..32)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect(),
    )
    .unwrap();
    let rows = scan(&db, "ferry.shards");
    // (dense, rows, shard, table): all four shards listed, in shard order
    assert_eq!(rows.len(), 4);
    let mut total = 0i64;
    for (k, row) in rows.iter().enumerate() {
        let Value::Int(n) = row[1] else { panic!() };
        total += n;
        assert_eq!(row[2], Value::Int(k as i64));
        assert_eq!(row[3], Value::str("kv"));
    }
    assert_eq!(total, 32, "every row lives in exactly one shard");
    // ferry.tables agrees on the shard topology
    let tables = scan(&db, "ferry.tables");
    assert_eq!(tables[0][1], Value::str("kv"));
    assert_eq!(tables[0][3], Value::str("k"));
    assert_eq!(tables[0][4], Value::Int(4));
}

#[test]
fn ferry_storage_reports_engine_properties() {
    let db = seeded();
    let rows = scan(&db, "ferry.storage");
    let get = |key: &str| -> i64 {
        rows.iter()
            .find(|r| r[0] == Value::str(key))
            .map(|r| match r[1] {
                Value::Int(v) => v,
                _ => panic!(),
            })
            .unwrap_or_else(|| panic!("property {key}"))
    };
    assert_eq!(get("durable"), 0);
    assert_eq!(get("tables"), 1);
    assert_eq!(get("poisoned"), 0);
    assert_eq!(get("epoch"), db.epoch() as i64);
    // sorted by name (key order)
    let names: Vec<&Value> = rows.iter().map(|r| &r[0]).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

#[test]
fn base_tables_shadow_system_tables() {
    let db = seeded();
    // not recommended, but defined: a base table under ferry.* hides the
    // intrinsic view from the executor and the schema APIs
    db.create_table("ferry.storage", Schema::of(&[("x", Ty::Int)]), vec!["x"])
        .unwrap();
    db.insert("ferry.storage", vec![vec![Value::Int(7)]])
        .unwrap();
    let rows = scan(&db, "ferry.storage");
    assert_eq!(rows, vec![vec![Value::Int(7)]]);
}

#[test]
fn extrinsic_registration_is_validated_and_scannable() {
    let db = seeded();
    // wrong namespace
    assert!(db
        .register_system_table(
            "mine",
            Schema::of(&[("a", Ty::Int)]),
            vec!["a".into()],
            Arc::new(Vec::new),
        )
        .is_err());
    // intrinsic names are reserved
    assert!(db
        .register_system_table(
            "ferry.metrics",
            Schema::of(&[("a", Ty::Int)]),
            vec!["a".into()],
            Arc::new(Vec::new),
        )
        .is_err());
    // key must be a schema column
    assert!(db
        .register_system_table(
            "ferry.custom",
            Schema::of(&[("a", Ty::Int)]),
            vec!["b".into()],
            Arc::new(Vec::new),
        )
        .is_err());
    // a well-formed registration scans like any other table
    db.register_system_table(
        "ferry.custom",
        Schema::of(&[("a", Ty::Int), ("b", Ty::Str)]),
        vec!["a".into()],
        Arc::new(|| {
            vec![
                vec![Value::Int(1), Value::str("one")],
                vec![Value::Int(2), Value::str("two")],
            ]
        }),
    )
    .unwrap();
    assert_eq!(
        scan(&db, "ferry.custom"),
        vec![
            vec![Value::Int(1), Value::str("one")],
            vec![Value::Int(2), Value::str("two")],
        ]
    );
    assert!(db.system_table_info("ferry.custom").is_some());
}

#[test]
fn slow_queries_capture_is_threshold_gated() {
    let db = seeded();
    // telemetry fully off: capture still works — the threshold is the
    // opt-in, not the config
    db.set_telemetry_config(TelemetryConfig::Off);

    // no threshold (the idle default): nothing is captured
    dispatch_once(&db);
    assert!(db.slow_queries().is_empty());

    // an unreachable threshold: still nothing
    db.set_slow_query_threshold(Some(Duration::from_secs(3600)));
    dispatch_once(&db);
    assert!(db.slow_queries().is_empty());

    // a 1ns threshold: every dispatch is "slow"
    db.set_slow_query_threshold(Some(Duration::from_nanos(1)));
    dispatch_once(&db);
    let slow = db.slow_queries();
    assert_eq!(slow.len(), 1);
    let r = &slow[0];
    assert!(r.elapsed >= Duration::from_nanos(1));
    assert_eq!(r.threshold, Duration::from_nanos(1));
    assert_eq!(r.roots, 1);
    assert!(r.plan.contains("emp"), "plan pretty-print captured");
    assert_eq!(r.trace_id, 0, "ran untraced under Off");
    assert!(db.slow_query(r.query_id).is_some());

    // the scan surface agrees: (elapsed_us, plan, plan_hash, query_id,
    // threshold_us, trace). Disable capture first — the scan is itself a
    // dispatch and would land in the very ring it reads.
    db.set_slow_query_threshold(None);
    let rows = scan(&db, "ferry.slow_queries");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][3], Value::Int(r.query_id as i64));
    assert_eq!(rows[0][5], Value::str("off"));

    // disabled: no further capture; the ring is bounded
    dispatch_once(&db);
    assert_eq!(db.slow_queries().len(), 1);
    db.set_slow_query_threshold(Some(Duration::from_nanos(1)));
    for _ in 0..SLOW_RING_CAP + 5 {
        dispatch_once(&db);
    }
    assert_eq!(db.slow_queries().len(), SLOW_RING_CAP);
    db.clear_slow_queries();
    assert!(db.slow_queries().is_empty());
}

#[test]
fn profile_ring_keeps_the_newest_dispatches() {
    let db = seeded();
    let first = db.last_query_id();
    for _ in 0..PROFILE_RING_CAP + 4 {
        dispatch_once(&db);
    }
    let profiles = db.profiles();
    assert_eq!(profiles.len(), PROFILE_RING_CAP);
    // serial dispatch: the retained window is exactly the newest CAP ids,
    // in order, none lost, none duplicated
    let ids: Vec<u64> = profiles.iter().map(|p| p.query_id).collect();
    let want: Vec<u64> = (first + 5..=first + (PROFILE_RING_CAP + 4) as u64).collect();
    assert_eq!(ids, want);
}

#[test]
fn profile_ring_is_consistent_under_concurrent_dispatch() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 50;
    let db = Arc::new(seeded());
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = db.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..PER_THREAD {
                    dispatch_once(&db);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = (THREADS * PER_THREAD) as u64;
    let profiles = db.profiles();
    // the ring absorbed every dispatch and kept the newest CAP of them
    assert_eq!(profiles.len(), PROFILE_RING_CAP);
    let ids: Vec<u64> = profiles.iter().map(|p| p.query_id).collect();
    let mut unique = ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), ids.len(), "no duplicated ids: {ids:?}");
    for id in &ids {
        assert!(*id >= 1 && *id <= total, "id {id} out of range");
    }
    // recency: after the last id was assigned at most THREADS-1 older
    // dispatches were still in flight, far fewer than the ring holds, so
    // the final dispatch cannot have been evicted. (Ring order is push-
    // completion order, which may locally invert assignment order under
    // concurrency — strict id monotonicity is deliberately NOT asserted.)
    assert_eq!(db.last_query_id(), total);
    assert!(
        db.profiles().iter().any(|p| p.query_id == total),
        "the final dispatch is in the ring"
    );
}

#[test]
fn system_namespace_is_marked() {
    assert!("ferry.metrics".starts_with(SYS_PREFIX));
    assert!(Database::new().system_table_info("ferry.metrics").is_some());
    assert!(Database::new().system_table_info("users").is_none());
}

//! Snapshot isolation, deterministically: pinned snapshots give
//! repeatable reads across commits, a bundle sees exactly one catalog
//! version even when a commit lands mid-bundle, and transactions read
//! their own writes while nothing escapes before commit.

use ferry_algebra::{ColName, Plan, Schema, Ty, Value};
use ferry_engine::Database;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

fn cn(s: &str) -> ColName {
    Arc::from(s)
}

fn db_with_accounts() -> Database {
    let db = Database::new();
    db.create_table(
        "accounts",
        Schema::of(&[("id", Ty::Int), ("balance", Ty::Int)]),
        vec!["id"],
    )
    .unwrap();
    db.insert(
        "accounts",
        vec![
            vec![Value::Int(1), Value::Int(100)],
            vec![Value::Int(2), Value::Int(-100)],
        ],
    )
    .unwrap();
    db
}

fn scan_accounts(plan: &mut Plan) -> ferry_algebra::NodeId {
    plan.table(
        "accounts".to_string(),
        vec![(cn("id"), Ty::Int), (cn("balance"), Ty::Int)],
        vec![cn("id")],
    )
}

#[test]
fn pinned_snapshot_gives_repeatable_reads_across_commits() {
    let db = db_with_accounts();
    let snap = db.snapshot();
    let pinned_epoch = snap.epoch();
    let mut plan = Plan::new();
    let root = scan_accounts(&mut plan);
    let before = snap.execute(&plan, root).unwrap().rows().to_vec();

    // five commits land while the snapshot stays pinned
    for i in 0..5 {
        db.insert("accounts", vec![vec![Value::Int(10 + i), Value::Int(i)]])
            .unwrap();
    }
    assert_eq!(db.epoch(), pinned_epoch + 5);

    // repeatable read: the pinned snapshot returns the same rows, at the
    // same epoch, as many times as it is asked
    for _ in 0..3 {
        assert_eq!(snap.execute(&plan, root).unwrap().rows(), before);
        assert_eq!(snap.epoch(), pinned_epoch);
    }
    // a fresh pin sees all five commits
    let fresh = db.snapshot();
    assert_eq!(fresh.execute(&plan, root).unwrap().rows().len(), 7);
}

/// A multi-query bundle must see ONE catalog version even when a commit
/// is installed between member evaluations. The writer thread commits
/// while the bundle runs (synchronised via channels from inside the
/// reader), and every member must agree on the pre-commit state.
#[test]
fn bundle_sees_one_epoch_across_a_mid_bundle_commit() {
    let db = Arc::new(db_with_accounts());
    // a 3-member bundle over the same table: sum-like duplication of the
    // scan so each member reads `accounts` independently
    let mut plan = Plan::new();
    let r1 = scan_accounts(&mut plan);
    let r2 = plan.project(r1, vec![(cn("balance"), cn("balance"))]);
    let r3 = plan.project(r1, vec![(cn("id"), cn("id"))]);

    // pin a snapshot FIRST, evaluate one member, then force a commit to
    // land before the remaining members run — the mid-bundle commit
    let snap = db.snapshot();
    let first = snap.execute(&plan, r1).unwrap();
    let (commit_done_tx, commit_done_rx) = mpsc::channel::<()>();
    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            db.insert("accounts", vec![vec![Value::Int(99), Value::Int(0)]])
                .unwrap();
            commit_done_tx.send(()).unwrap();
        })
    };
    commit_done_rx.recv().unwrap(); // the writer has committed NOW
    let rest = snap.execute_bundle(&plan, &[r1, r2, r3]).unwrap();
    writer.join().unwrap();

    // all members agree with the first read: 2 rows, no writer row
    assert_eq!(first.len(), 2);
    for rel in &rest {
        assert_eq!(rel.len(), 2, "bundle member saw a different epoch");
    }
    // and the commit is visible to a fresh snapshot
    assert_eq!(
        db.snapshot().execute(&plan, r1).unwrap().len(),
        3,
        "the racing commit must exist"
    );
}

#[test]
fn transactions_read_their_own_writes_but_leak_nothing_before_commit() {
    let db = db_with_accounts();
    let db_ref = &db;
    let observed_mid_tx = db
        .transact(|tx| {
            tx.insert("accounts", vec![vec![Value::Int(3), Value::Int(50)]])?;
            // RYOW: the transaction sees its own insert…
            assert_eq!(tx.table("accounts").unwrap().rows.len(), 3);
            // …while concurrent readers still see the published version
            Ok(db_ref.table("accounts").unwrap().rows.len())
        })
        .unwrap();
    assert_eq!(observed_mid_tx, 2, "uncommitted write leaked to readers");
    assert_eq!(db.table("accounts").unwrap().rows.len(), 3);
}

/// Writers serialise behind the commit lock but never block readers:
/// snapshots taken while a slow transaction builds keep serving.
#[test]
fn readers_are_never_blocked_by_an_open_transaction() {
    let db = Arc::new(db_with_accounts());
    let (in_tx_send, in_tx_recv) = mpsc::channel::<()>();
    let (done_send, done_recv) = mpsc::channel::<()>();
    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            db.transact(|tx| {
                tx.insert("accounts", vec![vec![Value::Int(7), Value::Int(7)]])?;
                in_tx_send.send(()).unwrap();
                // hold the transaction open until the reader proves it
                // could read (a lock-holding design would deadlock here)
                done_recv.recv().unwrap();
                Ok(())
            })
            .unwrap();
        })
    };
    in_tx_recv.recv().unwrap();
    // transaction is open RIGHT NOW — reads must not block
    assert_eq!(db.table("accounts").unwrap().rows.len(), 2);
    assert_eq!(db.snapshot().epoch(), 2);
    done_send.send(()).unwrap();
    writer.join().unwrap();
    assert_eq!(db.table("accounts").unwrap().rows.len(), 3);
}

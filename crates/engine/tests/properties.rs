//! Algebraic laws of the physical operators, property-tested on random
//! relations. These are the identities the optimizer's rewrites rely on —
//! if they hold in the engine, the rewrites are sound end to end.

use ferry_algebra::{
    plan::{cn, Aggregate},
    AggFun, BinOp, Dir, Expr, JoinCols, Node, Plan, Rel, Schema, Ty, Value,
};
use ferry_engine::Database;
use proptest::prelude::*;

fn row_strategy() -> impl Strategy<Value = (i64, i64, String)> {
    (
        -8i64..8,
        -3i64..3,
        proptest::sample::select(vec!["a", "b", "c"]).prop_map(String::from),
    )
}

fn rel_rows(rows: &[(i64, i64, String)]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|(x, k, s)| vec![Value::Int(*x), Value::Int(*k), Value::str(s.as_str())])
        .collect()
}

fn schema_abc(prefix: &str) -> Schema {
    Schema::new(vec![
        (format!("{prefix}x").into(), Ty::Int),
        (format!("{prefix}k").into(), Ty::Int),
        (format!("{prefix}s").into(), Ty::Str),
    ])
}

fn exec(plan: &Plan, root: ferry_algebra::NodeId) -> Rel {
    Database::new().execute(plan, root).expect("execute")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn select_fusion_law(rows in proptest::collection::vec(row_strategy(), 0..20)) {
        // σ_p(σ_q(X)) = σ_{q ∧ p}(X)
        let p = Expr::bin(BinOp::Gt, Expr::col("x"), Expr::lit(0i64));
        let q = Expr::bin(BinOp::Le, Expr::col("k"), Expr::lit(1i64));
        let mut plan = Plan::new();
        let x = plan.lit(schema_abc(""), rel_rows(&rows));
        let s1 = plan.select(x, q.clone());
        let s2 = plan.select(s1, p.clone());
        let fused = plan.select(x, Expr::and(q, p));
        prop_assert!(exec(&plan, s2).same_bag(&exec(&plan, fused)));
    }

    #[test]
    fn equi_join_is_filtered_cross(
        l in proptest::collection::vec(row_strategy(), 0..12),
        r in proptest::collection::vec(row_strategy(), 0..12),
    ) {
        let mut plan = Plan::new();
        let lx = plan.lit(schema_abc(""), rel_rows(&l));
        let rx = plan.lit(schema_abc("r"), rel_rows(&r));
        let j = plan.equi_join(lx, rx, JoinCols::single("k", "rk"));
        let c = plan.cross(lx, rx);
        let sel = plan.select(c, Expr::eq(Expr::col("k"), Expr::col("rk")));
        prop_assert!(exec(&plan, j).same_bag(&exec(&plan, sel)));
    }

    #[test]
    fn semi_join_is_join_with_distinct_keys(
        l in proptest::collection::vec(row_strategy(), 0..12),
        r in proptest::collection::vec(row_strategy(), 0..12),
    ) {
        let mut plan = Plan::new();
        let lx = plan.lit(schema_abc(""), rel_rows(&l));
        let rx = plan.lit(schema_abc("r"), rel_rows(&r));
        let semi = plan.semi_join(lx, rx, JoinCols::single("k", "rk"));
        // ≡ π_l (l ⋈ δ(π_keys r))
        let keys = plan.project(rx, vec![(cn("dk"), cn("rk"))]);
        let d = plan.distinct(keys);
        let j = plan.equi_join(lx, d, JoinCols::single("k", "dk"));
        let pj = plan.project_keep(j, &[cn("x"), cn("k"), cn("s")]);
        prop_assert!(exec(&plan, semi).same_bag(&exec(&plan, pj)));
    }

    #[test]
    fn anti_join_complements_semi_join(
        l in proptest::collection::vec(row_strategy(), 0..12),
        r in proptest::collection::vec(row_strategy(), 0..12),
    ) {
        let mut plan = Plan::new();
        let lx = plan.lit(schema_abc(""), rel_rows(&l));
        let rx = plan.lit(schema_abc("r"), rel_rows(&r));
        let semi = plan.semi_join(lx, rx, JoinCols::single("k", "rk"));
        let anti = plan.anti_join(lx, rx, JoinCols::single("k", "rk"));
        let both = plan.union_all(semi, anti);
        prop_assert!(exec(&plan, both).same_bag(&exec(&plan, lx)));
    }

    #[test]
    fn distinct_is_idempotent(rows in proptest::collection::vec(row_strategy(), 0..20)) {
        let mut plan = Plan::new();
        let x = plan.lit(schema_abc(""), rel_rows(&rows));
        let d1 = plan.distinct(x);
        let d2 = plan.distinct(d1);
        prop_assert_eq!(exec(&plan, d1).rows(), exec(&plan, d2).rows());
    }

    #[test]
    fn rownum_is_dense_per_partition(rows in proptest::collection::vec(row_strategy(), 0..20)) {
        let mut plan = Plan::new();
        let x = plan.lit(schema_abc(""), rel_rows(&rows));
        let rn = plan.rownum(x, "pos", vec![cn("k")], vec![(cn("x"), Dir::Asc)]);
        let rel = exec(&plan, rn);
        use std::collections::HashMap;
        let mut per_part: HashMap<i64, Vec<u64>> = HashMap::new();
        for row in rel.rows().iter() {
            per_part
                .entry(row[1].as_int().unwrap())
                .or_default()
                .push(row[3].as_nat().unwrap());
        }
        for (_, mut ps) in per_part {
            ps.sort_unstable();
            let expect: Vec<u64> = (1..=ps.len() as u64).collect();
            prop_assert_eq!(ps, expect, "dense 1..n per partition");
        }
    }

    #[test]
    fn dense_rank_agrees_with_distinct_count(rows in proptest::collection::vec(row_strategy(), 1..20)) {
        let mut plan = Plan::new();
        let x = plan.lit(schema_abc(""), rel_rows(&rows));
        let dr = plan.dense_rank(x, "g", vec![], vec![(cn("k"), Dir::Asc)]);
        let rel = exec(&plan, dr);
        let max_rank = rel
            .rows()
            .iter()
            .map(|r| r[3].as_nat().unwrap())
            .max()
            .unwrap();
        let distinct_keys: std::collections::HashSet<i64> =
            rel.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        prop_assert_eq!(max_rank as usize, distinct_keys.len());
    }

    #[test]
    fn group_by_counts_partition_the_input(rows in proptest::collection::vec(row_strategy(), 0..20)) {
        let mut plan = Plan::new();
        let x = plan.lit(schema_abc(""), rel_rows(&rows));
        let g = plan.group_by(
            x,
            vec![cn("k")],
            vec![Aggregate { fun: AggFun::CountAll, input: None, output: cn("n") }],
        );
        let rel = exec(&plan, g);
        let total: i64 = rel.rows().iter().map(|r| r[1].as_int().unwrap()).sum();
        prop_assert_eq!(total as usize, rows.len());
    }

    #[test]
    fn difference_then_union_recovers_distinct_left(
        l in proptest::collection::vec(row_strategy(), 0..15),
        r in proptest::collection::vec(row_strategy(), 0..15),
    ) {
        // δ(l) = (l − r) ∪ (l ∩ r), with ∩ as a semi join over δ(l)
        let mut plan = Plan::new();
        let lx = plan.lit(schema_abc(""), rel_rows(&l));
        let rx = plan.lit(schema_abc(""), rel_rows(&r));
        let diff = plan.difference(lx, rx);
        let dl = plan.distinct(lx);
        let inter = plan.semi_join(
            dl,
            rx,
            JoinCols::new(
                vec![cn("x"), cn("k"), cn("s")],
                vec![cn("x"), cn("k"), cn("s")],
            ),
        );
        let u = plan.union_all(diff, inter);
        prop_assert!(exec(&plan, u).same_bag(&exec(&plan, dl)));
    }

    #[test]
    fn serialize_orders_totally(rows in proptest::collection::vec(row_strategy(), 0..20)) {
        let mut plan = Plan::new();
        let x = plan.lit(schema_abc(""), rel_rows(&rows));
        let s = plan.serialize(
            x,
            vec![(cn("x"), Dir::Asc), (cn("k"), Dir::Asc), (cn("s"), Dir::Asc)],
            vec![cn("x"), cn("k"), cn("s")],
        );
        let rel = exec(&plan, s);
        for w in rel.rows().windows(2) {
            prop_assert!(w[0] <= w[1], "serialize output is sorted");
        }
    }

    #[test]
    fn theta_join_generalises_equi_join(
        l in proptest::collection::vec(row_strategy(), 0..10),
        r in proptest::collection::vec(row_strategy(), 0..10),
    ) {
        let mut plan = Plan::new();
        let lx = plan.lit(schema_abc(""), rel_rows(&l));
        let rx = plan.lit(schema_abc("r"), rel_rows(&r));
        let e = plan.equi_join(lx, rx, JoinCols::single("k", "rk"));
        let t = plan.theta_join(lx, rx, Expr::eq(Expr::col("k"), Expr::col("rk")));
        prop_assert!(exec(&plan, e).same_bag(&exec(&plan, t)));
    }

    #[test]
    fn rank_vs_dense_rank_relationship(rows in proptest::collection::vec(row_strategy(), 1..20)) {
        // RANK ≥ DENSE_RANK, equal on the first row of every rank group
        let mut plan = Plan::new();
        let x = plan.lit(schema_abc(""), rel_rows(&rows));
        let rk = plan.add(Node::RowRank {
            input: x,
            col: cn("rk"),
            order: vec![(cn("x"), Dir::Asc)],
        });
        let dr = plan.dense_rank(rk, "dr", vec![], vec![(cn("x"), Dir::Asc)]);
        let rel = exec(&plan, dr);
        for row in rel.rows().iter() {
            prop_assert!(row[3].as_nat().unwrap() >= row[4].as_nat().unwrap());
        }
    }
}

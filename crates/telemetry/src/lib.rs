//! # `ferry-telemetry` — the observability substrate
//!
//! Always-on, low-overhead, per-query attribution for the whole pipeline
//! (compile → loop-lift → shred → optimize → codegen → execute), built
//! in-house like every other dependency of this workspace (no crates.io
//! access — see `shims/`). Three layers:
//!
//! * **Span tracing** ([`span`]): a query-scoped trace is a tree of
//!   [`SpanRecord`]s with wall-clock start/duration and typed attributes.
//!   Finished spans land in a *per-thread* buffer (one uncontended mutex
//!   per thread — lock-cheap), tagged with a process-unique trace id, and
//!   are drained into a bounded ring of recent [`QueryTrace`]s when the
//!   trace ends. The ambient trace context propagates across the engine's
//!   morsel/wavefront worker threads via [`current_ctx`]/[`enter_ctx`].
//! * **Metrics** ([`metrics`]): named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s (p50/p95/p99) in a [`Registry`].
//!   `ferry_engine::QueryStats` is a view assembled from this registry.
//! * **Export** ([`export`]): [`chrome_trace_json`] renders a
//!   [`QueryTrace`] as Chrome-trace-format JSON (`chrome://tracing`,
//!   Perfetto), one complete (`"ph":"X"`) event per span.
//!
//! Everything is gated by [`TelemetryConfig`]: `Off` disables all
//! accounting, `Counters` (the default) keeps the registry hot but never
//! records spans, `Full` additionally traces every query. When no trace
//! is active the cost of an instrumentation point is a single
//! thread-local read.

pub mod export;
pub mod metrics;
pub mod names;
pub mod report;
pub mod span;
pub mod trace;

pub use export::chrome_trace_json;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Metric, MetricTypeConflict, Registry,
};
pub use report::{OptReport, PassStat};
pub use span::{
    current_ctx, enter_ctx, now_ns, record_span, span, tracing_active, AttrVal, CtxGuard, Span,
    SpanRecord, TraceCtx,
};
pub use trace::{QueryTrace, Telemetry, TraceGuard};

/// How much the telemetry layer records.
///
/// The three levels are strictly ordered: everything `Counters` records,
/// `Full` records too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TelemetryConfig {
    /// No accounting at all: counters stay zero, no spans, no traces.
    /// The near-zero-overhead mode the `telemetry_overhead` bench pins.
    Off,
    /// Metrics registry only (the default): counters and latency
    /// histograms are maintained, spans are never recorded.
    #[default]
    Counters,
    /// Counters plus span tracing: every query gets a trace in the ring,
    /// exportable via [`chrome_trace_json`].
    Full,
}

impl TelemetryConfig {
    pub(crate) fn from_u8(v: u8) -> TelemetryConfig {
        match v {
            0 => TelemetryConfig::Off,
            2 => TelemetryConfig::Full,
            _ => TelemetryConfig::Counters,
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            TelemetryConfig::Off => 0,
            TelemetryConfig::Counters => 1,
            TelemetryConfig::Full => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_levels_are_ordered() {
        assert!(TelemetryConfig::Off < TelemetryConfig::Counters);
        assert!(TelemetryConfig::Counters < TelemetryConfig::Full);
        assert_eq!(TelemetryConfig::default(), TelemetryConfig::Counters);
        for c in [
            TelemetryConfig::Off,
            TelemetryConfig::Counters,
            TelemetryConfig::Full,
        ] {
            assert_eq!(TelemetryConfig::from_u8(c.as_u8()), c);
        }
    }
}

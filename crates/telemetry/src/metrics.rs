//! The metrics registry: named counters, gauges, and log-bucketed
//! latency histograms.
//!
//! Handles are `Arc`s over atomics — hot paths fetch them once (e.g. at
//! `Database` construction) and update without touching the registry
//! lock again. Histograms bucket by bit length (`⌈log2⌉`), so 64 buckets
//! cover the full `u64` range and recording is a `leading_zeros` plus one
//! relaxed atomic add; quantiles are read back as the **upper bound** of
//! the bucket holding the requested rank (an estimate within 2× of the
//! true value, which is all a latency percentile needs).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `i` holds values of bit length
/// `i`, i.e. `2^(i-1) <= v < 2^i` (bucket 0 holds exactly 0).
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.set(0);
    }
}

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the bucket holding `v`: its bit length.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Largest value bucket `i` can hold (`2^i - 1`; bucket 0 holds only 0).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A self-consistent point-in-time copy. `count` is **derived from
    /// the bucket sums** rather than read from the `count` atomic: a
    /// `record` (or `reset`) racing this snapshot could otherwise leave
    /// `count ≠ Σ buckets`, which breaks every quantile walk over the
    /// buckets. `sum` may still lag the buckets by in-flight samples, so
    /// `mean()` is approximate under concurrency — but the structural
    /// invariant `snapshot.count == snapshot.buckets.iter().sum()` always
    /// holds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound of
    /// the bucket containing the sample of that rank. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact mean of the recorded samples (the sum is exact even though
    /// the buckets are logarithmic).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One named metric handle.
#[derive(Debug, Clone)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    /// The kind of this metric, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// `name` is already registered as a different metric kind. Registration
/// is get-or-create, so asking for the *same* kind twice returns the
/// existing handle; only a kind mismatch produces this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricTypeConflict {
    pub name: String,
    /// Kind already in the registry under `name`.
    pub existing: &'static str,
    /// Kind this registration asked for.
    pub requested: &'static str,
}

impl std::fmt::Display for MetricTypeConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "metric {} already registered as a {}, requested as a {}",
            self.name, self.existing, self.requested
        )
    }
}

impl std::error::Error for MetricTypeConflict {}

/// The name → metric map. Handle acquisition locks; updates through the
/// returned `Arc`s do not.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Get or create the counter `name`. Asking again for the same name
    /// and kind returns the existing handle; a kind mismatch is a
    /// [`MetricTypeConflict`] (and the existing registration is kept).
    pub fn counter(&self, name: &str) -> Result<Arc<Counter>, MetricTypeConflict> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Ok(c.clone()),
            other => Err(MetricTypeConflict {
                name: name.to_string(),
                existing: other.kind(),
                requested: "counter",
            }),
        }
    }

    /// Get or create the gauge `name` (same kind rules as [`counter`](Registry::counter)).
    pub fn gauge(&self, name: &str) -> Result<Arc<Gauge>, MetricTypeConflict> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Ok(g.clone()),
            other => Err(MetricTypeConflict {
                name: name.to_string(),
                existing: other.kind(),
                requested: "gauge",
            }),
        }
    }

    /// Get or create the histogram `name` (same kind rules as [`counter`](Registry::counter)).
    pub fn histogram(&self, name: &str) -> Result<Arc<Histogram>, MetricTypeConflict> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Ok(h.clone()),
            other => Err(MetricTypeConflict {
                name: name.to_string(),
                existing: other.kind(),
                requested: "histogram",
            }),
        }
    }

    /// Every registered metric, by name.
    pub fn metrics(&self) -> Vec<(String, Metric)> {
        self.metrics
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Zero every registered metric (handles stay valid).
    pub fn reset(&self) {
        for (_, m) in self.metrics.lock().unwrap().iter() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Human-readable dump: one `name value` line per metric, histograms
    /// with count/mean/p50/p95/p99.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, m) in self.metrics() {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(
                        out,
                        "{name} count={} mean={:.0} p50<={} p95<={} p99<={}",
                        s.count,
                        s.mean(),
                        s.p50(),
                        s.p95(),
                        s.p99()
                    );
                }
            }
        }
        out
    }

    /// Prometheus text-exposition rendering of every registered metric —
    /// the body a future `/metrics` endpoint serves. Byte-stable for
    /// identical registry state: the metric map is a `BTreeMap`, so names
    /// come out sorted, and within a histogram buckets come out in
    /// ascending `le` order.
    ///
    /// Conventions: dots in metric names become underscores
    /// (`engine.queries` → `engine_queries`); counters and gauges render
    /// as `# TYPE` plus one sample; histograms render cumulative
    /// `_bucket{le="…"}` samples (only non-empty buckets, each labelled
    /// with its inclusive upper bound, plus the mandatory `le="+Inf"`),
    /// then `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, m) in self.metrics() {
            let pname = prometheus_name(&name);
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {pname} counter");
                    let _ = writeln!(out, "{pname} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = writeln!(out, "{pname} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    let mut cum = 0u64;
                    for (i, &n) in s.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum += n;
                        let _ = writeln!(
                            out,
                            "{pname}_bucket{{le=\"{}\"}} {cum}",
                            bucket_upper_bound(i)
                        );
                    }
                    let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", s.count);
                    let _ = writeln!(out, "{pname}_sum {}", s.sum);
                    let _ = writeln!(out, "{pname}_count {}", s.count);
                }
            }
        }
        out
    }
}

/// A registry name as a legal Prometheus metric name: every character
/// outside `[a-zA-Z0-9_:]` (notably the `.` separators this workspace
/// uses) becomes `_`.
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::default();
        let c = r.counter("q").unwrap();
        c.inc();
        c.add(4);
        assert_eq!(r.counter("q").unwrap().get(), 5);
        let g = r.gauge("depth").unwrap();
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn kind_mismatch_is_an_error_not_a_panic() {
        let r = Registry::default();
        let c = r.counter("x").unwrap();
        c.inc();
        // same name, same kind: the existing handle comes back
        assert!(Arc::ptr_eq(&c, &r.counter("x").unwrap()));
        // same name, different kind: a typed error, no panic
        let err = r.gauge("x").unwrap_err();
        assert_eq!(err.name, "x");
        assert_eq!(err.existing, "counter");
        assert_eq!(err.requested, "gauge");
        assert!(err.to_string().contains("already registered as a counter"));
        let err = r.histogram("x").unwrap_err();
        assert_eq!(err.requested, "histogram");
        // the original registration survives the conflict untouched
        assert_eq!(r.counter("x").unwrap().get(), 1);
        assert_eq!(r.metrics().len(), 1);
    }

    #[test]
    fn bucket_boundaries_are_bit_lengths() {
        // bucket 0: {0}; bucket 1: {1}; bucket 2: {2,3}; bucket 3: {4..7}
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // every value lands in the bucket whose bounds contain it
        for v in [0u64, 1, 2, 5, 100, 1023, 1024, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let h = Histogram::default();
        // 100 samples of 5 (bucket 3, ub 7) and 1 sample of 1000
        // (bucket 10, ub 1023)
        for _ in 0..100 {
            h.record(5);
        }
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 101);
        assert_eq!(s.sum, 1500);
        assert_eq!(s.p50(), 7);
        assert_eq!(s.p95(), 7);
        // rank ceil(0.99 * 101) = 100 → still the bucket of the 5s
        assert_eq!(s.p99(), 7);
        assert_eq!(s.quantile(1.0), 1023);
        assert!((s.mean() - 1500.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().quantile(0.5), 0);
        h.record(0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0); // rank clamps to 1 → first sample
        assert_eq!(s.quantile(1.0), u64::MAX);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn render_names_every_metric() {
        let r = Registry::default();
        r.counter("a.count").unwrap().add(2);
        r.histogram("b.latency_ns").unwrap().record(100);
        let text = r.render();
        assert!(text.contains("a.count 2"));
        assert!(text.contains("b.latency_ns count=1"));
        assert!(text.contains("p95<="));
    }

    /// Golden test for the Prometheus text exposition: exact bytes for a
    /// fixed registry state, and byte-stability across repeated renders.
    /// The fixture covers one family from each layer the exposition
    /// serves — engine counters/gauges/histograms and the `server.*`
    /// families `ferry-server`'s `Metrics` request returns over the wire.
    #[test]
    fn prometheus_rendering_is_golden_and_stable() {
        let r = Registry::default();
        r.counter("engine.queries").unwrap().add(7);
        r.gauge("engine.epoch").unwrap().set(-3);
        let h = r.histogram("engine.query_latency_ns").unwrap();
        h.record(0); // bucket 0, ub 0
        h.record(5); // bucket 3, ub 7
        h.record(5);
        h.record(1000); // bucket 10, ub 1023
        r.counter(crate::names::SERVER_ACCEPTS).unwrap().add(4);
        r.counter(crate::names::SERVER_REJECTS).unwrap().add(2);
        r.gauge(crate::names::SERVER_QUEUE_DEPTH).unwrap().set(1);
        let w = r.histogram(crate::names::SERVER_QUEUE_WAIT_NS).unwrap();
        w.record(3); // bucket 2, ub 3
        w.record(900); // bucket 10, ub 1023
        let expected = "\
# TYPE engine_epoch gauge
engine_epoch -3
# TYPE engine_queries counter
engine_queries 7
# TYPE engine_query_latency_ns histogram
engine_query_latency_ns_bucket{le=\"0\"} 1
engine_query_latency_ns_bucket{le=\"7\"} 3
engine_query_latency_ns_bucket{le=\"1023\"} 4
engine_query_latency_ns_bucket{le=\"+Inf\"} 4
engine_query_latency_ns_sum 1010
engine_query_latency_ns_count 4
# TYPE server_accepts counter
server_accepts 4
# TYPE server_queue_depth gauge
server_queue_depth 1
# TYPE server_queue_wait_ns histogram
server_queue_wait_ns_bucket{le=\"3\"} 1
server_queue_wait_ns_bucket{le=\"1023\"} 2
server_queue_wait_ns_bucket{le=\"+Inf\"} 2
server_queue_wait_ns_sum 903
server_queue_wait_ns_count 2
# TYPE server_rejects counter
server_rejects 2
";
        assert_eq!(r.render_prometheus(), expected);
        // identical state renders identical bytes
        assert_eq!(r.render_prometheus(), r.render_prometheus());
    }

    #[test]
    fn prometheus_names_are_sanitized_and_sorted() {
        let r = Registry::default();
        r.counter("z.last").unwrap().inc();
        r.counter("a.first-metric").unwrap().inc();
        let text = r.render_prometheus();
        let a = text.find("a_first_metric").expect("sanitized name present");
        let z = text.find("z_last").expect("sanitized name present");
        assert!(a < z, "names must render in sorted order:\n{text}");
    }

    /// Satellite fix: a snapshot taken while `record` / `reset` race must
    /// stay internally consistent — `count` equals the summed buckets, so
    /// quantile walks can never run past the recorded mass.
    #[test]
    fn concurrent_record_snapshot_reset_keeps_snapshots_consistent() {
        use std::sync::atomic::AtomicBool;
        let h = Arc::new(Histogram::default());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let h = h.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut v: u64 = t;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(v % 4096);
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                })
            })
            .collect();
        let resetter = {
            let h = h.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    h.reset();
                    std::thread::yield_now();
                }
            })
        };
        for _ in 0..2000 {
            let s = h.snapshot();
            assert_eq!(
                s.count,
                s.buckets.iter().sum::<u64>(),
                "snapshot count must equal summed buckets"
            );
            // quantiles stay in range whatever the interleaving
            let _ = s.p50();
            let _ = s.p99();
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        resetter.join().unwrap();
    }
}

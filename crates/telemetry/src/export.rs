//! Chrome-trace-format export.
//!
//! [`chrome_trace_json`] renders a [`QueryTrace`] as the JSON object
//! format understood by `chrome://tracing` and Perfetto: a
//! `"traceEvents"` array of complete (`"ph":"X"`) duration events with
//! microsecond timestamps. Hand-rolled serialization, same as the rest of
//! the workspace (no serde offline).

use std::fmt::Write as _;

use crate::span::{AttrVal, SpanRecord};
use crate::trace::QueryTrace;

/// Escape `s` for inclusion in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_json_str(s: &str, out: &mut String) {
    out.push('"');
    escape_json(s, out);
    out.push('"');
}

fn push_attr_val(v: &AttrVal, out: &mut String) {
    match v {
        AttrVal::Int(i) => {
            let _ = write!(out, "{i}");
        }
        AttrVal::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        AttrVal::Float(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        AttrVal::Float(f) => push_json_str(&f.to_string(), out),
        AttrVal::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        AttrVal::Str(s) => push_json_str(s, out),
    }
}

/// Nanoseconds rendered as fractional microseconds (`1234567` → `1234.567`),
/// the unit Chrome trace events use for `ts`/`dur`.
fn push_us(ns: u64, out: &mut String) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_event(span: &SpanRecord, out: &mut String) {
    out.push_str("{\"name\":");
    push_json_str(&span.name, out);
    out.push_str(",\"cat\":");
    push_json_str(span.cat, out);
    out.push_str(",\"ph\":\"X\",\"ts\":");
    push_us(span.start_ns, out);
    out.push_str(",\"dur\":");
    push_us(span.dur_ns, out);
    let _ = write!(out, ",\"pid\":1,\"tid\":{}", span.tid);
    let _ = write!(
        out,
        ",\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_id\":{}",
        span.trace, span.id, span.parent
    );
    for (k, v) in &span.attrs {
        out.push(',');
        push_json_str(k, out);
        out.push(':');
        push_attr_val(v, out);
    }
    out.push_str("}}");
}

/// Render `trace` as a Chrome trace JSON document. Events are sorted by
/// start timestamp (monotone `ts` across the array).
pub fn chrome_trace_json(trace: &QueryTrace) -> String {
    let mut spans: Vec<&SpanRecord> = trace.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    let mut out = String::with_capacity(128 + 160 * spans.len());
    out.push_str("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(span, &mut out);
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"trace_id\":{},\"query_id\":{}}}}}",
        trace.trace_id, trace.query_id
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn rec(id: u64, name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: if id == 1 { 0 } else { 1 },
            trace: 7,
            name: Cow::Borrowed(name),
            cat: "test",
            tid: 1,
            start_ns: start,
            dur_ns: dur,
            attrs: vec![],
        }
    }

    #[test]
    fn events_come_out_sorted_by_start() {
        let trace = QueryTrace {
            trace_id: 7,
            query_id: 3,
            start_ns: 0,
            dur_ns: 5_000,
            spans: vec![rec(2, "late", 3_000, 500), rec(1, "query", 0, 5_000)],
        };
        let json = chrome_trace_json(&trace);
        let late = json.find("\"late\"").unwrap();
        let query = json.find("\"query\"").unwrap();
        assert!(query < late, "root (earlier start) must serialize first");
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"ts\":3.000"));
        assert!(json.contains("\"dur\":0.500"));
        assert!(json.contains("\"query_id\":3"));
    }

    #[test]
    fn attrs_and_escaping() {
        let mut span = rec(1, "q", 1_234_567, 10);
        span.attrs = vec![
            ("rows", AttrVal::UInt(5)),
            ("label", AttrVal::Str("a\"b\\c\nd".to_string())),
            ("ratio", AttrVal::Float(0.5)),
            ("nan", AttrVal::Float(f64::NAN)),
            ("vec", AttrVal::Bool(true)),
            ("delta", AttrVal::Int(-3)),
        ];
        let trace = QueryTrace {
            trace_id: 7,
            query_id: 1,
            start_ns: 0,
            dur_ns: 10,
            spans: vec![span],
        };
        let json = chrome_trace_json(&trace);
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"rows\":5"));
        assert!(json.contains("\"label\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"ratio\":0.5"));
        assert!(json.contains("\"nan\":\"NaN\""));
        assert!(json.contains("\"vec\":true"));
        assert!(json.contains("\"delta\":-3"));
    }
}

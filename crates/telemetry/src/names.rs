//! The metric-names contract: every counter, gauge and histogram name
//! the workspace registers, as `const`s in one place.
//!
//! PR 8 declared the names a public contract (DESIGN.md lists them and
//! external scrapers key on them); this module enforces it. Crates
//! register handles through these constants instead of scattered string
//! literals, and [`ALL`] pins the full list in a golden test — adding,
//! renaming or retiring a metric is a deliberate, reviewed edit here,
//! never an accident in a call site.

/// Queries dispatched (one per `execute` / `execute_bundle` member).
pub const ENGINE_QUERIES: &str = "engine.queries";
/// Rows returned to the client across all queries.
pub const ENGINE_ROWS_OUT: &str = "engine.rows_out";
/// Operator (plan-node) evaluations.
pub const ENGINE_NODES_EVALUATED: &str = "engine.nodes_evaluated";
/// Rows produced by intermediate operators (a rough work metric).
pub const ENGINE_ROWS_PRODUCED: &str = "engine.rows_produced";
/// Morsel tasks executed by bulk operators.
pub const ENGINE_MORSEL_TASKS: &str = "engine.morsel_tasks";
/// Nodes whose bulk work split across more than one morsel.
pub const ENGINE_PAR_NODES: &str = "engine.par_nodes";
/// DAG wavefronts that evaluated two or more nodes concurrently.
pub const ENGINE_PAR_WAVES: &str = "engine.par_waves";
/// Node evaluations that took the vectorized path.
pub const ENGINE_VEC_NODES: &str = "engine.vec_nodes";
/// Kernel batches executed by vectorized nodes.
pub const ENGINE_KERNEL_BATCHES: &str = "engine.kernel_batches";
/// Pipeline groups that executed fused (one batch loop scan→sink).
pub const ENGINE_FUSED_PIPELINES: &str = "engine.fused_pipelines";
/// Plan nodes absorbed into fused pipelines.
pub const ENGINE_FUSED_NODES: &str = "engine.fused_nodes";
/// Rows read from sharded base-table scans (post-pruning).
pub const ENGINE_SHARD_ROWS: &str = "engine.shard.rows";
/// Rows partition pruning skipped without reading.
pub const ENGINE_SHARD_PRUNED: &str = "engine.shard.pruned";
/// Per-dispatch wall time (histogram, log₂ buckets).
pub const ENGINE_QUERY_LATENCY_NS: &str = "engine.query_latency_ns";
/// The published catalog epoch (gauge, monotone under one process).
pub const ENGINE_EPOCH: &str = "engine.epoch";

/// Plan-cache hits recorded by the runtime (`Connection::prepare`).
pub const RUNTIME_CACHE_HITS: &str = "runtime.cache_hits";
/// Plan-cache misses (full compilations).
pub const RUNTIME_CACHE_MISSES: &str = "runtime.cache_misses";

/// Connections the server accepted into a session.
pub const SERVER_ACCEPTS: &str = "server.accepts";
/// Live server sessions right now (gauge).
pub const SERVER_CONNECTIONS: &str = "server.connections";
/// Work items queued for the worker pool right now (gauge).
pub const SERVER_QUEUE_DEPTH: &str = "server.queue_depth";
/// Time a request spent queued before a worker picked it up (histogram).
pub const SERVER_QUEUE_WAIT_NS: &str = "server.queue_wait_ns";
/// Admission-control refusals: connection limit (`Busy`), work-queue
/// limit (`QueueFull`) and shutdown-window (`ShuttingDown`) rejections.
pub const SERVER_REJECTS: &str = "server.rejects";
/// Wall time from request frame decoded to response frames written
/// (histogram).
pub const SERVER_REQUEST_LATENCY_NS: &str = "server.request_latency_ns";
/// Requests the server finished processing (any type, any outcome).
pub const SERVER_REQUESTS: &str = "server.requests";

/// Bytes appended to the write-ahead log.
pub const STORAGE_WAL_BYTES: &str = "storage.wal_bytes";
/// WAL fsync calls issued.
pub const STORAGE_FSYNCS: &str = "storage.fsyncs";
/// WAL records appended.
pub const STORAGE_WAL_RECORDS: &str = "storage.wal_records";
/// Snapshots (checkpoints) written.
pub const STORAGE_SNAPSHOTS: &str = "storage.snapshots";
/// Recovery runs performed at open.
pub const STORAGE_RECOVERIES: &str = "storage.recoveries";
/// Auto-checkpoint failures recorded by the engine.
pub const STORAGE_CHECKPOINT_FAILURES: &str = "storage.checkpoint_failures";
/// Transactions made durable per group-commit fsync (histogram).
pub const STORAGE_COMMIT_BATCH_RECORDS: &str = "storage.commit_batch_records";
/// Bytes appended across all shard-local WALs of a sharded database.
pub const STORAGE_SHARD_WAL_BYTES: &str = "storage.shard.wal_bytes";

/// Every metric name the workspace registers, sorted. The golden test
/// below pins this list; `Registry::render_prometheus` output for a
/// fully-registered database is stable because registration goes through
/// these constants only.
pub const ALL: &[&str] = &[
    ENGINE_EPOCH,
    ENGINE_FUSED_NODES,
    ENGINE_FUSED_PIPELINES,
    ENGINE_KERNEL_BATCHES,
    ENGINE_MORSEL_TASKS,
    ENGINE_NODES_EVALUATED,
    ENGINE_PAR_NODES,
    ENGINE_PAR_WAVES,
    ENGINE_QUERIES,
    ENGINE_QUERY_LATENCY_NS,
    ENGINE_ROWS_OUT,
    ENGINE_ROWS_PRODUCED,
    ENGINE_SHARD_PRUNED,
    ENGINE_SHARD_ROWS,
    ENGINE_VEC_NODES,
    RUNTIME_CACHE_HITS,
    RUNTIME_CACHE_MISSES,
    SERVER_ACCEPTS,
    SERVER_CONNECTIONS,
    SERVER_QUEUE_DEPTH,
    SERVER_QUEUE_WAIT_NS,
    SERVER_REJECTS,
    SERVER_REQUEST_LATENCY_NS,
    SERVER_REQUESTS,
    STORAGE_CHECKPOINT_FAILURES,
    STORAGE_COMMIT_BATCH_RECORDS,
    STORAGE_FSYNCS,
    STORAGE_RECOVERIES,
    STORAGE_SHARD_WAL_BYTES,
    STORAGE_SNAPSHOTS,
    STORAGE_WAL_BYTES,
    STORAGE_WAL_RECORDS,
];

#[cfg(test)]
mod tests {
    use super::*;

    /// The golden list: the full names contract, alphabetical. A failure
    /// here means a metric was added, renamed or removed — update BOTH
    /// this test and `ALL` (and DESIGN.md §7) deliberately.
    #[test]
    fn golden_metric_names() {
        let expected = [
            "engine.epoch",
            "engine.fused_nodes",
            "engine.fused_pipelines",
            "engine.kernel_batches",
            "engine.morsel_tasks",
            "engine.nodes_evaluated",
            "engine.par_nodes",
            "engine.par_waves",
            "engine.queries",
            "engine.query_latency_ns",
            "engine.rows_out",
            "engine.rows_produced",
            "engine.shard.pruned",
            "engine.shard.rows",
            "engine.vec_nodes",
            "runtime.cache_hits",
            "runtime.cache_misses",
            "server.accepts",
            "server.connections",
            "server.queue_depth",
            "server.queue_wait_ns",
            "server.rejects",
            "server.request_latency_ns",
            "server.requests",
            "storage.checkpoint_failures",
            "storage.commit_batch_records",
            "storage.fsyncs",
            "storage.recoveries",
            "storage.shard.wal_bytes",
            "storage.snapshots",
            "storage.wal_bytes",
            "storage.wal_records",
        ];
        assert_eq!(ALL, &expected, "metric names contract changed");
    }

    #[test]
    fn all_is_sorted_and_unique() {
        let mut sorted = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ALL, &sorted[..], "ALL must be sorted and duplicate-free");
    }
}

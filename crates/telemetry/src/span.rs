//! Span recording: trace context, per-thread buffers, and the RAII
//! [`Span`] guard.
//!
//! A *trace context* (`(trace id, parent span id)`) is thread-local.
//! [`crate::Telemetry::begin_query`] installs it on the calling thread;
//! worker pools forward it into their scoped threads by capturing
//! [`current_ctx`] before spawning and calling [`enter_ctx`] inside the
//! worker. When no context is installed every recording entry point is a
//! no-op after one thread-local read — that is the entire disabled-mode
//! cost of an instrumentation point.
//!
//! Finished spans are pushed onto the recording thread's own buffer (an
//! `Arc<Mutex<Vec<_>>>` registered once per thread in a global list — the
//! mutex is uncontended in steady state, hence "lock-cheap"). Ending a
//! trace drains every registered buffer for spans carrying that trace id;
//! buffers of dead threads survive in the registry until drained, then
//! get pruned.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans per thread buffer before new records are dropped — a backstop
/// against a trace guard that is never dropped, not a tuning knob.
const THREAD_BUF_CAP: usize = 1 << 16;

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrVal {
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl From<i64> for AttrVal {
    fn from(v: i64) -> AttrVal {
        AttrVal::Int(v)
    }
}
impl From<u64> for AttrVal {
    fn from(v: u64) -> AttrVal {
        AttrVal::UInt(v)
    }
}
impl From<u32> for AttrVal {
    fn from(v: u32) -> AttrVal {
        AttrVal::UInt(v as u64)
    }
}
impl From<usize> for AttrVal {
    fn from(v: usize) -> AttrVal {
        AttrVal::UInt(v as u64)
    }
}
impl From<f64> for AttrVal {
    fn from(v: f64) -> AttrVal {
        AttrVal::Float(v)
    }
}
impl From<bool> for AttrVal {
    fn from(v: bool) -> AttrVal {
        AttrVal::Bool(v)
    }
}
impl From<&str> for AttrVal {
    fn from(v: &str) -> AttrVal {
        AttrVal::Str(v.to_string())
    }
}
impl From<String> for AttrVal {
    fn from(v: String) -> AttrVal {
        AttrVal::Str(v)
    }
}

impl std::fmt::Display for AttrVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrVal::Int(v) => write!(f, "{v}"),
            AttrVal::UInt(v) => write!(f, "{v}"),
            AttrVal::Float(v) => write!(f, "{v}"),
            AttrVal::Str(v) => write!(f, "{v}"),
            AttrVal::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id; 0 for the trace's root span.
    pub parent: u64,
    /// The query-scoped trace this span belongs to.
    pub trace: u64,
    pub name: Cow<'static, str>,
    /// Coarse pipeline stage: `"compile"`, `"optimize"`, `"sql"`,
    /// `"engine"`, `"exec.node"`, `"exec.morsel"`, `"runtime"`, `"query"`.
    pub cat: &'static str,
    /// Small dense id of the recording thread (for trace viewers' lanes).
    pub tid: u64,
    /// Nanoseconds since the process-wide monotonic epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    pub attrs: Vec<(&'static str, AttrVal)>,
}

/// The ambient `(trace, parent span)` pair. `trace == 0` means tracing is
/// inactive on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace: u64,
    pub parent: u64,
}

impl TraceCtx {
    pub const INACTIVE: TraceCtx = TraceCtx {
        trace: 0,
        parent: 0,
    };

    pub fn is_active(&self) -> bool {
        self.trace != 0
    }
}

type ThreadBuf = Mutex<Vec<SpanRecord>>;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static BUFFERS: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());

thread_local! {
    static CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx::INACTIVE) };
    static LOCAL_BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// Nanoseconds since the process-wide monotonic epoch (first call).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Dense per-thread id, assigned on first use.
pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Allocate a span id for a caller that builds its own [`SpanRecord`]
/// (the trace root synthesized by `Telemetry::finish`).
pub(crate) fn next_span_id_pub() -> u64 {
    next_span_id()
}

/// The calling thread's ambient trace context (copy it into worker
/// threads, then [`enter_ctx`] there).
pub fn current_ctx() -> TraceCtx {
    CTX.with(|c| c.get())
}

/// Is a trace active on this thread? The one-read fast-path check every
/// instrumentation point performs first.
pub fn tracing_active() -> bool {
    current_ctx().is_active()
}

pub(crate) fn set_ctx(ctx: TraceCtx) -> TraceCtx {
    CTX.with(|c| c.replace(ctx))
}

/// Install `ctx` on the current thread until the guard drops (restoring
/// whatever was there before). No-op guard when `ctx` is inactive.
pub fn enter_ctx(ctx: TraceCtx) -> CtxGuard {
    if !ctx.is_active() {
        return CtxGuard { prev: None };
    }
    CtxGuard {
        prev: Some(set_ctx(ctx)),
    }
}

/// Restores the previous trace context on drop. `!Send` by construction
/// (holds nothing, but semantically thread-bound — do not move it).
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            set_ctx(prev);
        }
    }
}

/// Push one finished record onto this thread's buffer, registering the
/// buffer globally on first use.
pub(crate) fn push_record(rec: SpanRecord) {
    LOCAL_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf: Arc<ThreadBuf> = Arc::new(Mutex::new(Vec::new()));
            BUFFERS.lock().unwrap().push(buf.clone());
            buf
        });
        let mut v = buf.lock().unwrap();
        if v.len() < THREAD_BUF_CAP {
            v.push(rec);
        }
    });
}

/// Extract every buffered span of `trace` from every thread buffer, and
/// prune buffers whose owning thread died with nothing left in them.
pub(crate) fn drain_trace(trace: u64) -> Vec<SpanRecord> {
    let mut out = Vec::new();
    let mut bufs = BUFFERS.lock().unwrap();
    bufs.retain(|buf| {
        let mut v = buf.lock().unwrap();
        let mut i = 0;
        while i < v.len() {
            if v[i].trace == trace {
                out.push(v.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // keep buffers of live threads (the thread_local holds a 2nd Arc)
        Arc::strong_count(buf) > 1 || !v.is_empty()
    });
    out
}

/// An in-flight span: started now, recorded when dropped. Inert (zero
/// allocation, zero recording) when no trace is active on this thread.
///
/// While the guard lives, spans opened on the same thread parent to it.
pub struct Span {
    open: Option<Box<OpenSpan>>,
}

struct OpenSpan {
    id: u64,
    parent: u64,
    trace: u64,
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrVal)>,
}

/// Open a span under the ambient trace context (inert when inactive).
pub fn span(name: &'static str, cat: &'static str) -> Span {
    let ctx = current_ctx();
    if !ctx.is_active() {
        return Span { open: None };
    }
    let id = next_span_id();
    set_ctx(TraceCtx {
        trace: ctx.trace,
        parent: id,
    });
    Span {
        open: Some(Box::new(OpenSpan {
            id,
            parent: ctx.parent,
            trace: ctx.trace,
            name,
            cat,
            start_ns: now_ns(),
            attrs: Vec::new(),
        })),
    }
}

impl Span {
    /// Is this span actually recording (a trace is active)?
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }

    /// Attach an attribute (no-op on an inert span).
    pub fn attr(&mut self, key: &'static str, val: impl Into<AttrVal>) -> &mut Span {
        if let Some(open) = &mut self.open {
            open.attrs.push((key, val.into()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        // restore the parent slot for our siblings
        set_ctx(TraceCtx {
            trace: open.trace,
            parent: open.parent,
        });
        let end = now_ns();
        push_record(SpanRecord {
            id: open.id,
            parent: open.parent,
            trace: open.trace,
            name: Cow::Borrowed(open.name),
            cat: open.cat,
            tid: thread_id(),
            start_ns: open.start_ns,
            dur_ns: end.saturating_sub(open.start_ns),
            attrs: open.attrs,
        });
    }
}

/// Record an already-measured span (post-hoc: the caller timed the work
/// itself, e.g. the engine's per-node profiler). Parents to the ambient
/// span; returns the new span's id, or 0 when tracing is inactive.
pub fn record_span(
    name: impl Into<Cow<'static, str>>,
    cat: &'static str,
    start_ns: u64,
    dur_ns: u64,
    attrs: Vec<(&'static str, AttrVal)>,
) -> u64 {
    let ctx = current_ctx();
    if !ctx.is_active() {
        return 0;
    }
    let id = next_span_id();
    push_record(SpanRecord {
        id,
        parent: ctx.parent,
        trace: ctx.trace,
        name: name.into(),
        cat,
        tid: thread_id(),
        start_ns,
        dur_ns,
        attrs,
    });
    id
}

pub(crate) fn next_trace_id() -> u64 {
    static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_thread_records_nothing() {
        assert!(!tracing_active());
        let mut s = span("noop", "test");
        assert!(!s.is_recording());
        s.attr("k", 1u64);
        drop(s);
        assert_eq!(record_span("noop", "test", 0, 1, vec![]), 0);
    }

    #[test]
    fn spans_nest_and_restore_parent() {
        let trace = next_trace_id();
        let _g = enter_ctx(TraceCtx { trace, parent: 0 });
        let outer_id;
        {
            let outer = span("outer", "test");
            outer_id = outer.open.as_ref().unwrap().id;
            assert_eq!(current_ctx().parent, outer_id);
            {
                let inner = span("inner", "test");
                assert_eq!(inner.open.as_ref().unwrap().parent, outer_id);
            }
            // sibling after inner still parents to outer
            assert_eq!(current_ctx().parent, outer_id);
        }
        assert_eq!(current_ctx().parent, 0);
        let spans = drain_trace(trace);
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn ctx_propagates_into_threads() {
        let trace = next_trace_id();
        let _g = enter_ctx(TraceCtx { trace, parent: 7 });
        let ctx = current_ctx();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!tracing_active());
                let _w = enter_ctx(ctx);
                assert!(tracing_active());
                let _s = span("worker", "test");
            });
        });
        let spans = drain_trace(trace);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, 7);
        assert_eq!(spans[0].trace, trace);
        // the worker's thread id differs from ours
        assert_ne!(spans[0].tid, thread_id());
    }

    #[test]
    fn drain_takes_only_the_requested_trace() {
        let t1 = next_trace_id();
        let t2 = next_trace_id();
        {
            let _g = enter_ctx(TraceCtx {
                trace: t1,
                parent: 0,
            });
            let _s = span("one", "test");
        }
        {
            let _g = enter_ctx(TraceCtx {
                trace: t2,
                parent: 0,
            });
            let _s = span("two", "test");
        }
        let got1 = drain_trace(t1);
        assert_eq!(got1.len(), 1);
        assert_eq!(got1[0].name, "one");
        let got2 = drain_trace(t2);
        assert_eq!(got2.len(), 1);
        assert_eq!(got2[0].name, "two");
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}

//! The `Telemetry` hub: config, metrics registry, and the bounded ring of
//! recent query traces.
//!
//! Each `Database`/`Connection` owns an `Arc<Telemetry>` (no process
//! globals beyond the span id counters), so tests and concurrent
//! connections never see each other's traces.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::span::{
    drain_trace, next_trace_id, now_ns, set_ctx, thread_id, tracing_active, SpanRecord, TraceCtx,
};
use crate::{AttrVal, Registry, TelemetryConfig};

/// Recent query traces kept per `Telemetry` instance.
pub const TRACE_RING_CAP: usize = 16;

/// One completed query trace: the synthesized root span plus every span
/// recorded (on any thread) while the trace was active.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Process-unique trace id (matches `SpanRecord::trace`).
    pub trace_id: u64,
    /// The engine-assigned query id the trace was begun for.
    pub query_id: u64,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// All spans, root first, then by start time.
    pub spans: Vec<SpanRecord>,
}

/// The per-instance telemetry hub.
#[derive(Debug)]
pub struct Telemetry {
    config: AtomicU8,
    registry: Registry,
    traces: Mutex<VecDeque<QueryTrace>>,
    /// Slow-query threshold in nanoseconds; 0 disables the slow-query log.
    /// Lives here (not in [`TelemetryConfig`]) so it can be flipped at
    /// runtime with the same relaxed-atomic cost as the config level.
    slow_ns: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry {
            config: AtomicU8::new(TelemetryConfig::default().as_u8()),
            registry: Registry::default(),
            traces: Mutex::new(VecDeque::new()),
            slow_ns: AtomicU64::new(0),
        }
    }
}

impl Telemetry {
    pub fn new(config: TelemetryConfig) -> Telemetry {
        let t = Telemetry::default();
        t.set_config(config);
        t
    }

    pub fn config(&self) -> TelemetryConfig {
        TelemetryConfig::from_u8(self.config.load(Ordering::Relaxed))
    }

    pub fn set_config(&self, config: TelemetryConfig) {
        self.config.store(config.as_u8(), Ordering::Relaxed);
    }

    /// Is any accounting enabled (counters or more)?
    pub fn counters_on(&self) -> bool {
        self.config() >= TelemetryConfig::Counters
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The slow-query threshold in nanoseconds; 0 means the slow-query
    /// log is disabled (the idle default).
    pub fn slow_query_threshold_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// The slow-query threshold as a `Duration`, if enabled.
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        match self.slow_query_threshold_ns() {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Set (or with `None` / zero, disable) the slow-query threshold.
    /// Dispatches whose wall time meets the threshold get captured into
    /// the engine's slow-query ring regardless of the config level.
    pub fn set_slow_query_threshold(&self, t: Option<Duration>) {
        let ns = t.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// Begin a trace for query `query_id` on the calling thread, if the
    /// config level is `Full`. Returns an inert guard when tracing is
    /// disabled, or when a trace is already active on this thread (the
    /// inner query joins the ambient trace instead of starting its own —
    /// this is how `from_q`'s prepare and execute land in one trace).
    pub fn begin_query(self: &Arc<Telemetry>, query_id: u64) -> TraceGuard {
        if self.config() < TelemetryConfig::Full {
            return TraceGuard { active: None };
        }
        self.begin_query_forced(query_id)
    }

    /// Begin a trace regardless of the config level (used by
    /// `explain_analyze`, which always wants the timeline). Still joins an
    /// already-active ambient trace instead of nesting.
    pub fn begin_query_forced(self: &Arc<Telemetry>, query_id: u64) -> TraceGuard {
        if tracing_active() {
            return TraceGuard { active: None };
        }
        let trace = next_trace_id();
        let root = crate::span::next_span_id_pub();
        let prev = set_ctx(TraceCtx {
            trace,
            parent: root,
        });
        TraceGuard {
            active: Some(ActiveTrace {
                telemetry: self.clone(),
                trace,
                root,
                query_id,
                start_ns: now_ns(),
                prev,
            }),
        }
    }

    /// The recorded traces, oldest first.
    pub fn traces(&self) -> Vec<QueryTrace> {
        self.traces.lock().unwrap().iter().cloned().collect()
    }

    /// The most recently completed trace.
    pub fn latest_trace(&self) -> Option<QueryTrace> {
        self.traces.lock().unwrap().back().cloned()
    }

    /// The most recent trace for `query_id`, if still in the ring.
    pub fn trace_for_query(&self, query_id: u64) -> Option<QueryTrace> {
        self.traces
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|t| t.query_id == query_id)
            .cloned()
    }

    pub fn clear_traces(&self) {
        self.traces.lock().unwrap().clear();
    }

    fn finish(&self, trace: u64, root: u64, query_id: u64, start_ns: u64) {
        let end = now_ns();
        let mut spans = drain_trace(trace);
        spans.push(SpanRecord {
            id: root,
            parent: 0,
            trace,
            name: "query".into(),
            cat: "query",
            tid: thread_id(),
            start_ns,
            dur_ns: end.saturating_sub(start_ns),
            attrs: vec![("query_id", AttrVal::UInt(query_id))],
        });
        // root first, then by start time (stable for equal starts)
        spans.sort_by_key(|s| (s.parent != 0, s.start_ns, s.id));
        let mut ring = self.traces.lock().unwrap();
        if ring.len() >= TRACE_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(QueryTrace {
            trace_id: trace,
            query_id,
            start_ns,
            dur_ns: end.saturating_sub(start_ns),
            spans,
        });
    }
}

struct ActiveTrace {
    telemetry: Arc<Telemetry>,
    trace: u64,
    root: u64,
    query_id: u64,
    start_ns: u64,
    prev: TraceCtx,
}

/// Ends the trace on drop: restores the previous context, drains every
/// thread buffer for this trace's spans, synthesizes the root `"query"`
/// span, and pushes the completed [`QueryTrace`] into the ring. Must be
/// dropped on the thread that began the trace.
pub struct TraceGuard {
    active: Option<ActiveTrace>,
}

impl TraceGuard {
    /// Is this guard actually collecting a trace?
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// The trace id being collected (0 for an inert guard).
    pub fn trace_id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.trace)
    }

    /// Stamp the query id the trace will be filed under — callers usually
    /// begin with a placeholder and learn the engine-assigned id only
    /// after the dispatch. No-op on an inert guard.
    pub fn set_query_id(&mut self, id: u64) {
        if let Some(a) = &mut self.active {
            a.query_id = id;
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        set_ctx(a.prev);
        a.telemetry.finish(a.trace, a.root, a.query_id, a.start_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::span;

    #[test]
    fn counters_mode_never_traces() {
        let t = Arc::new(Telemetry::default());
        assert_eq!(t.config(), TelemetryConfig::Counters);
        let g = t.begin_query(1);
        assert!(!g.is_active());
        assert!(!tracing_active());
        drop(g);
        assert!(t.latest_trace().is_none());
    }

    #[test]
    fn full_mode_collects_root_and_children() {
        let t = Arc::new(Telemetry::new(TelemetryConfig::Full));
        {
            let g = t.begin_query(42);
            assert!(g.is_active());
            assert!(tracing_active());
            let mut s = span("compile", "compile");
            s.attr("queries", 2u64);
            drop(s);
        }
        assert!(!tracing_active());
        let tr = t.latest_trace().unwrap();
        assert_eq!(tr.query_id, 42);
        assert_eq!(tr.spans.len(), 2);
        let root = &tr.spans[0];
        assert_eq!(root.name, "query");
        assert_eq!(root.parent, 0);
        let child = &tr.spans[1];
        assert_eq!(child.name, "compile");
        assert_eq!(child.parent, root.id);
        assert_eq!(child.trace, tr.trace_id);
    }

    #[test]
    fn nested_begin_joins_ambient_trace() {
        let t = Arc::new(Telemetry::new(TelemetryConfig::Full));
        {
            let outer = t.begin_query(1);
            assert!(outer.is_active());
            let inner = t.begin_query(2);
            assert!(!inner.is_active());
            let forced = t.begin_query_forced(3);
            assert!(!forced.is_active());
        }
        // only the outer query produced a trace
        let traces = t.traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].query_id, 1);
    }

    #[test]
    fn forced_trace_works_when_off() {
        let t = Arc::new(Telemetry::new(TelemetryConfig::Off));
        {
            let g = t.begin_query_forced(9);
            assert!(g.is_active());
        }
        assert_eq!(t.latest_trace().unwrap().query_id, 9);
    }

    #[test]
    fn slow_query_threshold_roundtrips_and_disables() {
        let t = Telemetry::default();
        assert_eq!(t.slow_query_threshold(), None);
        t.set_slow_query_threshold(Some(Duration::from_millis(5)));
        assert_eq!(t.slow_query_threshold_ns(), 5_000_000);
        assert_eq!(t.slow_query_threshold(), Some(Duration::from_millis(5)));
        t.set_slow_query_threshold(None);
        assert_eq!(t.slow_query_threshold_ns(), 0);
        t.set_slow_query_threshold(Some(Duration::ZERO));
        assert_eq!(t.slow_query_threshold(), None, "zero means disabled");
    }

    #[test]
    fn ring_keeps_last_16_in_order() {
        let t = Arc::new(Telemetry::new(TelemetryConfig::Full));
        for q in 0..20u64 {
            let _g = t.begin_query(q);
        }
        let traces = t.traces();
        assert_eq!(traces.len(), TRACE_RING_CAP);
        let ids: Vec<u64> = traces.iter().map(|t| t.query_id).collect();
        assert_eq!(ids, (4..20).collect::<Vec<u64>>());
        assert_eq!(t.latest_trace().unwrap().query_id, 19);
        assert_eq!(t.trace_for_query(5).unwrap().query_id, 5);
        assert!(t.trace_for_query(3).is_none());
        t.clear_traces();
        assert!(t.traces().is_empty());
    }
}

//! Optimizer reporting types.
//!
//! These live in `ferry-telemetry` (the bottom layer) rather than
//! `ferry-optimizer` so that `ferry` core can render them in
//! `explain`/`explain_analyze` without depending on the optimizer crate:
//! the rewriter hook returns an `Option<OptReport>` alongside the
//! rewritten plan, and the core stashes it in the compiled bundle.

use std::fmt::Write as _;

/// Accumulated work of one named optimizer pass across all rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name, e.g. `"cse"`, `"fold_constants"`.
    pub pass: &'static str,
    /// How many times the pass ran (once per round).
    pub runs: u64,
    /// How many runs actually changed the plan.
    pub changed: u64,
    /// Net change in reachable node count attributed to this pass
    /// (negative = grew the plan, e.g. join recovery).
    pub nodes_removed: i64,
    /// Total wall-clock time spent in the pass.
    pub elapsed_ns: u64,
}

/// What the optimizer did to one program: the report behind the
/// `explain` output and the per-pass spans.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptReport {
    /// Reachable plan nodes before optimization.
    pub nodes_before: usize,
    /// Reachable plan nodes after optimization.
    pub nodes_after: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Per-pass accumulation, in pass-pipeline order.
    pub passes: Vec<PassStat>,
}

impl OptReport {
    /// Total plan-changing pass runs (the "rewrites applied" number).
    pub fn rewrites(&self) -> u64 {
        self.passes.iter().map(|p| p.changed).sum()
    }

    /// Multi-line human rendering used by `explain`:
    ///
    /// ```text
    /// optimizer: 12 -> 8 nodes in 2 rounds, 3 rewrites
    ///   cse              runs=2 changed=1 nodes=-2 (13.1us)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "optimizer: {} -> {} nodes in {} round{}, {} rewrite{}",
            self.nodes_before,
            self.nodes_after,
            self.rounds,
            if self.rounds == 1 { "" } else { "s" },
            self.rewrites(),
            if self.rewrites() == 1 { "" } else { "s" },
        );
        for p in &self.passes {
            let _ = writeln!(
                out,
                "  {:<16} runs={} changed={} nodes={:+} ({:.1}us)",
                p.pass,
                p.runs,
                p.changed,
                -p.nodes_removed,
                p.elapsed_ns as f64 / 1_000.0,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_summarizes_passes() {
        let rep = OptReport {
            nodes_before: 12,
            nodes_after: 8,
            rounds: 2,
            passes: vec![
                PassStat {
                    pass: "cse",
                    runs: 2,
                    changed: 1,
                    nodes_removed: 2,
                    elapsed_ns: 13_100,
                },
                PassStat {
                    pass: "fold_constants",
                    runs: 2,
                    changed: 2,
                    nodes_removed: 2,
                    elapsed_ns: 900,
                },
            ],
        };
        assert_eq!(rep.rewrites(), 3);
        let text = rep.render();
        assert!(text.contains("12 -> 8 nodes in 2 rounds, 3 rewrites"));
        assert!(text.contains("cse"));
        assert!(text.contains("nodes=-2"));
        assert!(text.contains("fold_constants"));
    }
}

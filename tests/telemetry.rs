//! End-to-end telemetry: query-scoped span traces across the whole
//! pipeline (compile → optimize → execute), the Chrome-trace export, the
//! bounded trace/profile rings, and the disabled-mode guarantees.
//!
//! The acceptance query is the paper's running example (a 2-root bundle):
//! one `from_q` under `TelemetryConfig::Full` must yield a single trace
//! containing the compile span, at least one optimizer-pass span, and one
//! `exec.node` span per executed plan node — all carrying the same trace
//! id and filed under the engine-assigned query id.

use ferry::prelude::*;
use ferry_algebra::{BinOp, Expr, Plan, Schema, Ty, Value};
use ferry_bench::table1::dsh_query;
use ferry_bench::workload::paper_dataset;
use ferry_engine::{Database, ParConfig, VecMode};
use ferry_telemetry::AttrVal;

fn traced_conn() -> Connection {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());
    conn.set_telemetry_config(TelemetryConfig::Full);
    conn
}

fn nums_db(rows: i64) -> Database {
    let db = Database::new();
    db.create_table("nums", Schema::of(&[("n", Ty::Int)]), vec!["n"])
        .unwrap();
    db.insert("nums", (1..=rows).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();
    db
}

#[test]
fn full_trace_covers_compile_optimizer_and_every_node() {
    let conn = traced_conn();
    let result: Vec<(String, Vec<String>)> = conn.from_q(&dsh_query()).unwrap();
    assert!(!result.is_empty());

    let qid = conn.last_query_id();
    let trace = conn.telemetry().trace_for_query(qid).expect("trace filed");
    assert!(
        trace.spans.iter().all(|s| s.trace == trace.trace_id),
        "every span carries the trace id"
    );

    // synthesized root, carrying the engine-assigned query id
    let root = &trace.spans[0];
    assert_eq!(root.name, "query");
    assert_eq!(root.parent, 0);
    assert!(root.attrs.contains(&("query_id", AttrVal::UInt(qid))));

    // frontend stages
    let has = |name: &str, cat: &str| trace.spans.iter().any(|s| s.name == name && s.cat == cat);
    assert!(has("prepare", "runtime"), "prepare span");
    assert!(has("compile", "compile"), "compile span");
    assert!(has("loop_lift", "compile"), "loop-lift span");
    assert!(has("shred", "compile"), "shred span");
    assert!(
        trace
            .spans
            .iter()
            .any(|s| s.cat == "optimize" && s.name != "optimize"),
        "at least one optimizer pass span: {:?}",
        trace.spans
    );
    assert!(has("stitch", "runtime"), "stitch span");

    // one exec.node span per executed plan node of this dispatch
    let stats = conn.database().stats();
    let profile = stats.profiles.get(qid).expect("profile retained");
    assert_eq!(profile.roots, 2, "the running example is a 2-root bundle");
    assert!(!profile.nodes.is_empty());
    for p in &profile.nodes {
        // pipeline tails carry their fusion group as one exec.pipeline
        // span; everything else gets a plain exec.node span
        let (cat, name) = if p.fused.is_empty() {
            ("exec.node", p.label)
        } else {
            ("exec.pipeline", "pipeline")
        };
        assert!(
            trace.spans.iter().any(|s| s.cat == cat
                && s.name == name
                && s.attrs.contains(&("node", AttrVal::UInt(p.node as u64)))),
            "missing {} span for node {} ({})",
            cat,
            p.node,
            p.label
        );
    }
    assert_eq!(profile.trace_id, trace.trace_id);
}

/// Minimal recursive-descent JSON validator — enough to prove the export
/// is well-formed without a JSON dependency.
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let mut p = P {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(())
    }

    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl P<'_> {
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", c as char, self.i))
            }
        }
        fn value(&mut self) -> Result<(), String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.literal("true"),
                Some(b'f') => self.literal("false"),
                Some(b'n') => self.literal("null"),
                Some(b'-' | b'0'..=b'9') => self.number(),
                other => Err(format!("unexpected {other:?} at byte {}", self.i)),
            }
        }
        fn object(&mut self) -> Result<(), String> {
            self.eat(b'{')?;
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.ws();
                self.string()?;
                self.ws();
                self.eat(b':')?;
                self.ws();
                self.value()?;
                self.ws();
                if self.peek() == Some(b',') {
                    self.i += 1;
                } else {
                    return self.eat(b'}');
                }
            }
        }
        fn array(&mut self) -> Result<(), String> {
            self.eat(b'[')?;
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.ws();
                self.value()?;
                self.ws();
                if self.peek() == Some(b',') {
                    self.i += 1;
                } else {
                    return self.eat(b']');
                }
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => {
                        // escape: skip the escaped byte (\uXXXX included —
                        // the hex digits are plain bytes)
                        self.i += 1;
                    }
                    0x00..=0x1f => return Err(format!("raw control byte at {}", self.i - 1)),
                    _ => {}
                }
            }
            Err("unterminated string".into())
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.i += 1;
            }
            let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
            text.parse::<f64>()
                .map(|_| ())
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        fn literal(&mut self, lit: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }
    }
}

#[test]
fn trace_json_is_valid_chrome_trace_with_monotone_timestamps() {
    let conn = traced_conn();
    let _: Vec<(String, Vec<String>)> = conn.from_q(&dsh_query()).unwrap();
    let qid = conn.last_query_id();

    let out = conn.trace_json_for(qid).expect("trace exported");
    assert_eq!(conn.trace_json(), Some(out.clone()), "latest == by-id here");
    json::validate(&out).expect("chrome trace JSON parses");

    // chrome trace format markers
    assert!(out.starts_with("{\"traceEvents\":["), "{out}");
    assert!(out.contains("\"ph\":\"X\""), "complete events: {out}");
    assert!(out.contains("\"displayTimeUnit\":\"ms\""), "{out}");
    assert!(out.contains("\"pid\":1"), "{out}");
    assert!(
        out.contains(&format!(
            "\"otherData\":{{\"trace_id\":{},\"query_id\":{qid}}}",
            { conn.telemetry().trace_for_query(qid).unwrap().trace_id }
        )),
        "trace/query ids in otherData: {out}"
    );

    // events are emitted sorted by start time: "ts" is monotone
    let ts: Vec<f64> = out
        .match_indices("\"ts\":")
        .map(|(i, m)| {
            let rest = &out[i + m.len()..];
            let end = rest
                .find(|c: char| c != '.' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse::<f64>().expect("ts is a number")
        })
        .collect();
    assert!(ts.len() >= 4, "root + compile + optimize + nodes: {out}");
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "timestamps monotone: {ts:?}"
    );
}

#[test]
fn morsel_spans_propagate_across_worker_threads() {
    let db = Database::new();
    db.set_par_config(ParConfig {
        threads: 4,
        min_rows: 1,
        morsel_rows: 256,
        vec: VecMode::Auto,
        ..ParConfig::default()
    });
    db.set_telemetry_config(TelemetryConfig::Full);

    let mut plan = Plan::new();
    let rows: Vec<Vec<Value>> = (0..10_000)
        .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
        .collect();
    let l = plan.lit(Schema::of(&[("a", Ty::Int), ("k", Ty::Int)]), rows);
    let f = plan.select(l, Expr::bin(BinOp::Lt, Expr::col("k"), Expr::lit(5i64)));

    let telemetry = db.telemetry().clone();
    let guard = telemetry.begin_query_forced(0);
    let rel = db.execute(&plan, f).unwrap();
    assert_eq!(rel.len(), 5_000);
    std::mem::drop(guard); // `drop` the combinator shadows `mem::drop` here

    let trace = telemetry.latest_trace().unwrap();
    let root_tid = trace.spans[0].tid;
    let dispatch = trace
        .spans
        .iter()
        .find(|s| s.cat == "engine")
        .expect("dispatch span");
    let morsels: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.cat == "exec.morsel")
        .collect();
    assert!(
        morsels.len() >= 2,
        "10k rows at 256/morsel split: {morsels:?}"
    );
    for m in &morsels {
        assert_eq!(m.trace, trace.trace_id, "worker spans joined the trace");
        assert_eq!(m.parent, dispatch.id, "workers parent to the dispatch");
    }
    assert!(
        morsels.iter().any(|s| s.tid != root_tid),
        "at least one morsel ran off the dispatching thread"
    );
}

#[test]
fn trace_and_profile_rings_keep_the_last_16_queries() {
    let conn = Connection::new(nums_db(5));
    conn.set_telemetry_config(TelemetryConfig::Full);
    for _ in 0..20 {
        let got: Vec<i64> = conn.from_q(&table::<i64>("nums")).unwrap();
        assert_eq!(got.len(), 5);
    }
    assert_eq!(conn.last_query_id(), 20);

    let traces = conn.telemetry().traces();
    assert_eq!(traces.len(), 16);
    let qids: Vec<u64> = traces.iter().map(|t| t.query_id).collect();
    assert_eq!(qids, (5..=20).collect::<Vec<u64>>());

    let stats = conn.database().stats();
    assert_eq!(stats.profiles.len(), 16);
    assert_eq!(stats.latest_profile().unwrap().query_id, 20);
    assert!(stats.profiles.get(4).is_none(), "evicted");
    assert!(conn.trace_json_for(4).is_none(), "evicted");
    assert!(conn.trace_json_for(17).is_some());
}

#[test]
fn off_config_disables_all_accounting() {
    let conn = Connection::new(nums_db(5));
    conn.set_telemetry_config(TelemetryConfig::Off);
    let got: Vec<i64> = conn.from_q(&table::<i64>("nums")).unwrap();
    assert_eq!(got.len(), 5, "results are unaffected");

    let stats = conn.database().stats();
    assert_eq!(stats, ferry::QueryStats::default(), "nothing accounted");
    assert!(stats.latest_profile().is_none());
    assert!(conn.trace_json().is_none());

    // flipping back on resumes accounting without a restart
    conn.set_telemetry_config(TelemetryConfig::Counters);
    let _: Vec<i64> = conn.from_q(&table::<i64>("nums")).unwrap();
    assert_eq!(conn.database().stats().queries, 1);
}

#[test]
fn explain_analyze_renders_report_profile_and_timeline() {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());
    // default config (Counters): the timeline still renders because
    // explain_analyze forces a trace for its own execution
    let out = conn.explain_analyze(&dsh_query()).unwrap();

    assert!(out.contains("optimizer: "), "opt report header: {out}");
    assert!(out.contains("join_recovery"), "per-pass lines: {out}");
    assert!(out.contains("-- execution profile"), "{out}");
    assert!(out.contains("rows out"), "{out}");
    assert!(out.contains("-- timeline"), "{out}");
    assert!(out.contains("[compile]"), "frontend in timeline: {out}");
    assert!(
        out.contains("[exec.node]"),
        "executed nodes in timeline: {out}"
    );
    assert!(out.contains("parallel waves:"), "{out}");

    // plain explain carries the optimizer report too, without executing
    let conn2 = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());
    let explain = conn2.explain(&dsh_query()).unwrap();
    assert!(explain.contains("optimizer: "), "{explain}");
    assert_eq!(
        conn2.database().stats().queries,
        0,
        "explain never executes"
    );
}

//! Concurrency smoke test: one `Connection`, many threads.
//!
//! N threads share a single cloned `Connection` (one catalog, one plan
//! cache) and shared `Prepared` handles for the running example (§2,
//! 2-query bundle) and the nested orders report (3-query bundle). Each
//! thread executes both prepared handles and also re-prepares the
//! running example from a locally built AST — which must be served from
//! the plan cache, not recompiled. Results must equal the reference
//! interpreter and `QueryStats` must show exactly one engine dispatch
//! per bundle member per execution (no double dispatch) with cache hits
//! ≥ N − 1.

#![allow(clippy::type_complexity)]

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_bench::table1::dsh_query;
use ferry_bench::workload::paper_dataset;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

type Customer = (i64, String); // customers(cid, name)
type Order = (i64, i64); // orders(cid, oid)
type Item = (i64, i64, String); // items(oid, price, product)

/// The paper's facility tables plus a small customers→orders→items star,
/// so both workloads run against one catalog.
fn database() -> ferry_engine::Database {
    let db = paper_dataset();
    db.create_table(
        "customers",
        Schema::of(&[("cid", Ty::Int), ("name", Ty::Str)]),
        vec!["cid"],
    )
    .unwrap();
    db.create_table(
        "orders",
        Schema::of(&[("cid", Ty::Int), ("oid", Ty::Int)]),
        vec!["oid"],
    )
    .unwrap();
    db.create_table(
        "items",
        Schema::of(&[("oid", Ty::Int), ("price", Ty::Int), ("product", Ty::Str)]),
        vec!["oid", "product"],
    )
    .unwrap();
    let i = Value::Int;
    let s = Value::str;
    db.insert(
        "customers",
        vec![
            vec![i(1), s("Ada")],
            vec![i(2), s("Grace")],
            vec![i(3), s("Edsger")],
        ],
    )
    .unwrap();
    db.insert(
        "orders",
        vec![vec![i(1), i(10)], vec![i(1), i(11)], vec![i(2), i(20)]],
    )
    .unwrap();
    db.insert(
        "items",
        vec![
            vec![i(10), i(120), s("anvil")],
            vec![i(10), i(2), s("banana")],
            vec![i(11), i(30), s("compass")],
            vec![i(20), i(45), s("dynamite")],
            vec![i(20), i(45), s("fuse")],
        ],
    )
    .unwrap();
    db
}

/// The nested orders report of `examples/orders.rs`: three list
/// constructors ⇒ a 3-query bundle.
fn orders_report() -> Q<Vec<(String, Vec<(i64, Vec<(String, i64)>)>)>> {
    map(
        |c: Q<Customer>| {
            let (cid, name) = c.view();
            let orders = filter(
                move |o: Q<Order>| o.fst().eq(&cid),
                table::<Order>("orders"),
            );
            pair(
                name,
                map(
                    |o: Q<Order>| {
                        let oid = o.snd();
                        let items = map(
                            |it: Q<Item>| pair(it.proj3_2(), it.proj3_1()),
                            filter(
                                {
                                    let oid = oid.clone();
                                    move |it: Q<Item>| it.proj3_0().eq(&oid)
                                },
                                table::<Item>("items"),
                            ),
                        );
                        pair(oid, items)
                    },
                    orders,
                ),
            )
        },
        table::<Customer>("customers"),
    )
}

#[test]
fn n_threads_share_connection_and_prepared_handles() {
    const N: u64 = 8;
    let conn = Connection::new(database()).with_optimizer(ferry_optimizer::rewriter());

    // reference values, computed before any threads exist
    let expect_dsh = conn.interpret(&dsh_query()).unwrap();
    let expect_orders = conn.interpret(&orders_report()).unwrap();

    // prepare once; bundle sizes are the avalanche-safety guarantee
    let prep_dsh = Arc::new(conn.prepare(&dsh_query()).unwrap());
    let prep_orders = Arc::new(conn.prepare(&orders_report()).unwrap());
    assert_eq!(prep_dsh.bundle().queries.len(), 2);
    assert_eq!(prep_orders.bundle().queries.len(), 3);

    conn.database().reset_stats();
    let threads: Vec<_> = (0..N)
        .map(|_| {
            let conn = conn.clone();
            let prep_dsh = prep_dsh.clone();
            let prep_orders = prep_orders.clone();
            let expect_dsh = expect_dsh.clone();
            let expect_orders = expect_orders.clone();
            thread::spawn(move || {
                // a locally built AST must be served from the shared cache
                let own = conn.prepare(&dsh_query()).unwrap();
                assert_eq!(conn.execute(&own).unwrap(), expect_dsh);
                // shared handles: execute-many from many threads
                assert_eq!(conn.execute(&*prep_dsh).unwrap(), expect_dsh);
                assert_eq!(conn.execute(&*prep_orders).unwrap(), expect_orders);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let stats = conn.database().stats();
    // each thread: 2 dsh executions (2 queries each) + 1 orders (3)
    assert_eq!(stats.queries, N * (2 + 2 + 3), "no double dispatch");
    // every per-thread prepare after the first two is a hit; the two
    // initial misses happened before reset_stats
    assert_eq!(stats.cache_misses, 0);
    assert!(stats.cache_hits >= N - 1, "hits {} < N-1", stats.cache_hits);
    assert_eq!(stats.cache_hits, N, "one hit per thread prepare");
}

/// A writer mutating the catalog races N query threads.
///
/// The writer appends, per round, one order plus its two line items
/// (prices summing to zero) inside a single `transact` (one atomic
/// catalog version), then creates a scratch table — a schema change that
/// strands every cached plan. Readers continuously execute
///
/// * the 3-query orders report: every writer order must appear with
///   **both** of its items (a torn read across the bundle members would
///   show an order without them),
/// * a balanced-ledger sum that must always be exactly zero (a torn read
///   within a batch would expose a half-applied insert),
/// * a re-prepared `dsh_query`, which after every schema bump must be
///   recompiled under the new `schema_version` yet keep its result.
#[test]
fn writer_races_readers_without_torn_reads_and_with_cache_invalidation() {
    const READERS: usize = 4;
    const ROUNDS: i64 = 12;
    let conn = Connection::new(database()).with_optimizer(ferry_optimizer::rewriter());
    conn.database()
        .insert("customers", vec![vec![Value::Int(9), Value::str("Writer")]])
        .unwrap();
    let expect_dsh = conn.interpret(&dsh_query()).unwrap();
    let base_version = conn.database().schema_version();

    // items of writer orders (oid ≥ 100) are inserted in balanced pairs,
    // so this sum is 0 at every instant — or a read was torn
    // (`Q` is not `Send`: every thread builds its own copy)
    fn ledger_query() -> Q<i64> {
        sum(map(
            |it: Q<Item>| it.proj3_1(),
            filter(
                |it: Q<Item>| it.proj3_0().ge(&toq(&100i64)),
                table::<Item>("items"),
            ),
        ))
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let conn = conn.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let i = Value::Int;
            let s = Value::str;
            for r in 0..ROUNDS {
                // one transaction: the order and both its items commit
                // as one catalog version — readers see all or nothing
                conn.database()
                    .transact(|tx| {
                        tx.insert("orders", vec![vec![i(9), i(100 + r)]])?;
                        tx.insert(
                            "items",
                            vec![
                                vec![i(100 + r), i(7 + r), s("debit")],
                                vec![i(100 + r), i(-(7 + r)), s("credit")],
                            ],
                        )
                    })
                    .unwrap();
                // DDL: bumps schema_version, stranding cached bundles
                conn.database()
                    .create_table(
                        format!("scratch_{r}"),
                        Schema::of(&[("x", Ty::Int)]),
                        vec!["x"],
                    )
                    .unwrap();
                thread::yield_now();
            }
            stop.store(true, Ordering::Release);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let conn = conn.clone();
            let stop = stop.clone();
            let expect_dsh = expect_dsh.clone();
            thread::spawn(move || {
                let mut iters = 0u32;
                while !stop.load(Ordering::Acquire) || iters < 4 {
                    assert_eq!(conn.from_q(&ledger_query()).unwrap(), 0, "torn batch read");
                    let report = conn.from_q(&orders_report()).unwrap();
                    for (name, orders) in &report {
                        if name == "Writer" {
                            for (oid, items) in orders {
                                assert!(*oid >= 100);
                                assert_eq!(
                                    items.len(),
                                    2,
                                    "torn bundle read: order {oid} lost its items"
                                );
                                assert_eq!(items.iter().map(|(_, p)| p).sum::<i64>(), 0);
                            }
                        } else if name == "Ada" {
                            assert_eq!(orders.len(), 2, "pre-existing data disturbed");
                        }
                    }
                    // re-prepare under whatever schema_version is current:
                    // stale cached plans must never be served
                    let prep = conn.prepare(&dsh_query()).unwrap();
                    assert_eq!(conn.execute(&prep).unwrap(), expect_dsh);
                    iters += 1;
                }
                iters
            })
        })
        .collect();

    writer.join().unwrap();
    for t in readers {
        assert!(t.join().unwrap() >= 4);
    }

    // every DDL round bumped the version; inserts did not
    assert_eq!(
        conn.database().schema_version(),
        base_version + ROUNDS as u64
    );
    // cache hygiene: entries under superseded versions were pruned (a
    // handful may race in under old versions right before the writer's
    // last bump — bounded, not growing per round)
    assert!(
        conn.plan_cache_len() <= 2 * 3,
        "stale bundles retained: {}",
        conn.plan_cache_len()
    );
    let final_report = conn.from_q(&orders_report()).unwrap();
    let writer_orders = &final_report.iter().find(|(n, _)| n == "Writer").unwrap().1;
    assert_eq!(writer_orders.len(), ROUNDS as usize);
}

#[test]
fn concurrent_mixed_workload_matches_interpreter() {
    // threads interleave prepared execution with cold from_q of distinct
    // queries — exercising cache insertion racing cache hits
    const N: i64 = 6;
    let conn = Connection::new(database()).with_optimizer(ferry_optimizer::rewriter());
    let prep = Arc::new(conn.prepare(&dsh_query()).unwrap());
    let expect_dsh = conn.interpret(&dsh_query()).unwrap();

    let threads: Vec<_> = (0..N)
        .map(|k| {
            let conn = conn.clone();
            let prep = prep.clone();
            let expect_dsh = expect_dsh.clone();
            thread::spawn(move || {
                let q = ferry::comp!(
                    (pair(name, sum(map(|o: Q<Order>| o.snd(), orders))))
                    for (cid, name) in table::<Customer>("customers"),
                    if cid.ge(&toq(&k)),
                    let orders = filter({
                        let cid = cid.clone();
                        move |o: Q<Order>| o.fst().eq(&cid)
                    }, table::<Order>("orders"))
                );
                let via_db = conn.from_q(&q).unwrap();
                assert_eq!(via_db, conn.interpret(&q).unwrap());
                assert_eq!(conn.execute(&*prep).unwrap(), expect_dsh);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

/// N independent writers × M readers over one balanced ledger.
///
/// Every writer commits balanced item pairs into its own oid range via
/// `transact` while readers continuously sum the whole ledger — under
/// snapshot isolation the sum is exactly zero at every instant, however
/// many writers' versions have been installed. This is the N×M
/// generalisation of the single-writer race above.
#[test]
fn n_writers_m_readers_keep_the_ledger_balanced() {
    const WRITERS: i64 = 3;
    const READERS: usize = 3;
    const ROUNDS: i64 = 8;
    let conn = Connection::new(database()).with_optimizer(ferry_optimizer::rewriter());

    fn ledger_query() -> Q<i64> {
        sum(map(
            |it: Q<Item>| it.proj3_1(),
            filter(
                |it: Q<Item>| it.proj3_0().ge(&toq(&1000i64)),
                table::<Item>("items"),
            ),
        ))
    }

    let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let writer_handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let conn = conn.clone();
            let done = done.clone();
            thread::spawn(move || {
                let i = Value::Int;
                let s = Value::str;
                for r in 0..ROUNDS {
                    let oid = 1000 + w * 100 + r; // disjoint per writer
                    conn.database()
                        .transact(|tx| {
                            tx.insert("orders", vec![vec![i(9), i(oid)]])?;
                            tx.insert(
                                "items",
                                vec![
                                    vec![i(oid), i(5 + r), s("debit")],
                                    vec![i(oid), i(-(5 + r)), s("credit")],
                                ],
                            )
                        })
                        .unwrap();
                    thread::yield_now();
                }
                done.fetch_add(1, Ordering::Release);
            })
        })
        .collect();

    let reader_handles: Vec<_> = (0..READERS)
        .map(|_| {
            let conn = conn.clone();
            let done = done.clone();
            thread::spawn(move || {
                let mut iters = 0u32;
                while done.load(Ordering::Acquire) < WRITERS as usize || iters < 4 {
                    assert_eq!(
                        conn.from_q(&ledger_query()).unwrap(),
                        0,
                        "reader observed an unbalanced (torn) ledger"
                    );
                    iters += 1;
                }
                iters
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    for h in reader_handles {
        assert!(h.join().unwrap() >= 4);
    }

    // every writer's every round committed exactly once
    let epoch_rows = conn
        .database()
        .table("items")
        .unwrap()
        .rows
        .rows()
        .iter()
        .filter(|r| r[0] >= Value::Int(1000))
        .count();
    assert_eq!(epoch_rows, (WRITERS * ROUNDS * 2) as usize);
}

//! **Experiment P1 + the library's central correctness property.**
//!
//! * *Oracle equivalence*: for randomised pipelines over randomised
//!   databases, `compile → (optimize) → execute → stitch → decode` must
//!   equal the reference interpreter **exactly, including list order**
//!   (List Order Preservation, §4.1).
//! * *Avalanche safety*: the bundle size is a function of the result type
//!   alone — never of the data (§3.2).

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;
use proptest::prelude::*;

/// One pipeline stage over `Q<Vec<i64>>`. Constants are kept small so no
/// run hits integer overflow (which both sides treat as a runtime error,
/// but which would make shrunk counter-examples noisy).
#[derive(Debug, Clone)]
enum Stage {
    MapAdd(i64),
    MapMul(i64),
    FilterGt(i64),
    FilterEven,
    Reverse,
    Take(i64),
    Drop(i64),
    Nub,
    SortAsc,
    SortDesc,
    AppendConst(Vec<i64>),
    Cons(i64),
    /// `concat (group_with (x mod k))` — a nested round trip
    GroupConcat(i64),
    /// keep elements that occur in the (re-read) table
    SelfSemi,
    TakeWhileLt(i64),
    DropWhileLt(i64),
}

/// Terminal shape of the pipeline.
#[derive(Debug, Clone)]
enum Finish {
    List,
    Sum,
    Length,
    MaximumGuarded,
    AnyGt(i64),
    NullCheck,
    GroupNested(i64),
    ZipSelf,
}

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (-20i64..20).prop_map(Stage::MapAdd),
        (-3i64..4).prop_map(Stage::MapMul),
        (-30i64..30).prop_map(Stage::FilterGt),
        Just(Stage::FilterEven),
        Just(Stage::Reverse),
        (0i64..10).prop_map(Stage::Take),
        (0i64..10).prop_map(Stage::Drop),
        Just(Stage::Nub),
        Just(Stage::SortAsc),
        Just(Stage::SortDesc),
        proptest::collection::vec(-20i64..20, 0..4).prop_map(Stage::AppendConst),
        (-20i64..20).prop_map(Stage::Cons),
        (1i64..5).prop_map(Stage::GroupConcat),
        Just(Stage::SelfSemi),
        (-20i64..20).prop_map(Stage::TakeWhileLt),
        (-20i64..20).prop_map(Stage::DropWhileLt),
    ]
}

fn finish_strategy() -> impl Strategy<Value = Finish> {
    prop_oneof![
        Just(Finish::List),
        Just(Finish::Sum),
        Just(Finish::Length),
        Just(Finish::MaximumGuarded),
        (-20i64..20).prop_map(Finish::AnyGt),
        Just(Finish::NullCheck),
        (1i64..4).prop_map(Finish::GroupNested),
        Just(Finish::ZipSelf),
    ]
}

fn apply_stage(q: Q<Vec<i64>>, s: &Stage) -> Q<Vec<i64>> {
    match s {
        Stage::MapAdd(k) => map(move |x: Q<i64>| x + toq(k), q),
        Stage::MapMul(k) => map(move |x: Q<i64>| x * toq(k), q),
        Stage::FilterGt(k) => filter(move |x: Q<i64>| x.gt(&toq(k)), q),
        Stage::FilterEven => filter(|x: Q<i64>| (x % toq(&2i64)).eq(&toq(&0i64)), q),
        Stage::Reverse => reverse(q),
        Stage::Take(k) => take(toq(k), q),
        Stage::Drop(k) => drop(toq(k), q),
        Stage::Nub => nub(q),
        Stage::SortAsc => sort_with(|x: Q<i64>| x, q),
        Stage::SortDesc => sort_with(|x: Q<i64>| -x, q),
        Stage::AppendConst(v) => append(q, toq(v)),
        Stage::Cons(k) => cons(toq(k), q),
        Stage::GroupConcat(k) => concat(group_with(move |x: Q<i64>| x % toq(k), q)),
        Stage::SelfSemi => filter(|x: Q<i64>| elem(x, table::<i64>("nums")), q),
        Stage::TakeWhileLt(k) => take_while(move |x: Q<i64>| x.lt(&toq(k)), q),
        Stage::DropWhileLt(k) => drop_while(move |x: Q<i64>| x.lt(&toq(k)), q),
    }
}

fn database(rows: &[i64]) -> Database {
    let db = Database::new();
    db.create_table("nums", Schema::of(&[("n", Ty::Int)]), vec![])
        .unwrap();
    db.insert("nums", rows.iter().map(|&i| vec![Value::Int(i)]).collect())
        .unwrap();
    db
}

fn build(stages: &[Stage]) -> Q<Vec<i64>> {
    let mut q = table::<i64>("nums");
    for s in stages {
        q = apply_stage(q, s);
    }
    q
}

/// Compare database execution (optimized and raw) against the interpreter.
fn check<T: QA + PartialEq + std::fmt::Debug>(db_rows: &[i64], q: &Q<T>) {
    for optimize in [false, true] {
        let conn = if optimize {
            Connection::new(database(db_rows)).with_optimizer(ferry_optimizer::rewriter())
        } else {
            Connection::new(database(db_rows))
        };
        let via_db = conn.from_q(q).expect("database run");
        let oracle = conn.interpret(q).expect("interpreter run");
        assert_eq!(via_db, oracle, "optimize={optimize}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn oracle_equivalence(
        rows in proptest::collection::vec(-25i64..25, 0..14),
        stages in proptest::collection::vec(stage_strategy(), 0..5),
        finish in finish_strategy(),
    ) {
        let pipeline = build(&stages);
        match finish {
            Finish::List => check(&rows, &pipeline),
            Finish::Sum => check(&rows, &sum(pipeline)),
            Finish::Length => check(&rows, &length(pipeline)),
            Finish::MaximumGuarded => {
                // guard against the empty list: maximum is partial
                check(&rows, &maximum(cons(toq(&0i64), pipeline)))
            }
            Finish::AnyGt(k) => check(&rows, &ferry::ops::any(move |x: Q<i64>| x.gt(&toq(&k)), pipeline)),
            Finish::NullCheck => check(&rows, &null(pipeline)),
            Finish::GroupNested(k) => {
                check(&rows, &group_with(move |x: Q<i64>| x % toq(&k), pipeline))
            }
            Finish::ZipSelf => {
                check(&rows, &zip(pipeline.clone(), reverse(pipeline)))
            }
        }
    }

    #[test]
    fn avalanche_safety_is_type_determined(
        rows_a in proptest::collection::vec(-9i64..9, 0..4),
        rows_b in proptest::collection::vec(-9i64..9, 40..60),
        stages in proptest::collection::vec(stage_strategy(), 0..4),
    ) {
        // two databases of very different size: identical bundle sizes
        let q = group_with(|x: Q<i64>| x, build(&stages));
        let small = Connection::new(database(&rows_a));
        let large = Connection::new(database(&rows_b));
        let b_small = small.compile(&q).expect("compile small");
        let b_large = large.compile(&q).expect("compile large");
        prop_assert_eq!(b_small.queries.len(), 2);
        prop_assert_eq!(b_large.queries.len(), 2);
        // and the count matches the static type: [[i64]] has 2 list ctors
        prop_assert_eq!(b_small.queries.len(), <Vec<Vec<i64>> as QA>::ty().bundle_size());
    }

    #[test]
    fn query_count_observed_equals_bundle_size(
        rows in proptest::collection::vec(-9i64..9, 0..20),
        stages in proptest::collection::vec(stage_strategy(), 0..3),
    ) {
        let q = build(&stages);
        let conn = Connection::new(database(&rows));
        let bundle = conn.compile(&q).expect("compile");
        conn.database().reset_stats();
        let _ = conn.from_q(&q).expect("run");
        prop_assert_eq!(conn.database().stats().queries, bundle.queries.len() as u64);
    }
}

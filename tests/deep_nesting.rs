//! Stress tests for the shredding/stitching recursion: deep and mixed
//! nesting shapes, all checked against the interpreter and against the
//! type-determined bundle size.

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use ferry_engine::Database;

fn conn() -> Connection {
    let db = Database::new();
    db.create_table("nums", Schema::of(&[("n", Ty::Int)]), vec!["n"])
        .unwrap();
    db.insert("nums", (1..=4).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();
    Connection::new(db).with_optimizer(ferry_optimizer::rewriter())
}

fn check<T: QA + PartialEq + std::fmt::Debug>(c: &Connection, q: &Q<T>, queries: usize) -> T {
    let bundle = c.compile(q).expect("compile");
    assert_eq!(
        bundle.queries.len(),
        queries,
        "bundle size = type's bundle size"
    );
    assert_eq!(bundle.queries.len(), T::ty().bundle_size());
    let via_db = c.from_q(q).expect("db");
    let oracle = c.interpret(q).expect("oracle");
    assert_eq!(via_db, oracle);
    via_db
}

#[test]
fn four_levels_of_lists() {
    let c = conn();
    // [[[ [x] ]]] per number — 4 list constructors, 4 queries
    let q = map(|x: Q<i64>| list([list([list([x])])]), table::<i64>("nums"));
    let r = check(&c, &q, 4);
    assert_eq!(r[0], vec![vec![vec![1]]]);
    assert_eq!(r.len(), 4);
}

#[test]
fn tuples_of_lists_of_tuples() {
    let c = conn();
    // ([ (x, [x]) ], Int): root + outer list + inner list = 3 queries
    let q = pair(
        map(|x: Q<i64>| pair(x.clone(), list([x])), table::<i64>("nums")),
        length(table::<i64>("nums")),
    );
    let (pairs, n) = check(&c, &q, 3);
    assert_eq!(n, 4);
    assert_eq!(pairs[2], (3, vec![3]));
}

#[test]
fn grouping_twice_nests_twice() {
    let c = conn();
    // group, then group each group again: [[[Int]]] — 3 queries
    let q = map(
        |g: Q<Vec<i64>>| group_with(|x: Q<i64>| x, g),
        group_with(|x: Q<i64>| x % toq(&2i64), table::<i64>("nums")),
    );
    let r = check(&c, &q, 3);
    // groups by parity (even first), then singleton groups by value
    assert_eq!(r, vec![vec![vec![2], vec![4]], vec![vec![1], vec![3]]]);
}

#[test]
fn empty_lists_at_every_level() {
    let c = conn();
    let v: Vec<Vec<Vec<i64>>> = vec![vec![], vec![vec![]], vec![vec![1], vec![]]];
    let q = toq(&v);
    assert_eq!(check(&c, &q, 3), v);
}

#[test]
fn mixed_constant_and_table_nesting() {
    let c = conn();
    // zip a constant nested list against per-row generated lists
    let q = zip(
        toq(&vec![
            vec!["a".to_string()],
            vec![],
            vec!["b".to_string(), "c".to_string()],
        ]),
        map(|x: Q<i64>| list([x]), table::<i64>("nums")),
    );
    let r = check(&c, &q, 3);
    assert_eq!(
        r,
        vec![
            (vec!["a".to_string()], vec![1]),
            (vec![], vec![2]),
            (vec!["b".to_string(), "c".to_string()], vec![3]),
        ]
    );
}

#[test]
fn concat_flattens_one_level_only() {
    let c = conn();
    let v: Vec<Vec<Vec<i64>>> = vec![vec![vec![1, 2], vec![]], vec![vec![3]]];
    let q = concat(toq(&v));
    assert_eq!(check(&c, &q, 2), vec![vec![1, 2], vec![], vec![3]]);
}

#[test]
fn reverse_of_nested_lists_keeps_inner_order() {
    let c = conn();
    let q = reverse(map(
        |x: Q<i64>| list([x.clone(), x + toq(&10i64)]),
        table::<i64>("nums"),
    ));
    let r = check(&c, &q, 2);
    assert_eq!(r[0], vec![4, 14]);
    assert_eq!(r[3], vec![1, 11]);
}

//! The shared backend end-to-end suite.
//!
//! Every query here runs through **both** execution backends behind the
//! [`ferry::Backend`] trait — [`AlgebraBackend`] (plans straight to the
//! engine) and [`ferry_sql::SqlBackend`] (generate SQL:1999 → parse →
//! bind → execute) — with and without the optimizer, and each result is
//! compared against the reference interpreter. The two tails of Fig. 2
//! are interchangeable or they are broken.

use ferry::prelude::*;
use ferry::Backend;
use ferry_bench::table1::dsh_query;
use ferry_bench::workload::paper_dataset;
use ferry_sql::SqlBackend;
use std::sync::Arc;

fn backends() -> Vec<Arc<dyn Backend>> {
    vec![Arc::new(AlgebraBackend), Arc::new(SqlBackend)]
}

/// Run `q` on every (backend × optimizer) configuration; all four
/// database results must equal the interpreter's value, and each run
/// must dispatch exactly one engine query per bundle member (no double
/// dispatch hiding inside a backend).
fn check<T: QA + PartialEq + std::fmt::Debug>(q: &Q<T>) -> T {
    let mut results = Vec::new();
    for backend in backends() {
        for optimize in [false, true] {
            let mut conn = Connection::new(paper_dataset()).with_backend(backend.clone());
            if optimize {
                conn = conn.with_optimizer(ferry_optimizer::rewriter());
            }
            let members = conn.compile(q).unwrap().queries.len() as u64;
            conn.database().reset_stats();
            let via_db = conn.from_q(q).unwrap();
            let stats = conn.database().stats();
            assert_eq!(
                stats.queries,
                members,
                "backend {}, optimize={optimize}: one dispatch per bundle member",
                backend.name()
            );
            let oracle = conn.interpret(q).unwrap();
            assert_eq!(
                via_db,
                oracle,
                "backend {}, optimize={optimize} disagrees with the interpreter",
                backend.name()
            );
            results.push(via_db);
        }
    }
    results.pop().unwrap()
}

#[test]
fn running_example_on_both_backends() {
    let result = check(&dsh_query());
    assert_eq!(result.len(), 5);
    assert_eq!(result[0].0, "API");
}

#[test]
fn flat_projection_on_both_backends() {
    let q = ferry::comp!(
        (fac.clone())
        for (cat, fac) in table::<(String, String)>("facilities"),
        if cat.eq(&toq(&"QLA".to_string()))
    );
    let result = check(&q);
    assert!(result.contains(&"SQL".to_string()));
}

#[test]
fn join_on_both_backends() {
    let q = ferry::comp!(
        (pair(fac, mean))
        for (fac, feat1) in table::<(String, String)>("features"),
        for (feat2, mean) in table::<(String, String)>("meanings"),
        if feat1.eq(&feat2)
    );
    let result = check(&q);
    assert!(!result.is_empty());
}

#[test]
fn aggregate_on_both_backends() {
    let q = length(table::<(String, String)>("facilities"));
    let n = check(&q);
    assert!(n > 0);
}

#[test]
fn nested_grouping_on_both_backends() {
    let q = map(
        |g: Q<Vec<(String, String)>>| {
            pair(
                the(map(|p: Q<(String, String)>| p.fst(), g.clone())),
                map(|p: Q<(String, String)>| p.snd(), g),
            )
        },
        group_with(
            |p: Q<(String, String)>| p.fst(),
            table::<(String, String)>("facilities"),
        ),
    );
    let result = check(&q);
    assert_eq!(result.len(), 5, "five categories");
}

#[test]
fn prepared_handles_work_on_both_backends() {
    for backend in backends() {
        let conn = Connection::new(paper_dataset())
            .with_backend(backend.clone())
            .with_optimizer(ferry_optimizer::rewriter());
        let prepared = conn.prepare(&dsh_query()).unwrap();
        let first = conn.execute(&prepared).unwrap();
        let second = conn.execute(&prepared).unwrap();
        assert_eq!(first, second, "backend {}", backend.name());
        assert_eq!(first, conn.interpret(&dsh_query()).unwrap());
    }
}

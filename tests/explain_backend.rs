//! `Connection::explain` through the Backend abstraction — golden test
//! on the running example.
//!
//! With the default algebra backend, explain shows the kernel term, the
//! bundle shape and each member's algebra plan. With `SqlBackend`
//! installed it *additionally* renders the exact SQL:1999 text the
//! backend would ship, per bundle member, in the dialect of the paper's
//! appendix. Golden assertions are structural (dialect signatures), as
//! fresh-variable numbering varies run to run.

use ferry::prelude::*;
use ferry_bench::table1::dsh_query;
use ferry_bench::workload::paper_dataset;
use ferry_sql::SqlBackend;
use std::sync::Arc;

#[test]
fn explain_with_algebra_backend_shows_plans_only() {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());
    let out = conn.explain(&dsh_query()).unwrap();

    assert!(out.contains("combinators: "), "{out}");
    assert!(out.contains("result type: [(Text, [Text])]"), "{out}");
    assert!(out.contains("backend: algebra"), "{out}");
    assert!(out.contains("bundle: 2 queries"), "{out}");
    assert!(out.contains("-- query 1 --"), "{out}");
    assert!(out.contains("-- query 2 --"), "{out}");
    assert!(!out.contains("(sql)"), "no SQL sections by default: {out}");
}

#[test]
fn explain_with_sql_backend_renders_the_generated_sql() {
    let conn = Connection::new(paper_dataset())
        .with_optimizer(ferry_optimizer::rewriter())
        .with_backend(Arc::new(SqlBackend));
    let out = conn.explain(&dsh_query()).unwrap();

    // header and the algebra sections are still there
    assert!(out.contains("backend: sql"), "{out}");
    assert!(out.contains("bundle: 2 queries"), "{out}");
    assert!(out.contains("-- query 1 --"), "{out}");
    // plus one SQL section per bundle member
    assert!(out.contains("-- query 1 (sql) --"), "{out}");
    assert!(out.contains("-- query 2 (sql) --"), "{out}");

    // the SQL is the appendix dialect: CTE bindings with provenance
    // comments, DENSE_RANK, type-suffixed columns, observable order
    let sql_part = out.split("-- query 1 (sql) --").nth(1).unwrap();
    assert!(sql_part.contains("WITH"), "{out}");
    assert!(sql_part.contains("-- binding due to"), "{out}");
    assert!(sql_part.contains("DENSE_RANK () OVER"), "{out}");
    assert!(sql_part.contains("SELECT DISTINCT"), "{out}");
    assert!(sql_part.contains("_nat"), "{out}");
    assert!(sql_part.contains("ORDER BY"), "{out}");
    assert!(sql_part.contains("FROM facilities"), "{out}");

    // explain itself must not dispatch anything
    assert_eq!(conn.database().stats().queries, 0);
}

//! End-to-end persistence: `Connection::open_durable` against a real
//! directory — mutate, query, checkpoint, reopen, query again. The
//! recovered database must serve the same plans and the same results,
//! and the plan cache must start cold under the recovered schema
//! version.

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};

type Product = (String, i64);

fn affordable(limit: i64) -> Q<Vec<String>> {
    ferry::comp!(
        (name.clone())
        for (name, price) in table::<Product>("products"),
        if price.lt(&toq(&limit))
    )
}

fn seed(conn: &Connection) {
    // two autocommitted transactions: two WAL records, LSN 1 and 2
    let db = conn.database();
    db.create_table(
        "products",
        Schema::of(&[("name", Ty::Str), ("price", Ty::Int)]),
        vec!["name"],
    )
    .unwrap();
    db.insert(
        "products",
        vec![
            vec![Value::str("anvil"), Value::Int(120)],
            vec![Value::str("banana"), Value::Int(2)],
            vec![Value::str("compass"), Value::Int(30)],
        ],
    )
    .unwrap();
}

#[test]
fn open_durable_roundtrip_with_checkpoint() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("core_persistence_rt");
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig::with_fsync(FsyncPolicy::Always);

    {
        let conn = Connection::open_durable(&dir, config).unwrap();
        seed(&conn);
        assert_eq!(
            conn.from_q(&affordable(100)).unwrap(),
            vec!["banana".to_string(), "compass".to_string()]
        );
        let lsn = conn.checkpoint().unwrap();
        assert_eq!(lsn, 2, "create + insert were logged");
        conn.database()
            .insert(
                "products",
                vec![vec![Value::str("dynamite"), Value::Int(45)]],
            )
            .unwrap();
        // no clean shutdown beyond this point: recovery must cope
    }

    let conn = Connection::open_durable(&dir, config)
        .unwrap()
        .with_optimizer(ferry_optimizer::rewriter());
    let report_rendered = {
        let db = conn.database();
        let report = db.recovery_report().unwrap();
        assert_eq!(report.snapshot_tables, 1);
        assert_eq!(
            report.wal_records_applied, 1,
            "only the post-checkpoint tail"
        );
        report.render()
    };
    assert!(report_rendered.contains("recovery"));

    // recovered catalog serves the same query, now with the WAL tail
    assert_eq!(
        conn.from_q(&affordable(100)).unwrap(),
        vec![
            "banana".to_string(),
            "compass".to_string(),
            "dynamite".to_string()
        ]
    );
    // recovery bumped the schema version: the prepare was a miss, and
    // the database agrees with the reference interpreter
    assert!(conn.database().schema_version() > 0);
    assert_eq!(
        conn.from_q(&affordable(100)).unwrap(),
        conn.interpret(&affordable(100)).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

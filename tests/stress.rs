//! Reader/writer stress: a durable database under sustained concurrent
//! load, checked for snapshot isolation, group-commit durability and
//! crash recovery. Heavier than the default suite — gated behind
//! `--features stress` and run as its own CI step.
#![cfg(feature = "stress")]

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

type Item = (i64, i64, String); // items(oid, price, product)

const WRITERS: i64 = 4;
const READERS: usize = 6;
const ROUNDS: i64 = 60;

fn ledger_query() -> Q<i64> {
    sum(map(
        |it: Q<Item>| it.proj3_1(),
        filter(
            |it: Q<Item>| it.proj3_0().ge(&toq(&0i64)),
            table::<Item>("items"),
        ),
    ))
}

#[test]
fn durable_mixed_workload_stays_balanced_and_recovers() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("stress_mixed");
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig {
        checkpoint_every: Some(64), // force checkpoints to race commits
        ..DurabilityConfig::with_fsync(FsyncPolicy::Always)
    };
    {
        let conn = Connection::open_durable(&dir, config)
            .unwrap()
            .with_optimizer(ferry_optimizer::rewriter());
        conn.database()
            .create_table(
                "items",
                Schema::of(&[("oid", Ty::Int), ("price", Ty::Int), ("product", Ty::Str)]),
                vec!["oid", "product"],
            )
            .unwrap();

        let done = Arc::new(AtomicUsize::new(0));
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let conn = conn.clone();
                let done = done.clone();
                thread::spawn(move || {
                    let i = Value::Int;
                    let s = Value::str;
                    for r in 0..ROUNDS {
                        let oid = w * 10_000 + r;
                        conn.database()
                            .transact(|tx| {
                                tx.insert(
                                    "items",
                                    vec![
                                        vec![i(oid), i(1 + r), s("debit")],
                                        vec![i(oid), i(-(1 + r)), s("credit")],
                                    ],
                                )
                            })
                            .unwrap();
                    }
                    done.fetch_add(1, Ordering::Release);
                })
            })
            .collect();
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let conn = conn.clone();
                let done = done.clone();
                thread::spawn(move || {
                    let mut iters = 0u32;
                    while done.load(Ordering::Acquire) < WRITERS as usize || iters < 8 {
                        assert_eq!(conn.from_q(&ledger_query()).unwrap(), 0, "torn read");
                        iters += 1;
                    }
                    iters
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        for h in readers {
            assert!(h.join().unwrap() >= 8);
        }
        assert_eq!(
            conn.database().table("items").unwrap().rows.len(),
            (WRITERS * ROUNDS * 2) as usize
        );
        // no clean shutdown: recovery below must replay the WAL tail
    }

    let conn = Connection::open_durable(&dir, config).unwrap();
    assert_eq!(
        conn.database().table("items").unwrap().rows.len(),
        (WRITERS * ROUNDS * 2) as usize,
        "an acked commit was lost across recovery"
    );
    assert_eq!(conn.from_q(&ledger_query()).unwrap(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Reader/writer stress: a durable database under sustained concurrent
//! load, checked for snapshot isolation, group-commit durability and
//! crash recovery. Heavier than the default suite — gated behind
//! `--features stress` and run as its own CI step.
#![cfg(feature = "stress")]

use ferry::prelude::*;
use ferry_algebra::{Schema, Ty, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

type Item = (i64, i64, String); // items(oid, price, product)

const WRITERS: i64 = 4;
const READERS: usize = 6;
const ROUNDS: i64 = 60;

fn ledger_query() -> Q<i64> {
    sum(map(
        |it: Q<Item>| it.proj3_1(),
        filter(
            |it: Q<Item>| it.proj3_0().ge(&toq(&0i64)),
            table::<Item>("items"),
        ),
    ))
}

#[test]
fn durable_mixed_workload_stays_balanced_and_recovers() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("stress_mixed");
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig {
        checkpoint_every: Some(64), // force checkpoints to race commits
        ..DurabilityConfig::with_fsync(FsyncPolicy::Always)
    };
    {
        let conn = Connection::open_durable(&dir, config)
            .unwrap()
            .with_optimizer(ferry_optimizer::rewriter());
        conn.database()
            .create_table(
                "items",
                Schema::of(&[("oid", Ty::Int), ("price", Ty::Int), ("product", Ty::Str)]),
                vec!["oid", "product"],
            )
            .unwrap();

        let done = Arc::new(AtomicUsize::new(0));
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let conn = conn.clone();
                let done = done.clone();
                thread::spawn(move || {
                    let i = Value::Int;
                    let s = Value::str;
                    for r in 0..ROUNDS {
                        let oid = w * 10_000 + r;
                        conn.database()
                            .transact(|tx| {
                                tx.insert(
                                    "items",
                                    vec![
                                        vec![i(oid), i(1 + r), s("debit")],
                                        vec![i(oid), i(-(1 + r)), s("credit")],
                                    ],
                                )
                            })
                            .unwrap();
                    }
                    done.fetch_add(1, Ordering::Release);
                })
            })
            .collect();
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let conn = conn.clone();
                let done = done.clone();
                thread::spawn(move || {
                    let mut iters = 0u32;
                    while done.load(Ordering::Acquire) < WRITERS as usize || iters < 8 {
                        assert_eq!(conn.from_q(&ledger_query()).unwrap(), 0, "torn read");
                        iters += 1;
                    }
                    iters
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        for h in readers {
            assert!(h.join().unwrap() >= 8);
        }
        assert_eq!(
            conn.database().table("items").unwrap().rows.len(),
            (WRITERS * ROUNDS * 2) as usize
        );
        // no clean shutdown: recovery below must replay the WAL tail
    }

    let conn = Connection::open_durable(&dir, config).unwrap();
    assert_eq!(
        conn.database().table("items").unwrap().rows.len(),
        (WRITERS * ROUNDS * 2) as usize,
        "an acked commit was lost across recovery"
    );
    assert_eq!(conn.from_q(&ledger_query()).unwrap(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------------
// Shard-crash fault matrix: tear one shard's WAL (or the commit log)
// mid-group-commit at every interesting byte offset, reboot, and check
// the recovered database is an epoch-consistent cut — every acked
// commit intact in insert order, the torn commit gone from *all*
// shards, and every surviving row still on its hash-assigned shard.
// ------------------------------------------------------------------

mod shard_crash {
    use ferry_algebra::{Schema, Ty, Value};
    use ferry_engine::{shard_of, Database, DurabilityConfig, FsyncPolicy};
    use ferry_storage::{shard_wal_file, Fault, FaultFs, Vfs, COMMIT_LOG};
    use std::sync::Arc;

    const S: usize = 4;
    /// Commits in the workload; each spreads rows over several shards.
    const COMMITS: usize = 20;
    const ROWS_PER_COMMIT: usize = 8;

    fn schema() -> Schema {
        Schema::of(&[("oid", Ty::Int), ("price", Ty::Int)])
    }

    fn commit_rows(c: usize) -> Vec<Vec<Value>> {
        (0..ROWS_PER_COMMIT)
            .map(|j| {
                let oid = (c * ROWS_PER_COMMIT + j) as i64;
                vec![Value::Int(oid), Value::Int(oid * 3 - 7)]
            })
            .collect()
    }

    fn open(vfs: &Arc<FaultFs>) -> Database {
        Database::open_sharded_with_vfs(
            vfs.clone() as Arc<dyn Vfs>,
            S,
            DurabilityConfig::with_fsync(FsyncPolicy::Always),
        )
        .expect("open sharded")
    }

    /// Run the workload until a commit fails (the armed fault downs the
    /// machine) or it completes; returns the number of acked commits.
    fn run_workload(vfs: &Arc<FaultFs>) -> usize {
        let db = open(vfs);
        db.create_table_sharded("items", schema(), vec!["oid"], "oid")
            .expect("create");
        for c in 0..COMMITS {
            if db.insert("items", commit_rows(c)).is_err() {
                return c;
            }
        }
        COMMITS
    }

    /// Reboot after the crash and assert the epoch-consistent cut.
    fn check_recovery(vfs: &Arc<FaultFs>, acked: usize, scenario: &str) {
        vfs.crash();
        let db = open(vfs);
        let table = db.table("items").expect("items survives");
        let rows = table.rows.rows().to_vec();
        // the cut is commit-aligned and covers every acked commit (it
        // may include the torn commit's predecessors only — never a
        // partial commit)
        assert_eq!(
            rows.len() % ROWS_PER_COMMIT,
            0,
            "{scenario}: partial commit visible after recovery"
        );
        let cut = rows.len() / ROWS_PER_COMMIT;
        assert!(
            cut >= acked,
            "{scenario}: acked commit lost ({cut} recovered < {acked} acked)"
        );
        assert!(
            cut <= acked + 1,
            "{scenario}: unacked tail appeared ({cut} recovered, {acked} acked)"
        );
        let want: Vec<Vec<Value>> = (0..cut).flat_map(commit_rows).collect();
        assert_eq!(
            rows, want,
            "{scenario}: recovered rows diverge from the prefix"
        );
        // shard assignment survives recovery: every row hashes home
        let ts = table.shard.as_ref().expect("sharded table");
        for (pos, row) in rows.iter().enumerate() {
            assert_eq!(
                ts.shard_of[pos],
                shard_of(&row[0], S),
                "{scenario}: row {pos} recovered onto the wrong shard"
            );
        }
        // recovery is idempotent: a second reboot sees the same state
        let again = open(vfs);
        assert_eq!(
            again.table("items").expect("items").rows.rows(),
            &rows[..],
            "{scenario}: second recovery diverged"
        );
    }

    #[test]
    fn torn_shard_wal_mid_group_commit_keeps_the_cut_epoch_consistent() {
        // clean run: learn each file's append extent after every commit
        let clean = Arc::new(FaultFs::new());
        assert_eq!(run_workload(&clean), COMMITS);
        let files: Vec<String> = (0..S)
            .map(|k| shard_wal_file(k))
            .chain([COMMIT_LOG.to_string()])
            .collect();
        let mut extents: Vec<Vec<u64>> = vec![Vec::new(); files.len()];
        {
            // replay the workload commit-by-commit to record growth
            let vfs = Arc::new(FaultFs::new());
            let db = open(&vfs);
            db.create_table_sharded("items", schema(), vec!["oid"], "oid")
                .expect("create");
            for c in 0..COMMITS {
                db.insert("items", commit_rows(c)).expect("insert");
                for (f, file) in files.iter().enumerate() {
                    extents[f].push(vfs.written_len(file));
                }
                let _ = c;
            }
        }

        // the matrix: tear every file inside three different commits, at
        // the first byte, the midpoint and the last byte of the append
        // window that commit produced on that file
        let mut scenarios = 0usize;
        for (f, file) in files.iter().enumerate() {
            for &c in &[2usize, COMMITS / 2, COMMITS - 1] {
                let lo = if c == 0 { 0 } else { extents[f][c - 1] };
                let hi = extents[f][c];
                if hi <= lo {
                    continue; // this commit never touched this file
                }
                for at in [lo + 1, lo + (hi - lo) / 2, hi - 1] {
                    if at <= lo || at > hi {
                        continue;
                    }
                    let vfs = Arc::new(FaultFs::new());
                    vfs.inject(Fault::TornAppend {
                        path: file.clone(),
                        at,
                    });
                    let acked = run_workload(&vfs);
                    assert!(
                        acked < COMMITS,
                        "fault at {file}:{at} never fired (clean run acked all)"
                    );
                    check_recovery(&vfs, acked, &format!("{file} torn at {at}"));
                    scenarios += 1;
                }
            }
        }
        assert!(
            scenarios >= 20,
            "matrix degenerated: only {scenarios} scenarios ran"
        );
    }

    #[test]
    fn latent_bit_flip_in_a_shard_wal_is_detected_or_cut_on_a_boundary() {
        // 1. a flip in the *middle* of shard 1's log is mid-log
        //    corruption — recovery must refuse, never silently cut
        let vfs = Arc::new(FaultFs::new());
        assert_eq!(run_workload(&vfs), COMMITS);
        let target = shard_wal_file(1);
        vfs.inject(Fault::BitFlip {
            path: target.clone(),
            offset: vfs.written_len(&target) / 2,
            bit: 3,
        });
        vfs.crash();
        let err = Database::open_sharded_with_vfs(
            vfs.clone() as Arc<dyn Vfs>,
            S,
            DurabilityConfig::with_fsync(FsyncPolicy::Always),
        );
        assert!(
            err.is_err(),
            "mid-log corruption in a shard WAL must fail recovery loudly"
        );

        // 2. a flip in the log's *final frame* is indistinguishable from
        //    a torn tail — the repair path truncates it and the cut
        //    falls back to the last commit intact on every shard
        let vfs = Arc::new(FaultFs::new());
        assert_eq!(run_workload(&vfs), COMMITS);
        vfs.inject(Fault::BitFlip {
            path: target.clone(),
            offset: vfs.written_len(&target) - 4,
            bit: 5,
        });
        vfs.crash();
        let db = open(&vfs);
        let table = db.table("items").expect("items survives");
        let rows = table.rows.rows();
        assert_eq!(
            rows.len() % ROWS_PER_COMMIT,
            0,
            "bit flip exposed a partial commit"
        );
        let cut = rows.len() / ROWS_PER_COMMIT;
        assert!(cut < COMMITS, "damaged tail frame cannot survive");
        assert!(cut >= COMMITS - 2, "cut fell further than the damage");
        let want: Vec<Vec<Value>> = (0..cut).flat_map(commit_rows).collect();
        assert_eq!(rows, &want[..], "recovered prefix diverges");
    }
}

//! **Experiment F3.** The relational encodings of Figure 3: list order as
//! a dense 1-based `pos` column (a), nesting as surrogate keys linking an
//! outer to an inner query, empty inner lists leaving no trace in the
//! inner table (b).

use ferry::prelude::*;
use ferry_algebra::Value;
use ferry_engine::Database;

fn conn() -> Connection {
    Connection::new(Database::new())
}

#[test]
fn fig3a_flat_list_encoding() {
    // [x1, x2, ..., xl] ⇒ table (pos | item) with pos = 1..l
    let c = conn();
    let xs: Vec<i64> = vec![42, 17, 99, 17];
    let t = ferry::pipeline::trace(&c, &toq(&xs)).unwrap();
    assert_eq!(t.tables.len(), 1);
    let rel = &t.tables[0];
    // serialized schema: [nest, pos, item]
    assert_eq!(rel.schema.len(), 3);
    let pos: Vec<u64> = rel.rows().iter().map(|r| r[1].as_nat().unwrap()).collect();
    assert_eq!(pos, vec![1, 2, 3, 4], "dense 1-based positions");
    let items: Vec<i64> = rel.rows().iter().map(|r| r[2].as_int().unwrap()).collect();
    assert_eq!(items, xs, "items in list order");
}

#[test]
fn fig3b_nested_list_encoding() {
    // [[x11, x12], [], [x31]] ⇒ Q1 (outer, surrogates) + Q2 (inner lists)
    let c = conn();
    let xss = vec![vec![11i64, 12], vec![], vec![31]];
    let t = ferry::pipeline::trace(&c, &toq(&xss)).unwrap();
    assert_eq!(t.tables.len(), 2, "two queries for two list constructors");
    let q1 = &t.tables[0];
    let q2 = &t.tables[1];

    // Q1: three outer elements with pairwise distinct surrogates
    assert_eq!(q1.len(), 3);
    let surr: Vec<u64> = q1.rows().iter().map(|r| r[2].as_nat().unwrap()).collect();
    let mut uniq = surr.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), 3, "distinct surrogates per inner list");

    // Q2: only the non-empty lists contribute rows; the empty list's
    // surrogate "will not appear in the nest column of this second table"
    assert_eq!(q2.len(), 3); // 2 + 0 + 1 elements
    let nests: Vec<u64> = q2.rows().iter().map(|r| r[0].as_nat().unwrap()).collect();
    assert!(nests.iter().all(|n| *n == surr[0] || *n == surr[2]));
    assert!(!nests.contains(&surr[1]), "empty list absent from Q2");

    // linkage reconstructs the value
    assert_eq!(t.value, QA::to_val(&xss));
}

#[test]
fn inner_positions_are_per_list() {
    let c = conn();
    let xss = vec![vec![1i64, 2, 3], vec![4, 5]];
    let t = ferry::pipeline::trace(&c, &toq(&xss)).unwrap();
    let q2 = &t.tables[1];
    // rows arrive sorted by (nest, pos); positions restart at 1 per list
    let pairs: Vec<(u64, u64)> = q2
        .rows()
        .iter()
        .map(|r| (r[0].as_nat().unwrap(), r[1].as_nat().unwrap()))
        .collect();
    let mut expected = Vec::new();
    for (i, inner) in xss.iter().enumerate() {
        for p in 1..=inner.len() as u64 {
            expected.push((i as u64 + 1, p));
        }
    }
    assert_eq!(pairs, expected);
}

#[test]
fn tuples_are_inlined_adjacent_columns() {
    // "the fields of a tuple live in adjacent columns of the same table"
    let c = conn();
    let xs = vec![(1i64, "a".to_string()), (2, "b".to_string())];
    let t = ferry::pipeline::trace(&c, &toq(&xs)).unwrap();
    assert_eq!(t.tables.len(), 1);
    let rel = &t.tables[0];
    assert_eq!(rel.schema.len(), 4); // nest, pos, item1, item2
    assert_eq!(rel.rows()[0][2], Value::Int(1));
    assert_eq!(rel.rows()[0][3], Value::str("a"));
}

#[test]
fn three_levels_three_queries() {
    let c = conn();
    let v = vec![vec![vec![1i64], vec![]], vec![]];
    let t = ferry::pipeline::trace(&c, &toq(&v)).unwrap();
    assert_eq!(t.tables.len(), 3);
    assert_eq!(t.value, QA::to_val(&v));
}

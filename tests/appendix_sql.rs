//! **Experiment A1.** The appendix of the paper shows the bundle of two
//! SQL:1999 queries emitted for the running example. We assert the
//! structural signatures of that dialect on our generated bundle — and,
//! beyond what a listing can show, we *execute* the SQL and check it
//! computes the §2 value.

use ferry::prelude::*;
use ferry::stitch::stitch;
use ferry_bench::table1::dsh_query;
use ferry_bench::workload::paper_dataset;
use ferry_sql::{execute_sql, generate_sql};

#[test]
fn bundle_of_two_sql_statements() {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());
    let bundle = conn.compile(&dsh_query()).unwrap();
    assert_eq!(
        bundle.queries.len(),
        2,
        "the appendix shows exactly two queries"
    );
    let sqls: Vec<String> = bundle
        .queries
        .iter()
        .map(|qd| {
            generate_sql(&conn.snapshot(), &bundle.plan, qd.root)
                .unwrap()
                .sql
        })
        .collect();

    // dialect signatures of the appendix
    for sql in &sqls {
        assert!(sql.starts_with("WITH"), "CTE bindings:\n{sql}");
        assert!(
            sql.contains("-- binding due to"),
            "binding comments:\n{sql}"
        );
        assert!(sql.contains("ORDER BY"), "observable order:\n{sql}");
        assert!(sql.contains("_nat"), "type-suffixed columns:\n{sql}");
        assert!(sql.trim_end().ends_with(';'));
    }
    // Q1 of the appendix: DISTINCT over the categories + DENSE_RANK
    let q1 = &sqls[0];
    assert!(q1.contains("DENSE_RANK () OVER"), "{q1}");
    assert!(q1.contains("SELECT DISTINCT"), "{q1}");
    // Q2: grouped aggregation (the appendix binds "due to aggregate")
    let q2 = &sqls[1];
    assert!(q2.contains("GROUP BY") || q2.contains("MIN ("), "{q2}");
    // base tables referenced by name
    assert!(sqls.iter().any(|s| s.contains("FROM facilities")));
    assert!(sqls
        .iter()
        .any(|s| s.contains("FROM features") || s.contains("FROM meanings")));
}

#[test]
fn the_sql_bundle_computes_the_section2_value() {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());
    let bundle = conn.compile(&dsh_query()).unwrap();
    let mut rels = Vec::new();
    for qd in &bundle.queries {
        let sql = generate_sql(&conn.snapshot(), &bundle.plan, qd.root).unwrap();
        rels.push(execute_sql(&conn.snapshot(), &sql.sql).unwrap());
    }
    let val = stitch(&rels, &bundle.queries).unwrap();
    let result: Vec<(String, Vec<String>)> = ferry::QA::from_val(&val).unwrap();
    let direct = conn.from_q(&dsh_query()).unwrap();
    assert_eq!(result, direct, "SQL path computes the same nested value");
    assert_eq!(result[0].0, "API");
    assert!(result[0].1.is_empty());
}

#[test]
fn unoptimized_bundle_also_roundtrips() {
    // the generator must not depend on the optimizer's normal forms
    let conn = Connection::new(paper_dataset());
    let bundle = conn.compile(&dsh_query()).unwrap();
    for qd in &bundle.queries {
        let sql = generate_sql(&conn.snapshot(), &bundle.plan, qd.root).unwrap();
        execute_sql(&conn.snapshot(), &sql.sql).unwrap();
    }
}

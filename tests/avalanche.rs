//! **Experiments T1/F4 (assertion part).** Query counts of Table 1 are
//! exact arithmetic, not statistics: the HaskellDB program (Fig. 4) issues
//! `#categories + 1` statements, the Ferry/DSH program always 2 — at any
//! database size — and the two agree on the answer.

use ferry::prelude::*;
use ferry_bench::table1::{dsh_query, normalise, run_dsh, run_haskelldb};
use ferry_bench::workload::{paper_dataset, scaled_dataset};

#[test]
fn table1_query_counts_exactly() {
    for cats in [1usize, 7, 40] {
        let conn =
            Connection::new(scaled_dataset(cats, 2)).with_optimizer(ferry_optimizer::rewriter());
        let (dsh, dsh_q) = run_dsh(&conn).expect("dsh");
        assert_eq!(dsh_q, 2, "DSH: two queries at {cats} categories");
        let (hdb, hdb_q) = run_haskelldb(conn.database()).expect("haskelldb");
        assert_eq!(
            hdb_q,
            cats as u64 + 1,
            "HaskellDB: N+1 at {cats} categories"
        );
        assert_eq!(normalise(dsh), normalise(hdb), "the programs agree");
    }
}

#[test]
fn bundle_size_is_data_independent() {
    // same program, three databases of very different size: identical
    // bundles (the avalanche-safety guarantee, §3.2)
    let sizes = [
        paper_dataset(),
        scaled_dataset(50, 2),
        scaled_dataset(500, 3),
    ];
    for db in sizes {
        let conn = Connection::new(db);
        let bundle = conn.compile(&dsh_query()).expect("compile");
        assert_eq!(bundle.queries.len(), 2);
    }
}

#[test]
fn the_paper_section2_value() {
    let conn = Connection::new(paper_dataset()).with_optimizer(ferry_optimizer::rewriter());
    let (result, _) = run_dsh(&conn).expect("dsh");
    // "Evaluating this program results in a nested list like:
    //  [("API", []), ("LIB", [...]), ("LIN", [...]), ("ORM", [...]), ("QLA", [...])]"
    let cats: Vec<&str> = result.iter().map(|(c, _)| c.as_str()).collect();
    assert_eq!(cats, vec!["API", "LIB", "LIN", "ORM", "QLA"]);
    let by_cat = |c: &str| -> &Vec<String> { &result.iter().find(|(cat, _)| cat == c).unwrap().1 };
    assert!(by_cat("API").is_empty());
    assert!(by_cat("LIB").contains(&"respects list order".to_string()));
    assert!(by_cat("LIN").contains(&"supports data nesting".to_string()));
    assert!(by_cat("ORM").contains(&"supports data nesting".to_string()));
    assert!(by_cat("QLA").contains(&"avoids query avalanches".to_string()));
}

#[test]
fn dsh_runtime_scales_gracefully() {
    // the runtime half of Table 1's shape, as a conservative smoke check:
    // a 10× bigger database must not cost DSH anywhere near the avalanche's
    // super-linear blowup (the precise curves live in the criterion bench)
    let small = Connection::new(scaled_dataset(30, 2)).with_optimizer(ferry_optimizer::rewriter());
    let big = Connection::new(scaled_dataset(300, 2)).with_optimizer(ferry_optimizer::rewriter());
    let t0 = std::time::Instant::now();
    run_dsh(&small).unwrap();
    let t_small = t0.elapsed();
    let t0 = std::time::Instant::now();
    run_dsh(&big).unwrap();
    let t_big = t0.elapsed();
    assert!(
        t_big < t_small * 100,
        "DSH must stay near-linear: {t_small:?} → {t_big:?}"
    );
}

#[test]
fn dispatch_cost_widens_the_gap() {
    // model the client/server round trip the paper's setup pays per query:
    // the avalanche is charged N+1 round trips, the bundle exactly 2
    use std::time::{Duration, Instant};
    let db = scaled_dataset(50, 2);
    db.set_dispatch_cost(Duration::from_millis(2));
    let conn = Connection::new(db).with_optimizer(ferry_optimizer::rewriter());

    let t0 = Instant::now();
    let (_, q_dsh) = run_dsh(&conn).unwrap();
    let t_dsh = t0.elapsed();
    let t0 = Instant::now();
    let (_, q_hdb) = run_haskelldb(conn.database()).unwrap();
    let t_hdb = t0.elapsed();

    assert_eq!(q_dsh, 2);
    assert_eq!(q_hdb, 51);
    // 51 round trips vs 2: the round-trip bill alone dominates
    assert!(
        t_hdb > t_dsh,
        "with per-query dispatch cost, the avalanche must lose: {t_hdb:?} vs {t_dsh:?}"
    );
}

//! **Experiment F5/F6.** Sparse-vector multiplication: the DSH side of
//! Fig. 6 must contain the structural backbone the figure shows —
//! `bpermuteP` as an equi-join over positions, the lifted multiplication,
//! and `sumP` as a grouped SUM — and all three implementations must agree
//! numerically.

use ferry::prelude::*;
use ferry_algebra::{AggFun, Node};
use ferry_bench::dotp::{dotp_data, dotp_database, dotp_query, dotp_scalar, dotp_vectorised};

#[test]
fn fig5_instance_agrees_everywhere() {
    let sv = vec![(1i64, 0.1f64), (3, 1.0), (4, 0.0)];
    let v = vec![10.0, 20.0, 30.0, 40.0, 50.0];
    let expected = 42.0;
    assert_eq!(dotp_scalar(&sv, &v), expected);
    assert_eq!(dotp_vectorised(&sv, &v), expected);
    for optimize in [false, true] {
        let conn = if optimize {
            Connection::new(dotp_database(&sv, &v)).with_optimizer(ferry_optimizer::rewriter())
        } else {
            Connection::new(dotp_database(&sv, &v))
        };
        assert_eq!(conn.from_q(&dotp_query()).unwrap(), expected);
    }
}

#[test]
fn random_instances_agree() {
    for seed in 0..5 {
        let (sv, v) = dotp_data(40, 12, seed);
        let expected = dotp_scalar(&sv, &v);
        assert_eq!(dotp_vectorised(&sv, &v), expected);
        let conn =
            Connection::new(dotp_database(&sv, &v)).with_optimizer(ferry_optimizer::rewriter());
        let got = conn.from_q(&dotp_query()).unwrap();
        assert!(
            (got - expected).abs() < 1e-9,
            "seed {seed}: {got} vs {expected}"
        );
    }
}

#[test]
fn fig6_backbone_in_the_compiled_plan() {
    let (sv, v) = dotp_data(16, 4, 3);
    let conn = Connection::new(dotp_database(&sv, &v)).with_optimizer(ferry_optimizer::rewriter());
    let bundle = conn.compile(&dotp_query()).unwrap();
    assert_eq!(bundle.queries.len(), 1, "Float result ⇒ one query");
    let mut joins = 0;
    let mut mults = 0;
    let mut sums = 0;
    for id in bundle.plan.reachable(bundle.queries[0].root) {
        match bundle.plan.node(id) {
            Node::EquiJoin { .. } => joins += 1,
            Node::Compute { expr, .. } if expr.to_string().contains('*') => mults += 1,
            Node::GroupBy { aggs, .. } => {
                sums += aggs.iter().filter(|a| a.fun == AggFun::Sum).count()
            }
            _ => {}
        }
    }
    assert!(joins >= 1, "bpermuteP ⇔ equi-join on pos (Fig. 6)");
    assert!(mults >= 1, "the lifted * of the comprehension");
    assert!(sums >= 1, "sumP ⇔ grouped SUM");
}

#[test]
fn empty_sparse_vector_sums_to_zero() {
    let conn = Connection::new(dotp_database(&[], &[1.0, 2.0]))
        .with_optimizer(ferry_optimizer::rewriter());
    assert_eq!(conn.from_q(&dotp_query()).unwrap(), 0.0);
}

#[test]
fn out_of_range_index_semantics() {
    // (!!) is partial. At the *top level* a missing row is a clean error
    // (see `stitch`); *inside a lifted computation* the iteration vanishes
    // from the relational encoding — the documented deviation D3 in
    // EXPERIMENTS.md: the reference interpreter errors, the database
    // silently skips the offending element.
    let conn = Connection::new(dotp_database(&[(99, 1.0)], &[1.0]))
        .with_optimizer(ferry_optimizer::rewriter());
    assert!(conn.interpret(&dotp_query()).is_err(), "oracle: hard error");
    assert_eq!(
        conn.from_q(&dotp_query()).unwrap(),
        0.0,
        "database: the out-of-range element drops out of the sum"
    );
    // a top-level (!!) out of range errors on both sides
    let top = index(toq(&vec![1i64, 2]), toq(&9i64));
    assert!(conn.from_q(&top).is_err());
    assert!(conn.interpret(&top).is_err());
}
